//! The WSDL 1.1 object model.

use wsinterop_xsd::Schema;

/// A reference to a named WSDL component: `(namespace-uri, local-name)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NameRef {
    /// Namespace URI (usually the document's target namespace).
    pub ns_uri: String,
    /// Local name of the referenced component.
    pub local: String,
}

impl NameRef {
    /// Convenience constructor.
    pub fn new(ns_uri: impl Into<String>, local: impl Into<String>) -> NameRef {
        NameRef {
            ns_uri: ns_uri.into(),
            local: local.into(),
        }
    }
}

/// What a message part points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartKind {
    /// `element="tns:foo"` — doc/literal style.
    Element(NameRef),
    /// `type="xsd:string"` — rpc style.
    Type(wsinterop_xsd::TypeRef),
}

/// A `wsdl:part`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    /// Part name (`parameters` by convention in wrapped style).
    pub name: String,
    /// The element or type the part carries.
    pub kind: PartKind,
}

/// A `wsdl:message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Message name.
    pub name: String,
    /// The parts, in order.
    pub parts: Vec<Part>,
}

/// A fault declared on an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Fault name.
    pub name: String,
    /// The message carrying the fault detail.
    pub message: NameRef,
}

/// A `wsdl:operation` inside a port type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation name.
    pub name: String,
    /// Input message, if any.
    pub input: Option<NameRef>,
    /// Output message, if any (absent = one-way).
    pub output: Option<NameRef>,
    /// Declared faults.
    pub faults: Vec<Fault>,
}

/// A `wsdl:portType`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortType {
    /// Port type name.
    pub name: String,
    /// Operations. **May legitimately be empty** — the paper's JBossWS
    /// case publishes operation-less port types, and the WSDL XML Schema
    /// allows it (`minOccurs=0`), which the paper argues should change.
    pub operations: Vec<Operation>,
}

/// SOAP binding style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Style {
    /// `document` style.
    #[default]
    Document,
    /// `rpc` style.
    Rpc,
}

impl Style {
    /// Attribute value.
    pub fn as_str(self) -> &'static str {
        match self {
            Style::Document => "document",
            Style::Rpc => "rpc",
        }
    }
}

/// SOAP body use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Use {
    /// `literal` (the only WS-I-conformant value).
    #[default]
    Literal,
    /// `encoded` (SOAP-encoding; violates WS-I BP R2706).
    Encoded,
}

impl Use {
    /// Attribute value.
    pub fn as_str(self) -> &'static str {
        match self {
            Use::Literal => "literal",
            Use::Encoded => "encoded",
        }
    }
}

/// The `soap:binding` extension on a `wsdl:binding`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapBinding {
    /// Default style for the binding.
    pub style: Style,
    /// Transport URI; WS-I requires the SOAP-over-HTTP transport.
    pub transport: String,
}

impl Default for SoapBinding {
    fn default() -> Self {
        SoapBinding {
            style: Style::Document,
            transport: wsinterop_xml::name::ns::SOAP_HTTP_TRANSPORT.to_string(),
        }
    }
}

/// A `wsdl:operation` inside a binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingOperation {
    /// Operation name (must match a port-type operation).
    pub name: String,
    /// `soap:operation/@soapAction`; `None` models a binding operation
    /// that lost its `soap:operation` extension element entirely (a
    /// WS-I violation some emitters produce).
    pub soap_action: Option<String>,
    /// Per-operation style override.
    pub style: Option<Style>,
    /// `soap:body/@use` on the input.
    pub input_use: Use,
    /// `soap:body/@use` on the output.
    pub output_use: Use,
}

/// An extension attribute recorded verbatim (`wsaw:UsingAddressing`
/// and friends); the name is the serialized lexical form including its
/// prefix, with the namespace recorded separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtensionAttr {
    /// Namespace URI the prefix must bind to.
    pub ns_uri: String,
    /// Lexical name (`wsaw:UsingAddressing`).
    pub lexical: String,
    /// Attribute value.
    pub value: String,
}

/// A `wsdl:binding`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Binding name.
    pub name: String,
    /// The bound port type.
    pub port_type: NameRef,
    /// The SOAP binding extension; `None` models a binding that lost its
    /// `soap:binding` child (a WS-I violation some emitters produce).
    pub soap: Option<SoapBinding>,
    /// Bound operations.
    pub operations: Vec<BindingOperation>,
    /// Foreign extension attributes (e.g. WS-Addressing markers).
    pub extension_attrs: Vec<ExtensionAttr>,
}

/// A `wsdl:port` inside a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// The binding this port exposes.
    pub binding: NameRef,
    /// `soap:address/@location`; `None` models a port without an
    /// address extension (WS-I violation).
    pub address: Option<String>,
}

/// A `wsdl:service`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Service {
    /// Service name.
    pub name: String,
    /// The ports.
    pub ports: Vec<Port>,
}

/// A complete WSDL 1.1 document (`wsdl:definitions`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Definitions {
    /// `name` attribute, if any.
    pub name: Option<String>,
    /// `targetNamespace`.
    pub target_ns: String,
    /// Inline schemas from the `types` section, in order.
    pub schemas: Vec<Schema>,
    /// Messages.
    pub messages: Vec<Message>,
    /// Port types.
    pub port_types: Vec<PortType>,
    /// Bindings.
    pub bindings: Vec<Binding>,
    /// Services.
    pub services: Vec<Service>,
    /// Prefer the `.NET` `s:`-for-XSD prefix style when serializing.
    pub dotnet_prefixes: bool,
}

impl Definitions {
    /// An empty document for the given target namespace.
    pub fn new(target_ns: impl Into<String>) -> Definitions {
        Definitions {
            name: None,
            target_ns: target_ns.into(),
            schemas: Vec::new(),
            messages: Vec::new(),
            port_types: Vec::new(),
            bindings: Vec::new(),
            services: Vec::new(),
            dotnet_prefixes: false,
        }
    }

    /// Looks up a message by local name.
    pub fn message(&self, local: &str) -> Option<&Message> {
        self.messages.iter().find(|m| m.name == local)
    }

    /// Looks up a port type by local name.
    pub fn port_type(&self, local: &str) -> Option<&PortType> {
        self.port_types.iter().find(|p| p.name == local)
    }

    /// Looks up a binding by local name.
    pub fn binding(&self, local: &str) -> Option<&Binding> {
        self.bindings.iter().find(|b| b.name == local)
    }

    /// Looks up a service by local name.
    pub fn service(&self, local: &str) -> Option<&Service> {
        self.services.iter().find(|s| s.name == local)
    }

    /// Finds the global element declaration a part refers to, searching
    /// every inline schema.
    pub fn resolve_part_element(&self, part: &Part) -> Option<&wsinterop_xsd::ElementDecl> {
        match &part.kind {
            PartKind::Element(r) => self
                .schemas
                .iter()
                .filter(|s| s.target_ns == r.ns_uri)
                .find_map(|s| s.element(&r.local)),
            PartKind::Type(_) => None,
        }
    }

    /// Total number of operations across all port types.
    pub fn operation_count(&self) -> usize {
        self.port_types.iter().map(|p| p.operations.len()).sum()
    }

    /// Finds an operation by name across all port types.
    pub fn find_operation(&self, name: &str) -> Option<&Operation> {
        self.port_types
            .iter()
            .flat_map(|pt| pt.operations.iter())
            .find(|op| op.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_xsd::{BuiltIn, ElementDecl, TypeRef};

    #[test]
    fn lookups_by_local_name() {
        let mut d = Definitions::new("urn:t");
        d.messages.push(Message {
            name: "m".into(),
            parts: vec![],
        });
        d.port_types.push(PortType {
            name: "p".into(),
            operations: vec![],
        });
        d.bindings.push(Binding {
            name: "b".into(),
            port_type: NameRef::new("urn:t", "p"),
            soap: Some(SoapBinding::default()),
            operations: vec![],
            extension_attrs: vec![],
        });
        d.services.push(Service {
            name: "s".into(),
            ports: vec![],
        });
        assert!(d.message("m").is_some());
        assert!(d.port_type("p").is_some());
        assert!(d.binding("b").is_some());
        assert!(d.service("s").is_some());
        assert!(d.message("x").is_none());
    }

    #[test]
    fn resolve_part_element_searches_schemas() {
        let mut d = Definitions::new("urn:t");
        let mut schema = Schema::new("urn:t");
        schema
            .elements
            .push(ElementDecl::typed("echo", TypeRef::BuiltIn(BuiltIn::Int)));
        d.schemas.push(schema);
        let part = Part {
            name: "parameters".into(),
            kind: PartKind::Element(NameRef::new("urn:t", "echo")),
        };
        assert!(d.resolve_part_element(&part).is_some());
        let missing = Part {
            name: "parameters".into(),
            kind: PartKind::Element(NameRef::new("urn:t", "nope")),
        };
        assert!(d.resolve_part_element(&missing).is_none());
    }

    #[test]
    fn find_operation_searches_all_port_types() {
        let mut d = Definitions::new("urn:t");
        d.port_types.push(PortType {
            name: "a".into(),
            operations: vec![Operation {
                name: "ping".into(),
                input: None,
                output: None,
                faults: vec![],
            }],
        });
        assert!(d.find_operation("ping").is_some());
        assert!(d.find_operation("pong").is_none());
    }

    #[test]
    fn operation_count_sums_port_types() {
        let mut d = Definitions::new("urn:t");
        d.port_types.push(PortType {
            name: "a".into(),
            operations: vec![Operation {
                name: "op1".into(),
                input: None,
                output: None,
                faults: vec![],
            }],
        });
        d.port_types.push(PortType {
            name: "b".into(),
            operations: vec![],
        });
        assert_eq!(d.operation_count(), 1);
    }
}
