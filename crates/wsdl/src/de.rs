//! Parsing of WSDL XML documents into [`Definitions`].
//!
//! This is the consumption path every simulated client tool goes
//! through: raw bytes → XML tree → `Definitions`. Errors here model the
//! "cannot process the service description at all" failure class.

use std::fmt;

use wsinterop_xml::name::ns;
use wsinterop_xml::scope::NsBindings;
use wsinterop_xml::{parse_document, Element, ParseXmlError};
use wsinterop_xsd::de::schema_from_element;

use crate::model::{
    Binding, BindingOperation, Definitions, ExtensionAttr, Fault, Message, NameRef, Operation,
    Part, PartKind, Port, PortType, Service, SoapBinding, Style, Use,
};

/// An error produced while reading a WSDL document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsdlReadError {
    /// The bytes were not well-formed XML.
    Xml(ParseXmlError),
    /// The XML was well-formed but not a readable WSDL document.
    Structure(String),
}

impl WsdlReadError {
    fn structure(message: impl Into<String>) -> WsdlReadError {
        WsdlReadError::Structure(message.into())
    }
}

impl fmt::Display for WsdlReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsdlReadError::Xml(e) => write!(f, "WSDL is not well-formed XML: {e}"),
            WsdlReadError::Structure(m) => write!(f, "invalid WSDL structure: {m}"),
        }
    }
}

impl std::error::Error for WsdlReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WsdlReadError::Xml(e) => Some(e),
            WsdlReadError::Structure(_) => None,
        }
    }
}

impl From<ParseXmlError> for WsdlReadError {
    fn from(e: ParseXmlError) -> Self {
        WsdlReadError::Xml(e)
    }
}

/// Parses WSDL text into [`Definitions`].
///
/// # Errors
///
/// Returns [`WsdlReadError::Xml`] for malformed XML and
/// [`WsdlReadError::Structure`] for well-formed documents that are not
/// readable WSDL (wrong root, unresolvable QNames, malformed schema).
///
/// # Examples
///
/// ```
/// use wsinterop_wsdl::{builder::doc_literal_echo, ser::to_xml_string, de::from_xml_str};
/// use wsinterop_xsd::{BuiltIn, TypeRef};
/// let defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
/// let xml = to_xml_string(&defs);
/// let back = from_xml_str(&xml)?;
/// assert_eq!(back, defs);
/// # Ok::<(), wsinterop_wsdl::de::WsdlReadError>(())
/// ```
pub fn from_xml_str(xml: &str) -> Result<Definitions, WsdlReadError> {
    let doc = parse_document(xml)?;
    from_element(doc.root())
}

/// Parses an already-parsed `wsdl:definitions` element.
///
/// # Errors
///
/// See [`from_xml_str`].
pub fn from_element(root: &Element) -> Result<Definitions, WsdlReadError> {
    if !root.is_named(ns::WSDL, "definitions") {
        return Err(WsdlReadError::structure(format!(
            "expected wsdl:definitions, found {}",
            root.expanded_name()
        )));
    }
    let mut scope = NsBindings::new();
    scope.push_element(root);

    let target_ns = root.attr("targetNamespace").unwrap_or_default().to_string();
    let mut defs = Definitions::new(&target_ns);
    defs.name = root.attr("name").map(str::to_string);

    for child in root.child_elements() {
        if child.ns_uri() != Some(ns::WSDL) {
            continue;
        }
        match child.name().local_part() {
            "types" => {
                scope.push_element(child);
                for schema_el in child.elements(ns::XSD, "schema") {
                    let schema = schema_from_element(schema_el, &scope)
                        .map_err(|e| WsdlReadError::structure(e.to_string()))?;
                    if schema.target_ns == ns::XSD {
                        // Writing a schema FOR the XSD namespace itself is
                        // how self-referential DataSet documents break
                        // strict consumers; tolerate it at parse level.
                    }
                    defs.schemas.push(schema);
                    // Detect whether the emitter used the .NET `s:` prefix
                    // (observable by clients in error messages).
                    if schema_el.name().prefix() == Some("s") {
                        defs.dotnet_prefixes = true;
                    }
                }
                scope.pop();
            }
            "message" => defs.messages.push(read_message(child, &mut scope)?),
            "portType" => defs.port_types.push(read_port_type(child, &mut scope)?),
            "binding" => defs.bindings.push(read_binding(child, &mut scope)?),
            "service" => defs.services.push(read_service(child, &mut scope)?),
            "documentation" | "import" => {}
            other => {
                return Err(WsdlReadError::structure(format!(
                    "unsupported wsdl construct `wsdl:{other}`"
                )))
            }
        }
    }
    Ok(defs)
}

fn require_name(el: &Element, what: &str) -> Result<String, WsdlReadError> {
    el.attr("name")
        .map(str::to_string)
        .ok_or_else(|| WsdlReadError::structure(format!("{what} without a name attribute")))
}

fn resolve_ref(
    el: &Element,
    attr: &str,
    scope: &NsBindings,
) -> Result<NameRef, WsdlReadError> {
    let raw = el.attr(attr).ok_or_else(|| {
        WsdlReadError::structure(format!(
            "wsdl:{} missing `{attr}` attribute",
            el.name().local_part()
        ))
    })?;
    let (ns_uri, local) = scope.resolve_qname_value(raw).ok_or_else(|| {
        WsdlReadError::structure(format!("cannot resolve QName `{raw}`"))
    })?;
    Ok(NameRef::new(ns_uri.unwrap_or_default(), local))
}

fn read_message(el: &Element, scope: &mut NsBindings) -> Result<Message, WsdlReadError> {
    scope.push_element(el);
    let result = (|| {
        let name = require_name(el, "wsdl:message")?;
        let mut parts = Vec::new();
        for part_el in el.elements(ns::WSDL, "part") {
            scope.push_element(part_el);
            let part = (|| {
                let part_name = require_name(part_el, "wsdl:part")?;
                let kind = if part_el.attr("element").is_some() {
                    PartKind::Element(resolve_ref(part_el, "element", scope)?)
                } else if let Some(raw) = part_el.attr("type") {
                    let (ns_uri, local) =
                        scope.resolve_qname_value(raw).ok_or_else(|| {
                            WsdlReadError::structure(format!("cannot resolve QName `{raw}`"))
                        })?;
                    let type_ref = match ns_uri.as_deref() {
                        Some(uri) if uri == ns::XSD => local
                            .parse::<wsinterop_xsd::BuiltIn>()
                            .map(wsinterop_xsd::TypeRef::BuiltIn)
                            .map_err(|e| WsdlReadError::structure(e.to_string()))?,
                        Some(uri) => wsinterop_xsd::TypeRef::named(uri, local),
                        None => wsinterop_xsd::TypeRef::named("", local),
                    };
                    PartKind::Type(type_ref)
                } else {
                    return Err(WsdlReadError::structure(format!(
                        "wsdl:part `{part_name}` has neither element nor type"
                    )));
                };
                Ok(Part {
                    name: part_name,
                    kind,
                })
            })();
            scope.pop();
            parts.push(part?);
        }
        Ok(Message { name, parts })
    })();
    scope.pop();
    result
}

fn read_port_type(el: &Element, scope: &mut NsBindings) -> Result<PortType, WsdlReadError> {
    scope.push_element(el);
    let result = (|| {
        let name = require_name(el, "wsdl:portType")?;
        let mut operations = Vec::new();
        for op_el in el.elements(ns::WSDL, "operation") {
            scope.push_element(op_el);
            let op = (|| -> Result<Operation, WsdlReadError> {
                let op_name = require_name(op_el, "wsdl:operation")?;
                let input = match op_el.element(ns::WSDL, "input") {
                    Some(i) => Some(resolve_ref(i, "message", scope)?),
                    None => None,
                };
                let output = match op_el.element(ns::WSDL, "output") {
                    Some(o) => Some(resolve_ref(o, "message", scope)?),
                    None => None,
                };
                let mut faults = Vec::new();
                for f in op_el.elements(ns::WSDL, "fault") {
                    faults.push(Fault {
                        name: require_name(f, "wsdl:fault")?,
                        message: resolve_ref(f, "message", scope)?,
                    });
                }
                Ok(Operation {
                    name: op_name,
                    input,
                    output,
                    faults,
                })
            })();
            scope.pop();
            operations.push(op?);
        }
        Ok(PortType { name, operations })
    })();
    scope.pop();
    result
}

fn read_binding(el: &Element, scope: &mut NsBindings) -> Result<Binding, WsdlReadError> {
    scope.push_element(el);
    let result = (|| {
        let name = require_name(el, "wsdl:binding")?;
        let port_type = resolve_ref(el, "type", scope)?;

        let mut extension_attrs = Vec::new();
        for attr in el.attrs() {
            if let Some(prefix) = attr.name().prefix() {
                if prefix != "xmlns" {
                    if let Some(uri) = scope.resolve(Some(prefix)) {
                        if uri != ns::WSDL {
                            extension_attrs.push(ExtensionAttr {
                                ns_uri: uri.to_string(),
                                lexical: attr.name().to_string(),
                                value: attr.value().to_string(),
                            });
                        }
                    }
                }
            }
        }

        let soap = el.element(ns::WSDL_SOAP, "binding").map(|soap_el| SoapBinding {
            style: match soap_el.attr("style") {
                Some("rpc") => Style::Rpc,
                _ => Style::Document,
            },
            transport: soap_el.attr("transport").unwrap_or_default().to_string(),
        });

        let mut operations = Vec::new();
        for op_el in el.elements(ns::WSDL, "operation") {
            let op_name = require_name(op_el, "wsdl:operation (binding)")?;
            let soap_op = op_el.element(ns::WSDL_SOAP, "operation");
            let read_use = |io: Option<&Element>| -> Use {
                io.and_then(|e| e.element(ns::WSDL_SOAP, "body"))
                    .and_then(|b| b.attr("use"))
                    .map(|u| if u == "encoded" { Use::Encoded } else { Use::Literal })
                    .unwrap_or_default()
            };
            operations.push(BindingOperation {
                name: op_name,
                soap_action: soap_op
                    .map(|o| o.attr("soapAction").unwrap_or_default().to_string()),
                style: soap_op.and_then(|o| o.attr("style")).map(|s| {
                    if s == "rpc" {
                        Style::Rpc
                    } else {
                        Style::Document
                    }
                }),
                input_use: read_use(op_el.element(ns::WSDL, "input")),
                output_use: read_use(op_el.element(ns::WSDL, "output")),
            });
        }
        Ok(Binding {
            name,
            port_type,
            soap,
            operations,
            extension_attrs,
        })
    })();
    scope.pop();
    result
}

fn read_service(el: &Element, scope: &mut NsBindings) -> Result<Service, WsdlReadError> {
    scope.push_element(el);
    let result = (|| {
        let name = require_name(el, "wsdl:service")?;
        let mut ports = Vec::new();
        for port_el in el.elements(ns::WSDL, "port") {
            scope.push_element(port_el);
            let port = (|| -> Result<Port, WsdlReadError> {
                Ok(Port {
                    name: require_name(port_el, "wsdl:port")?,
                    binding: resolve_ref(port_el, "binding", scope)?,
                    address: port_el
                        .element(ns::WSDL_SOAP, "address")
                        .and_then(|a| a.attr("location"))
                        .map(str::to_string),
                })
            })();
            scope.pop();
            ports.push(port?);
        }
        Ok(Service { name, ports })
    })();
    scope.pop();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{doc_literal_echo, DocLiteralBuilder};
    use crate::ser::to_xml_string;
    use wsinterop_xsd::{BuiltIn, ComplexType, TypeRef};

    #[test]
    fn roundtrip_echo() {
        let defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::String));
        let back = from_xml_str(&to_xml_string(&defs)).unwrap();
        assert_eq!(back, defs);
    }

    #[test]
    fn roundtrip_with_faults_and_extensions() {
        let mut defs = DocLiteralBuilder::new("S", "urn:t")
            .operation("op", TypeRef::BuiltIn(BuiltIn::Int), TypeRef::BuiltIn(BuiltIn::Long))
            .fault("Oops", ComplexType::anonymous())
            .build();
        defs.bindings[0].extension_attrs.push(ExtensionAttr {
            ns_uri: ns::WSAW.to_string(),
            lexical: "wsaw:UsingAddressing".to_string(),
            value: "true".to_string(),
        });
        let back = from_xml_str(&to_xml_string(&defs)).unwrap();
        assert_eq!(back, defs);
    }

    #[test]
    fn roundtrip_dotnet_prefixes() {
        let mut defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        defs.dotnet_prefixes = true;
        let back = from_xml_str(&to_xml_string(&defs)).unwrap();
        assert_eq!(back, defs);
    }

    #[test]
    fn rejects_non_wsdl_root() {
        let err = from_xml_str("<html/>").unwrap_err();
        assert!(matches!(err, WsdlReadError::Structure(_)));
    }

    #[test]
    fn rejects_malformed_xml() {
        let err = from_xml_str("<wsdl:definitions").unwrap_err();
        assert!(matches!(err, WsdlReadError::Xml(_)));
    }

    #[test]
    fn operation_less_port_type_parses() {
        // The JBossWS bug shape: portType with zero operations must be
        // *parseable* — whether tools accept it is their policy.
        let xml = r#"<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
              targetNamespace="urn:t">
              <wsdl:portType name="Empty"/>
            </wsdl:definitions>"#;
        let defs = from_xml_str(xml).unwrap();
        assert_eq!(defs.port_types[0].operations.len(), 0);
        assert_eq!(defs.operation_count(), 0);
    }

    #[test]
    fn missing_part_target_is_error() {
        let xml = r#"<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
              targetNamespace="urn:t">
              <wsdl:message name="m"><wsdl:part name="p"/></wsdl:message>
            </wsdl:definitions>"#;
        let err = from_xml_str(xml).unwrap_err();
        assert!(err.to_string().contains("neither element nor type"));
    }

    #[test]
    fn unresolvable_message_qname_is_error() {
        let xml = r#"<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
              targetNamespace="urn:t">
              <wsdl:portType name="p">
                <wsdl:operation name="o"><wsdl:input message="ghost:m"/></wsdl:operation>
              </wsdl:portType>
            </wsdl:definitions>"#;
        let err = from_xml_str(xml).unwrap_err();
        assert!(err.to_string().contains("ghost:m"));
    }

    #[test]
    fn binding_without_soap_extension() {
        let xml = r#"<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
              xmlns:tns="urn:t" targetNamespace="urn:t">
              <wsdl:portType name="p"/>
              <wsdl:binding name="b" type="tns:p"/>
            </wsdl:definitions>"#;
        let defs = from_xml_str(xml).unwrap();
        assert!(defs.bindings[0].soap.is_none());
    }
}
