//! High-level construction of document/literal-wrapped WSDL documents.
//!
//! Every service in the reproduced study has the same canonical shape —
//! one operation, one input, one output of the same type — so the
//! builder API centres on that pattern while staying general enough for
//! the framework emitters to express their quirks (extra faults,
//! operation-less port types, irregular schemas).

use wsinterop_xsd::{ComplexType, ElementDecl, Particle, Schema, TypeRef};

use crate::model::{
    Binding, BindingOperation, Definitions, Fault, Message, NameRef, Operation, Part, PartKind,
    PortType, Service, SoapBinding, Port, Use,
};

/// Builder for a document/literal-wrapped service description.
///
/// # Examples
///
/// ```
/// use wsinterop_wsdl::builder::DocLiteralBuilder;
/// use wsinterop_xsd::{BuiltIn, TypeRef};
///
/// let defs = DocLiteralBuilder::new("CalcService", "urn:calc")
///     .operation("add", TypeRef::BuiltIn(BuiltIn::Int), TypeRef::BuiltIn(BuiltIn::Int))
///     .build();
/// assert_eq!(defs.operation_count(), 1);
/// assert_eq!(defs.messages.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DocLiteralBuilder {
    service_name: String,
    target_ns: String,
    operations: Vec<OpSpec>,
    faults: Vec<(String, ComplexType)>,
    endpoint: Option<String>,
    dotnet_prefixes: bool,
}

#[derive(Debug, Clone)]
struct OpSpec {
    name: String,
    input: TypeRef,
    output: TypeRef,
    /// Extra schema types the operation drags in (wrapper beans, etc.).
    extra_types: Vec<ComplexType>,
}

impl DocLiteralBuilder {
    /// Starts a builder for `service_name` in `target_ns`.
    pub fn new(service_name: impl Into<String>, target_ns: impl Into<String>) -> Self {
        DocLiteralBuilder {
            service_name: service_name.into(),
            target_ns: target_ns.into(),
            operations: Vec::new(),
            faults: Vec::new(),
            endpoint: None,
            dotnet_prefixes: false,
        }
    }

    /// Adds an operation with a single `arg0` input and a `return`
    /// output of the given types.
    #[must_use]
    pub fn operation(mut self, name: impl Into<String>, input: TypeRef, output: TypeRef) -> Self {
        self.operations.push(OpSpec {
            name: name.into(),
            input,
            output,
            extra_types: Vec::new(),
        });
        self
    }

    /// Adds an operation that also contributes named complex types to
    /// the schema (framework emitters use this for bean graphs).
    #[must_use]
    pub fn operation_with_types(
        mut self,
        name: impl Into<String>,
        input: TypeRef,
        output: TypeRef,
        extra_types: Vec<ComplexType>,
    ) -> Self {
        self.operations.push(OpSpec {
            name: name.into(),
            input,
            output,
            extra_types,
        });
        self
    }

    /// Declares a fault (name + detail bean) on every operation.
    #[must_use]
    pub fn fault(mut self, name: impl Into<String>, detail: ComplexType) -> Self {
        self.faults.push((name.into(), detail));
        self
    }

    /// Overrides the `soap:address` location.
    #[must_use]
    pub fn endpoint(mut self, url: impl Into<String>) -> Self {
        self.endpoint = Some(url.into());
        self
    }

    /// Serializes schemas with the `.NET` prefix convention (`s:`).
    #[must_use]
    pub fn dotnet_prefixes(mut self) -> Self {
        self.dotnet_prefixes = true;
        self
    }

    /// Builds the [`Definitions`].
    pub fn build(self) -> Definitions {
        let tns = self.target_ns.clone();
        let mut defs = Definitions::new(&tns);
        defs.name = Some(self.service_name.clone());
        defs.dotnet_prefixes = self.dotnet_prefixes;

        let mut schema = Schema::new(&tns);
        let mut port_type = PortType {
            name: format!("{}PortType", self.service_name),
            operations: Vec::new(),
        };
        let mut binding_ops = Vec::new();

        // Fault detail types + elements + messages (shared per service).
        let mut fault_refs = Vec::new();
        for (fault_name, detail) in &self.faults {
            let detail_name = detail
                .name
                .clone()
                .unwrap_or_else(|| format!("{fault_name}Bean"));
            let mut named = detail.clone();
            named.name = Some(detail_name.clone());
            schema.complex_types.push(named);
            schema.elements.push(ElementDecl::typed(
                fault_name.clone(),
                TypeRef::named(&tns, detail_name),
            ));
            let message_name = format!("{fault_name}Message");
            defs.messages.push(Message {
                name: message_name.clone(),
                parts: vec![Part {
                    name: "fault".into(),
                    kind: PartKind::Element(NameRef::new(&tns, fault_name.clone())),
                }],
            });
            fault_refs.push(Fault {
                name: fault_name.clone(),
                message: NameRef::new(&tns, message_name),
            });
        }

        for op in &self.operations {
            let req_el = op.name.clone();
            let res_el = format!("{}Response", op.name);

            schema.elements.push(ElementDecl::with_inline(
                req_el.clone(),
                ComplexType::anonymous().with_particle(Particle::Element(
                    ElementDecl::typed("arg0", op.input.clone()).min(0),
                )),
            ));
            schema.elements.push(ElementDecl::with_inline(
                res_el.clone(),
                ComplexType::anonymous().with_particle(Particle::Element(
                    ElementDecl::typed("return", op.output.clone()).min(0),
                )),
            ));
            schema.complex_types.extend(op.extra_types.iter().cloned());

            let req_msg = format!("{}Request", op.name);
            let res_msg = format!("{}ResponseMsg", op.name);
            defs.messages.push(Message {
                name: req_msg.clone(),
                parts: vec![Part {
                    name: "parameters".into(),
                    kind: PartKind::Element(NameRef::new(&tns, req_el)),
                }],
            });
            defs.messages.push(Message {
                name: res_msg.clone(),
                parts: vec![Part {
                    name: "parameters".into(),
                    kind: PartKind::Element(NameRef::new(&tns, res_el)),
                }],
            });

            port_type.operations.push(Operation {
                name: op.name.clone(),
                input: Some(NameRef::new(&tns, req_msg)),
                output: Some(NameRef::new(&tns, res_msg)),
                faults: fault_refs.clone(),
            });
            binding_ops.push(BindingOperation {
                name: op.name.clone(),
                soap_action: Some(String::new()),
                style: None,
                input_use: Use::Literal,
                output_use: Use::Literal,
            });
        }

        defs.schemas.push(schema);
        let port_type_name = port_type.name.clone();
        defs.port_types.push(port_type);
        let binding_name = format!("{}Binding", self.service_name);
        defs.bindings.push(Binding {
            name: binding_name.clone(),
            port_type: NameRef::new(&tns, port_type_name),
            soap: Some(SoapBinding::default()),
            operations: binding_ops,
            extension_attrs: Vec::new(),
        });
        defs.services.push(Service {
            name: self.service_name.clone(),
            ports: vec![Port {
                name: format!("{}Port", self.service_name),
                binding: NameRef::new(&tns, binding_name),
                address: Some(self.endpoint.unwrap_or_else(|| {
                    format!("http://localhost:8080/{}", self.service_name)
                })),
            }],
        });
        defs
    }
}

/// An rpc operation signature: `(name, parameters, return type)`.
type RpcSignature = (String, Vec<(String, TypeRef)>, TypeRef);

/// Builder for an **rpc/literal** service description — the second
/// WS-I-sanctioned binding pattern, used by the extension experiments
/// ("more elaborate patterns of inter-operation" in the paper's future
/// work). Parts reference *types* rather than elements, which is
/// conformant under the rpc style (and a violation under document
/// style — the distinction behind WS-I R2203/R2204).
#[derive(Debug, Clone)]
pub struct RpcLiteralBuilder {
    service_name: String,
    target_ns: String,
    operations: Vec<RpcSignature>,
    types: Vec<ComplexType>,
}

impl RpcLiteralBuilder {
    /// Starts a builder for `service_name` in `target_ns`.
    pub fn new(service_name: impl Into<String>, target_ns: impl Into<String>) -> Self {
        RpcLiteralBuilder {
            service_name: service_name.into(),
            target_ns: target_ns.into(),
            operations: Vec::new(),
            types: Vec::new(),
        }
    }

    /// Adds an operation with named, typed parameters and a return
    /// type (rpc signatures support multiple parameters).
    #[must_use]
    pub fn operation(
        mut self,
        name: impl Into<String>,
        params: Vec<(String, TypeRef)>,
        output: TypeRef,
    ) -> Self {
        self.operations.push((name.into(), params, output));
        self
    }

    /// Contributes a named complex type to the schema.
    #[must_use]
    pub fn with_type(mut self, ct: ComplexType) -> Self {
        self.types.push(ct);
        self
    }

    /// Builds the [`Definitions`].
    pub fn build(self) -> Definitions {
        use crate::model::{SoapBinding, Style};

        let tns = self.target_ns.clone();
        let mut defs = Definitions::new(&tns);
        defs.name = Some(self.service_name.clone());

        let mut schema = Schema::new(&tns);
        schema.complex_types = self.types;
        let mut port_type = PortType {
            name: format!("{}PortType", self.service_name),
            operations: Vec::new(),
        };
        let mut binding_ops = Vec::new();

        for (name, params, output) in &self.operations {
            let req_msg = format!("{name}Request");
            let res_msg = format!("{name}ResponseMsg");
            defs.messages.push(Message {
                name: req_msg.clone(),
                parts: params
                    .iter()
                    .map(|(pname, ptype)| Part {
                        name: pname.clone(),
                        kind: PartKind::Type(ptype.clone()),
                    })
                    .collect(),
            });
            defs.messages.push(Message {
                name: res_msg.clone(),
                parts: vec![Part {
                    name: "return".into(),
                    kind: PartKind::Type(output.clone()),
                }],
            });
            port_type.operations.push(Operation {
                name: name.clone(),
                input: Some(NameRef::new(&tns, req_msg)),
                output: Some(NameRef::new(&tns, res_msg)),
                faults: Vec::new(),
            });
            binding_ops.push(BindingOperation {
                name: name.clone(),
                soap_action: Some(String::new()),
                style: None,
                input_use: Use::Literal,
                output_use: Use::Literal,
            });
        }

        defs.schemas.push(schema);
        let port_type_name = port_type.name.clone();
        defs.port_types.push(port_type);
        let binding_name = format!("{}Binding", self.service_name);
        defs.bindings.push(Binding {
            name: binding_name.clone(),
            port_type: NameRef::new(&tns, port_type_name),
            soap: Some(SoapBinding {
                style: Style::Rpc,
                ..SoapBinding::default()
            }),
            operations: binding_ops,
            extension_attrs: Vec::new(),
        });
        defs.services.push(Service {
            name: self.service_name.clone(),
            ports: vec![Port {
                name: format!("{}Port", self.service_name),
                binding: NameRef::new(&tns, binding_name),
                address: Some(format!("http://localhost:8080/{}", self.service_name)),
            }],
        });
        defs
    }
}

/// One-call construction of the study's canonical echo service: a
/// single operation whose input and output have the same type.
///
/// # Examples
///
/// ```
/// use wsinterop_wsdl::builder::doc_literal_echo;
/// use wsinterop_xsd::{BuiltIn, TypeRef};
/// let defs = doc_literal_echo("EchoService", "urn:echo", "echo", TypeRef::BuiltIn(BuiltIn::Double));
/// assert_eq!(defs.port_types[0].operations[0].name, "echo");
/// ```
pub fn doc_literal_echo(
    service_name: &str,
    target_ns: &str,
    op_name: &str,
    echo_type: TypeRef,
) -> Definitions {
    DocLiteralBuilder::new(service_name, target_ns)
        .operation(op_name, echo_type.clone(), echo_type)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_xsd::BuiltIn;

    #[test]
    fn echo_service_shape() {
        let defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        assert_eq!(defs.schemas.len(), 1);
        assert_eq!(defs.schemas[0].elements.len(), 2);
        assert_eq!(defs.messages.len(), 2);
        assert_eq!(defs.port_types.len(), 1);
        assert_eq!(defs.bindings.len(), 1);
        assert_eq!(defs.services.len(), 1);
        assert_eq!(defs.bindings[0].operations.len(), 1);
        let port = &defs.services[0].ports[0];
        assert!(port.address.as_deref().unwrap().starts_with("http://"));
    }

    #[test]
    fn messages_resolve_to_schema_elements() {
        let defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        for message in &defs.messages {
            for part in &message.parts {
                assert!(
                    defs.resolve_part_element(part).is_some(),
                    "part {} must resolve",
                    part.name
                );
            }
        }
    }

    #[test]
    fn faults_share_across_operations() {
        let defs = DocLiteralBuilder::new("S", "urn:t")
            .operation("a", TypeRef::BuiltIn(BuiltIn::Int), TypeRef::BuiltIn(BuiltIn::Int))
            .operation("b", TypeRef::BuiltIn(BuiltIn::Int), TypeRef::BuiltIn(BuiltIn::Int))
            .fault("AppError", ComplexType::anonymous())
            .build();
        assert_eq!(defs.port_types[0].operations[0].faults.len(), 1);
        assert_eq!(defs.port_types[0].operations[1].faults.len(), 1);
        // Fault message + 2 ops × 2 messages
        assert_eq!(defs.messages.len(), 5);
    }

    #[test]
    fn extra_types_land_in_schema() {
        let defs = DocLiteralBuilder::new("S", "urn:t")
            .operation_with_types(
                "op",
                TypeRef::named("urn:t", "Bean"),
                TypeRef::named("urn:t", "Bean"),
                vec![ComplexType::named("Bean")],
            )
            .build();
        assert!(defs.schemas[0].complex_type("Bean").is_some());
    }

    #[test]
    fn rpc_literal_builder_shape() {
        let defs = RpcLiteralBuilder::new("Calc", "urn:calc")
            .operation(
                "add",
                vec![
                    ("a".into(), TypeRef::BuiltIn(BuiltIn::Int)),
                    ("b".into(), TypeRef::BuiltIn(BuiltIn::Int)),
                ],
                TypeRef::BuiltIn(BuiltIn::Int),
            )
            .build();
        assert_eq!(defs.operation_count(), 1);
        assert_eq!(defs.messages[0].parts.len(), 2);
        assert!(defs.messages[0]
            .parts
            .iter()
            .all(|p| matches!(p.kind, PartKind::Type(_))));
        assert_eq!(
            defs.bindings[0].soap.as_ref().unwrap().style,
            crate::model::Style::Rpc
        );
        // Roundtrips like everything else.
        let xml = crate::ser::to_xml_string(&defs);
        assert_eq!(crate::de::from_xml_str(&xml).unwrap(), defs);
    }

    #[test]
    fn custom_endpoint() {
        let defs = DocLiteralBuilder::new("S", "urn:t")
            .operation("op", TypeRef::BuiltIn(BuiltIn::Int), TypeRef::BuiltIn(BuiltIn::Int))
            .endpoint("http://example.org/svc")
            .build();
        assert_eq!(
            defs.services[0].ports[0].address.as_deref(),
            Some("http://example.org/svc")
        );
    }
}
