//! Serialization of [`Definitions`] to a WSDL XML document.

use wsinterop_xml::name::ns;
use wsinterop_xml::writer::{write_document, WriteOptions};
use wsinterop_xml::{Document, Element};
use wsinterop_xsd::ser::{schema_to_element, SerOptions};

use crate::model::{
    Binding, BindingOperation, Definitions, Message, NameRef, Operation, PartKind, PortType,
    Service,
};

/// Serializes the definitions to a complete XML document string.
///
/// # Examples
///
/// ```
/// use wsinterop_wsdl::builder::doc_literal_echo;
/// use wsinterop_wsdl::ser::to_xml_string;
/// use wsinterop_xsd::{BuiltIn, TypeRef};
/// let defs = doc_literal_echo("EchoService", "urn:echo", "echo", TypeRef::BuiltIn(BuiltIn::Int));
/// let xml = to_xml_string(&defs);
/// assert!(xml.contains("wsdl:definitions"));
/// assert!(xml.contains("soap:binding"));
/// ```
pub fn to_xml_string(defs: &Definitions) -> String {
    write_document(&to_document(defs), &WriteOptions::pretty())
}

/// Serializes the definitions to an XML [`Document`].
pub fn to_document(defs: &Definitions) -> Document {
    let ctx = Ctx::new(defs);
    let mut root = Element::new("wsdl:definitions")
        .in_ns(ns::WSDL)
        .with_ns_decl(Some("wsdl"), ns::WSDL)
        .with_ns_decl(Some("soap"), ns::WSDL_SOAP)
        .with_ns_decl(Some(&ctx.xsd_prefix), ns::XSD)
        .with_ns_decl(Some("tns"), &defs.target_ns);
    for (uri, prefix) in &ctx.extra {
        root.declare_ns(Some(prefix), uri);
    }
    if let Some(name) = &defs.name {
        root.set_attr("name", name);
    }
    root.set_attr("targetNamespace", &defs.target_ns);

    if !defs.schemas.is_empty() {
        let mut types = Element::new("wsdl:types").in_ns(ns::WSDL);
        for schema in &defs.schemas {
            let opts = SerOptions {
                xsd_prefix: ctx.xsd_prefix.clone(),
                tns_prefix: "tns".to_string(),
                extra: ctx.extra.clone(),
                // Prefixes are declared on wsdl:definitions, but schemas
                // re-declare them so they stay valid when extracted.
                declare_namespaces: true,
            };
            types.push_element(schema_to_element(schema, &opts));
        }
        root.push_element(types);
    }

    for message in &defs.messages {
        root.push_element(message_to_element(message, &ctx));
    }
    for port_type in &defs.port_types {
        root.push_element(port_type_to_element(port_type, &ctx));
    }
    for binding in &defs.bindings {
        root.push_element(binding_to_element(binding, &ctx));
    }
    for service in &defs.services {
        root.push_element(service_to_element(service, &ctx));
    }
    Document::new(root)
}

struct Ctx {
    target_ns: String,
    xsd_prefix: String,
    extra: Vec<(String, String)>,
}

impl Ctx {
    fn new(defs: &Definitions) -> Ctx {
        let mut extra: Vec<(String, String)> = Vec::new();
        let mut counter = 1;
        let mut note = |uri: &str, extra: &mut Vec<(String, String)>, preferred: Option<&str>| {
            if uri == defs.target_ns || uri == ns::XSD || uri == ns::WSDL || uri == ns::WSDL_SOAP
            {
                return;
            }
            if extra.iter().any(|(u, _)| u == uri) {
                return;
            }
            let prefix = preferred
                .map(str::to_string)
                .unwrap_or_else(|| {
                    let p = format!("ns{counter}");
                    counter += 1;
                    p
                });
            extra.push((uri.to_string(), prefix));
        };
        for schema in &defs.schemas {
            for import in &schema.imports {
                note(&import.namespace, &mut extra, None);
            }
            if schema.target_ns != defs.target_ns {
                note(&schema.target_ns, &mut extra, None);
            }
        }
        for binding in &defs.bindings {
            for attr in &binding.extension_attrs {
                let preferred = attr
                    .lexical
                    .split_once(':')
                    .map(|(prefix, _)| prefix)
                    .filter(|p| !p.is_empty());
                note(&attr.ns_uri, &mut extra, preferred);
            }
        }
        Ctx {
            target_ns: defs.target_ns.clone(),
            xsd_prefix: if defs.dotnet_prefixes { "s" } else { "xsd" }.to_string(),
            extra,
        }
    }

    fn qname(&self, r: &NameRef) -> String {
        if r.ns_uri == self.target_ns {
            format!("tns:{}", r.local)
        } else if r.ns_uri == ns::XSD {
            format!("{}:{}", self.xsd_prefix, r.local)
        } else if let Some((_, p)) = self.extra.iter().find(|(u, _)| *u == r.ns_uri) {
            format!("{p}:{}", r.local)
        } else {
            r.local.clone()
        }
    }

    fn type_qname(&self, r: &wsinterop_xsd::TypeRef) -> String {
        match r {
            wsinterop_xsd::TypeRef::BuiltIn(b) => {
                format!("{}:{}", self.xsd_prefix, b.xsd_name())
            }
            wsinterop_xsd::TypeRef::Named { ns_uri, local } => {
                self.qname(&NameRef::new(ns_uri.clone(), local.clone()))
            }
        }
    }
}

fn message_to_element(message: &Message, ctx: &Ctx) -> Element {
    let mut el = Element::new("wsdl:message")
        .in_ns(ns::WSDL)
        .with_attr("name", &message.name);
    for part in &message.parts {
        let mut part_el = Element::new("wsdl:part")
            .in_ns(ns::WSDL)
            .with_attr("name", &part.name);
        match &part.kind {
            PartKind::Element(r) => part_el.set_attr("element", ctx.qname(r)),
            PartKind::Type(r) => part_el.set_attr("type", ctx.type_qname(r)),
        }
        el.push_element(part_el);
    }
    el
}

fn operation_to_element(op: &Operation, ctx: &Ctx) -> Element {
    let mut el = Element::new("wsdl:operation")
        .in_ns(ns::WSDL)
        .with_attr("name", &op.name);
    if let Some(input) = &op.input {
        el.push_element(
            Element::new("wsdl:input")
                .in_ns(ns::WSDL)
                .with_attr("message", ctx.qname(input)),
        );
    }
    if let Some(output) = &op.output {
        el.push_element(
            Element::new("wsdl:output")
                .in_ns(ns::WSDL)
                .with_attr("message", ctx.qname(output)),
        );
    }
    for fault in &op.faults {
        el.push_element(
            Element::new("wsdl:fault")
                .in_ns(ns::WSDL)
                .with_attr("name", &fault.name)
                .with_attr("message", ctx.qname(&fault.message)),
        );
    }
    el
}

fn port_type_to_element(port_type: &PortType, ctx: &Ctx) -> Element {
    let mut el = Element::new("wsdl:portType")
        .in_ns(ns::WSDL)
        .with_attr("name", &port_type.name);
    for op in &port_type.operations {
        el.push_element(operation_to_element(op, ctx));
    }
    el
}

fn binding_operation_to_element(op: &BindingOperation, _ctx: &Ctx) -> Element {
    let mut el = Element::new("wsdl:operation")
        .in_ns(ns::WSDL)
        .with_attr("name", &op.name);
    if let Some(action) = &op.soap_action {
        let mut soap_op = Element::new("soap:operation")
            .in_ns(ns::WSDL_SOAP)
            .with_attr("soapAction", action);
        if let Some(style) = op.style {
            soap_op.set_attr("style", style.as_str());
        }
        el.push_element(soap_op);
    }
    el.with_child(
            Element::new("wsdl:input").in_ns(ns::WSDL).with_child(
                Element::new("soap:body")
                    .in_ns(ns::WSDL_SOAP)
                    .with_attr("use", op.input_use.as_str()),
            ),
        )
        .with_child(
            Element::new("wsdl:output").in_ns(ns::WSDL).with_child(
                Element::new("soap:body")
                    .in_ns(ns::WSDL_SOAP)
                    .with_attr("use", op.output_use.as_str()),
            ),
        )
}

fn binding_to_element(binding: &Binding, ctx: &Ctx) -> Element {
    let mut el = Element::new("wsdl:binding")
        .in_ns(ns::WSDL)
        .with_attr("name", &binding.name)
        .with_attr("type", ctx.qname(&binding.port_type));
    for attr in &binding.extension_attrs {
        el.set_attr(&attr.lexical, &attr.value);
    }
    if let Some(soap) = &binding.soap {
        el.push_element(
            Element::new("soap:binding")
                .in_ns(ns::WSDL_SOAP)
                .with_attr("transport", &soap.transport)
                .with_attr("style", soap.style.as_str()),
        );
    }
    for op in &binding.operations {
        el.push_element(binding_operation_to_element(op, ctx));
    }
    el
}

fn service_to_element(service: &Service, ctx: &Ctx) -> Element {
    let mut el = Element::new("wsdl:service")
        .in_ns(ns::WSDL)
        .with_attr("name", &service.name);
    for port in &service.ports {
        let mut port_el = Element::new("wsdl:port")
            .in_ns(ns::WSDL)
            .with_attr("name", &port.name)
            .with_attr("binding", ctx.qname(&port.binding));
        if let Some(location) = &port.address {
            port_el.push_element(
                Element::new("soap:address")
                    .in_ns(ns::WSDL_SOAP)
                    .with_attr("location", location),
            );
        }
        el.push_element(port_el);
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::doc_literal_echo;
    use wsinterop_xsd::{BuiltIn, TypeRef};

    #[test]
    fn document_has_all_sections() {
        let defs = doc_literal_echo("EchoService", "urn:echo", "echo", TypeRef::BuiltIn(BuiltIn::String));
        let xml = to_xml_string(&defs);
        for needle in [
            "wsdl:types",
            "wsdl:message",
            "wsdl:portType",
            "wsdl:binding",
            "wsdl:service",
            "soap:address",
            r#"targetNamespace="urn:echo""#,
        ] {
            assert!(xml.contains(needle), "missing {needle} in:\n{xml}");
        }
    }

    #[test]
    fn dotnet_prefixes_use_s() {
        let mut defs =
            doc_literal_echo("EchoService", "urn:echo", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        defs.dotnet_prefixes = true;
        let xml = to_xml_string(&defs);
        assert!(xml.contains("xmlns:s="), "{xml}");
        assert!(xml.contains("<s:schema"), "{xml}");
    }

    #[test]
    fn extension_attrs_get_declared() {
        let mut defs =
            doc_literal_echo("EchoService", "urn:echo", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        defs.bindings[0].extension_attrs.push(crate::model::ExtensionAttr {
            ns_uri: ns::WSAW.to_string(),
            lexical: "wsaw:UsingAddressing".to_string(),
            value: "true".to_string(),
        });
        let xml = to_xml_string(&defs);
        assert!(xml.contains("xmlns:wsaw="), "{xml}");
        assert!(xml.contains(r#"wsaw:UsingAddressing="true""#), "{xml}");
    }
}
