//! SOAP 1.1 envelope construction and parsing for document/literal
//! exchanges.
//!
//! The reproduced study explicitly scopes out the Communication and
//! Execution steps, but a working message layer is part of any credible
//! web-service substrate; the examples use it to demonstrate what a
//! *successful* interop chain would go on to exchange.

use std::fmt;

use wsinterop_xml::name::ns;
use wsinterop_xml::{parse_document, Document, Element};

use crate::model::{Definitions, PartKind};

/// An error produced while building or reading SOAP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapError(String);

impl SoapError {
    fn new(message: impl Into<String>) -> SoapError {
        SoapError(message.into())
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SOAP error: {}", self.0)
    }
}

impl std::error::Error for SoapError {}

/// Wraps a payload element in a SOAP 1.1 envelope.
///
/// # Examples
///
/// ```
/// use wsinterop_wsdl::soap::envelope;
/// use wsinterop_xml::{Element, writer::{write_document, WriteOptions}};
/// let doc = envelope(Element::new("ping"));
/// let xml = write_document(&doc, &WriteOptions::compact());
/// assert!(xml.contains("soapenv:Envelope"));
/// assert!(xml.contains("<ping/>"));
/// ```
pub fn envelope(payload: Element) -> Document {
    let body = Element::new("soapenv:Body")
        .in_ns(ns::SOAP_ENV)
        .with_child(payload);
    Document::new(
        Element::new("soapenv:Envelope")
            .in_ns(ns::SOAP_ENV)
            .with_ns_decl(Some("soapenv"), ns::SOAP_ENV)
            .with_child(body),
    )
}

/// Resolves the doc/literal input wrapper of `op_name`: the wrapper
/// element declaration plus its namespace URI — the shared resolution
/// walk behind [`request`] and [`request_with_args`], exposed so
/// payload generators (the fuzz layer) can inspect the wrapper's
/// argument declaration before building structured content.
///
/// # Errors
///
/// Fails when the operation, its input message, or the wrapper element
/// cannot be resolved in `defs` — the same resolution steps a real
/// client stub performs before serializing a call.
pub fn input_wrapper<'a>(
    defs: &'a Definitions,
    op_name: &str,
) -> Result<(&'a wsinterop_xsd::ElementDecl, &'a str), SoapError> {
    let op = defs
        .find_operation(op_name)
        .ok_or_else(|| SoapError::new(format!("no operation `{op_name}` in port types")))?;
    let input = op
        .input
        .as_ref()
        .ok_or_else(|| SoapError::new(format!("operation `{op_name}` has no input")))?;
    let message = defs
        .message(&input.local)
        .ok_or_else(|| SoapError::new(format!("missing message `{}`", input.local)))?;
    let part = message
        .parts
        .first()
        .ok_or_else(|| SoapError::new(format!("message `{}` has no parts", message.name)))?;
    let wrapper_ref = match &part.kind {
        PartKind::Element(r) => r,
        PartKind::Type(_) => {
            return Err(SoapError::new(
                "rpc-style parts are not supported by the doc/literal message builder",
            ))
        }
    };
    let wrapper_decl = defs
        .resolve_part_element(part)
        .ok_or_else(|| SoapError::new(format!("unresolved wrapper element `{}`", wrapper_ref.local)))?;
    Ok((wrapper_decl, &wrapper_ref.ns_uri))
}

/// Builds a doc/literal-wrapped request for `op_name`, filling the
/// wrapper's first child element with `arg_text`.
///
/// # Errors
///
/// Same resolution failures as [`input_wrapper`].
pub fn request(defs: &Definitions, op_name: &str, arg_text: &str) -> Result<Document, SoapError> {
    let (wrapper_decl, ns_uri) = input_wrapper(defs, op_name)?;
    let mut args = Vec::new();
    if let Some(inline) = &wrapper_decl.inline {
        if let Some(wsinterop_xsd::Particle::Element(first)) =
            inline.content.particles.first()
        {
            args.push(
                Element::new(&format!("m:{}", first.name))
                    .in_ns(ns_uri.to_string())
                    .with_text(arg_text),
            );
        }
    }
    request_with_args(defs, op_name, args)
}

/// Builds a doc/literal-wrapped request for `op_name` from
/// caller-supplied argument elements (already named `m:{arg}` in the
/// wrapper namespace, as [`request`] does). This is the structured
/// entry point the fuzz generator serializes through: nested content,
/// repeated arguments and adversarial text all pass through the same
/// envelope construction a nominal request uses.
///
/// # Errors
///
/// Same resolution failures as [`input_wrapper`].
pub fn request_with_args(
    defs: &Definitions,
    op_name: &str,
    args: Vec<Element>,
) -> Result<Document, SoapError> {
    let (wrapper_decl, ns_uri) = input_wrapper(defs, op_name)?;
    let mut wrapper = Element::new(&format!("m:{}", wrapper_decl.name))
        .in_ns(ns_uri.to_string())
        .with_ns_decl(Some("m"), ns_uri);
    for arg in args {
        wrapper.push_element(arg);
    }
    Ok(envelope(wrapper))
}

/// Extracts the first payload element from a SOAP envelope document.
///
/// # Errors
///
/// Fails when the input is not well-formed XML, not an envelope, or has
/// an empty body.
pub fn payload(xml: &str) -> Result<Element, SoapError> {
    let doc = parse_document(xml).map_err(|e| SoapError::new(e.to_string()))?;
    let root = doc.root();
    if !root.is_named(ns::SOAP_ENV, "Envelope") {
        return Err(SoapError::new(format!(
            "expected soapenv:Envelope, found {}",
            root.expanded_name()
        )));
    }
    let body = root
        .element(ns::SOAP_ENV, "Body")
        .ok_or_else(|| SoapError::new("envelope has no Body"))?;
    let first = body.child_elements().next().cloned();
    first.ok_or_else(|| SoapError::new("Body is empty"))
}

/// Builds a SOAP 1.1 fault envelope (`faultcode`/`faultstring`).
pub fn fault(code: &str, reason: &str) -> Document {
    let fault = Element::new("soapenv:Fault")
        .in_ns(ns::SOAP_ENV)
        .with_child(Element::new("faultcode").with_text(format!("soapenv:{code}")))
        .with_child(Element::new("faultstring").with_text(reason));
    envelope_with_body_child(fault)
}

fn envelope_with_body_child(child: Element) -> Document {
    let body = Element::new("soapenv:Body").in_ns(ns::SOAP_ENV).with_child(child);
    Document::new(
        Element::new("soapenv:Envelope")
            .in_ns(ns::SOAP_ENV)
            .with_ns_decl(Some("soapenv"), ns::SOAP_ENV)
            .with_child(body),
    )
}

/// Returns `true` when the envelope carries a SOAP fault.
pub fn is_fault(xml: &str) -> bool {
    payload(xml)
        .map(|el| el.is_named(ns::SOAP_ENV, "Fault"))
        .unwrap_or(false)
}

/// Extracts the text of the first child of the payload wrapper — the
/// doc/literal "echoed value" in the study's canonical services.
pub fn unwrap_single_value(xml: &str) -> Result<String, SoapError> {
    let wrapper = payload(xml)?;
    let first = wrapper
        .child_elements()
        .next()
        .ok_or_else(|| SoapError::new("wrapper has no value element"))?;
    Ok(first.text_content())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::doc_literal_echo;
    use wsinterop_xml::writer::{write_document, WriteOptions};
    use wsinterop_xsd::{BuiltIn, TypeRef};

    fn xml_of(doc: &Document) -> String {
        write_document(doc, &WriteOptions::compact())
    }

    #[test]
    fn request_builds_wrapped_payload() {
        let defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        let doc = request(&defs, "echo", "42").unwrap();
        let xml = xml_of(&doc);
        assert!(xml.contains("<m:echo"), "{xml}");
        assert!(xml.contains("<m:arg0>42</m:arg0>"), "{xml}");
    }

    #[test]
    fn request_fails_for_unknown_operation() {
        let defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        assert!(request(&defs, "nope", "x").is_err());
    }

    #[test]
    fn request_fails_for_operation_less_document() {
        let mut defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        defs.port_types[0].operations.clear();
        assert!(request(&defs, "echo", "1").is_err());
    }

    #[test]
    fn payload_roundtrip() {
        let defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        let doc = request(&defs, "echo", "7").unwrap();
        let wrapper = payload(&xml_of(&doc)).unwrap();
        assert_eq!(wrapper.name().local_part(), "echo");
        assert_eq!(unwrap_single_value(&xml_of(&doc)).unwrap(), "7");
    }

    #[test]
    fn fault_envelope_detected() {
        let doc = fault("Server", "boom");
        let xml = xml_of(&doc);
        assert!(is_fault(&xml));
        assert!(!is_fault(&xml_of(&envelope(Element::new("ok")))));
    }

    #[test]
    fn payload_rejects_non_envelope() {
        assert!(payload("<x/>").is_err());
        assert!(payload("not xml").is_err());
    }

    #[test]
    fn payload_rejects_empty_body() {
        let xml = r#"<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"><soapenv:Body/></soapenv:Envelope>"#;
        assert!(payload(xml).is_err());
    }
}
