//! Typed data binding: converting between in-memory [`Value`]s and the
//! XML wire form described by a service's schema.
//!
//! This is the runtime half of what the client artifact generators
//! promise: given a WSDL, marshal a typed value into the doc/literal
//! payload and unmarshal the response. The campaign's static steps
//! never reach this layer — which is exactly why the paper's broken
//! chains matter — but the Communication/Execution extension and the
//! examples exercise it fully.

use std::fmt;

use wsinterop_xml::Element;
use wsinterop_xsd::lexical;
use wsinterop_xsd::{BuiltIn, ComplexType, ElementDecl, Particle, Schema, TypeRef};

use crate::model::Definitions;

/// A typed value exchangeable through an echo service.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A simple value in some built-in's lexical form.
    Simple(BuiltIn, String),
    /// A structured bean value: ordered `(field, value)` pairs.
    Struct(Vec<(String, Value)>),
    /// An enumeration constant.
    Enum(String),
    /// An absent optional value.
    Nil,
}

impl Value {
    /// Convenience constructor for a string value.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Simple(BuiltIn::String, s.into())
    }

    /// Convenience constructor for an `xsd:int`.
    pub fn int(v: i32) -> Value {
        Value::Simple(BuiltIn::Int, v.to_string())
    }

    /// Convenience constructor for a boolean.
    pub fn boolean(v: bool) -> Value {
        Value::Simple(BuiltIn::Boolean, v.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Simple(_, text) => write!(f, "{text}"),
            Value::Enum(name) => write!(f, "{name}"),
            Value::Nil => write!(f, "<nil>"),
            Value::Struct(fields) => {
                write!(f, "{{")?;
                for (i, (name, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// An error produced while binding values to or from XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindError(String);

impl BindError {
    fn new(message: impl Into<String>) -> BindError {
        BindError(message.into())
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "data binding error: {}", self.0)
    }
}

impl std::error::Error for BindError {}

fn find_complex<'a>(defs: &'a Definitions, ns_uri: &str, local: &str) -> Option<&'a ComplexType> {
    defs.schemas
        .iter()
        .filter(|s| s.target_ns == ns_uri)
        .find_map(|s| s.complex_type(local))
}

fn find_simple<'a>(
    defs: &'a Definitions,
    ns_uri: &str,
    local: &str,
) -> Option<&'a wsinterop_xsd::SimpleType> {
    defs.schemas
        .iter()
        .filter(|s| s.target_ns == ns_uri)
        .find_map(|s| s.simple_type(local))
}

/// Marshals a value as an element named `name`, validating against the
/// declared type.
///
/// # Errors
///
/// Fails when the value does not conform to the type: wrong lexical
/// form, unknown enum constant, missing required bean field, or a type
/// the document does not define.
pub fn marshal(
    defs: &Definitions,
    type_ref: &TypeRef,
    name: &str,
    value: &Value,
) -> Result<Element, BindError> {
    match (type_ref, value) {
        (_, Value::Nil) => Ok(Element::new(name).with_attr("xsi:nil", "true")),
        (TypeRef::BuiltIn(b), Value::Simple(vb, text)) => {
            if b != vb {
                return Err(BindError::new(format!(
                    "expected {b}, got a {vb} value"
                )));
            }
            lexical::validate(*b, text).map_err(|e| BindError::new(e.to_string()))?;
            Ok(Element::new(name).with_text(text.clone()))
        }
        (TypeRef::BuiltIn(b), other) => Err(BindError::new(format!(
            "cannot bind {other} as {b}"
        ))),
        (TypeRef::Named { ns_uri, local }, Value::Enum(constant)) => {
            let st = find_simple(defs, ns_uri, local)
                .ok_or_else(|| BindError::new(format!("undefined simple type `{local}`")))?;
            if !st.enumeration.is_empty() && !st.enumeration.contains(constant) {
                return Err(BindError::new(format!(
                    "`{constant}` is not a constant of `{local}`"
                )));
            }
            Ok(Element::new(name).with_text(constant.clone()))
        }
        (TypeRef::Named { ns_uri, local }, Value::Struct(fields)) => {
            let ct = find_complex(defs, ns_uri, local)
                .ok_or_else(|| BindError::new(format!("undefined complex type `{local}`")))?;
            let mut out = Element::new(name);
            for particle in flatten_elements(ct) {
                let supplied = fields.iter().find(|(n, _)| n == &particle.name);
                match supplied {
                    Some((_, field_value)) => {
                        let field_type = particle
                            .type_ref
                            .clone()
                            .unwrap_or(TypeRef::BuiltIn(BuiltIn::AnyType));
                        out.push_element(marshal(defs, &field_type, &particle.name, field_value)?);
                    }
                    None if particle.min_occurs == 0 => {}
                    None => {
                        return Err(BindError::new(format!(
                            "missing required field `{}` of `{local}`",
                            particle.name
                        )))
                    }
                }
            }
            Ok(out)
        }
        (TypeRef::Named { local, .. }, other) => Err(BindError::new(format!(
            "cannot bind {other} as complex type `{local}`"
        ))),
    }
}

/// Unmarshals an element back into a typed value.
///
/// # Errors
///
/// Fails when the XML does not conform to the declared type.
pub fn unmarshal(
    defs: &Definitions,
    type_ref: &TypeRef,
    element: &Element,
) -> Result<Value, BindError> {
    if element.attr("xsi:nil") == Some("true") {
        return Ok(Value::Nil);
    }
    match type_ref {
        TypeRef::BuiltIn(b) => {
            let text = element.text_content();
            lexical::validate(*b, &text).map_err(|e| BindError::new(e.to_string()))?;
            Ok(Value::Simple(*b, text))
        }
        TypeRef::Named { ns_uri, local } => {
            if let Some(st) = find_simple(defs, ns_uri, local) {
                let text = element.text_content();
                if !st.enumeration.is_empty() && !st.enumeration.contains(&text) {
                    return Err(BindError::new(format!(
                        "`{text}` is not a constant of `{local}`"
                    )));
                }
                return Ok(Value::Enum(text));
            }
            let ct = find_complex(defs, ns_uri, local)
                .ok_or_else(|| BindError::new(format!("undefined type `{local}`")))?;
            let mut fields = Vec::new();
            for particle in flatten_elements(ct) {
                let child = element
                    .child_elements()
                    .find(|el| el.name().local_part() == particle.name);
                match child {
                    Some(el) => {
                        let field_type = particle
                            .type_ref
                            .clone()
                            .unwrap_or(TypeRef::BuiltIn(BuiltIn::AnyType));
                        fields.push((
                            particle.name.clone(),
                            unmarshal(defs, &field_type, el)?,
                        ));
                    }
                    None if particle.min_occurs == 0 => {}
                    None => {
                        return Err(BindError::new(format!(
                            "missing required element `{}`",
                            particle.name
                        )))
                    }
                }
            }
            Ok(Value::Struct(fields))
        }
    }
}

/// Builds a canonical sample value for a declared type (used by the
/// typed-exchange simulator).
pub fn sample_value(defs: &Definitions, type_ref: &TypeRef) -> Result<Value, BindError> {
    match type_ref {
        TypeRef::BuiltIn(b) => Ok(Value::Simple(*b, lexical::sample(*b).to_string())),
        TypeRef::Named { ns_uri, local } => {
            if let Some(st) = find_simple(defs, ns_uri, local) {
                let constant = st
                    .enumeration
                    .first()
                    .cloned()
                    .unwrap_or_else(|| lexical::sample(st.base).to_string());
                return Ok(Value::Enum(constant));
            }
            let ct = find_complex(defs, ns_uri, local)
                .ok_or_else(|| BindError::new(format!("undefined type `{local}`")))?;
            let mut fields = Vec::new();
            for particle in flatten_elements(ct) {
                let field_type = particle
                    .type_ref
                    .clone()
                    .unwrap_or(TypeRef::BuiltIn(BuiltIn::String));
                // Self-referential bean graphs terminate at optionals.
                if let TypeRef::Named { local: inner, .. } = &field_type {
                    if inner == local {
                        continue;
                    }
                }
                fields.push((particle.name.clone(), sample_value(defs, &field_type)?));
            }
            Ok(Value::Struct(fields))
        }
    }
}

fn flatten_elements(ct: &ComplexType) -> Vec<&ElementDecl> {
    fn walk<'a>(group: &'a wsinterop_xsd::Group, out: &mut Vec<&'a ElementDecl>) {
        for particle in &group.particles {
            match particle {
                Particle::Element(el) => out.push(el),
                Particle::Group(inner) => walk(inner, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&ct.content, &mut out);
    out
}

/// Resolves the echo parameter type of a document's first operation.
pub fn echo_parameter_type(defs: &Definitions) -> Option<TypeRef> {
    let op = defs
        .port_types
        .iter()
        .flat_map(|pt| pt.operations.iter())
        .next()?;
    let input = op.input.as_ref()?;
    let message = defs.message(&input.local)?;
    let part = message.parts.first()?;
    match &part.kind {
        crate::model::PartKind::Type(t) => Some(t.clone()),
        crate::model::PartKind::Element(_) => {
            let wrapper = defs.resolve_part_element(part)?;
            let inline = wrapper.inline.as_ref()?;
            match inline.content.particles.first()? {
                Particle::Element(el) => el.type_ref.clone(),
                _ => None,
            }
        }
    }
}

/// Finds the schema that declares a given namespace (helper for
/// callers building schemas by hand).
pub fn schema_for<'a>(defs: &'a Definitions, ns_uri: &str) -> Option<&'a Schema> {
    defs.schemas.iter().find(|s| s.target_ns == ns_uri)
}

/// Builds a doc/literal request envelope carrying a **typed** value
/// (the marshalled form of `value` under the operation's parameter
/// element).
///
/// # Errors
///
/// Fails when the operation cannot be resolved or the value does not
/// conform to the declared parameter type.
pub fn typed_request(
    defs: &Definitions,
    op_name: &str,
    value: &Value,
) -> Result<wsinterop_xml::Document, BindError> {
    let op = defs
        .find_operation(op_name)
        .ok_or_else(|| BindError::new(format!("no operation `{op_name}`")))?;
    let input = op
        .input
        .as_ref()
        .ok_or_else(|| BindError::new(format!("operation `{op_name}` has no input")))?;
    let message = defs
        .message(&input.local)
        .ok_or_else(|| BindError::new(format!("missing message `{}`", input.local)))?;
    let part = message
        .parts
        .first()
        .ok_or_else(|| BindError::new("message has no parts"))?;
    let crate::model::PartKind::Element(wrapper_ref) = &part.kind else {
        return Err(BindError::new("typed requests need element parts"));
    };
    let wrapper_decl = defs
        .resolve_part_element(part)
        .ok_or_else(|| BindError::new(format!("unresolved wrapper `{}`", wrapper_ref.local)))?;
    let inline = wrapper_decl
        .inline
        .as_ref()
        .ok_or_else(|| BindError::new("wrapper has no inline content"))?;
    let Some(Particle::Element(param)) = inline.content.particles.first() else {
        return Err(BindError::new("wrapper declares no parameter element"));
    };
    let param_type = param
        .type_ref
        .clone()
        .unwrap_or(TypeRef::BuiltIn(BuiltIn::AnyType));

    let mut wrapper = Element::new(&wrapper_decl.name).in_ns(wrapper_ref.ns_uri.clone());
    wrapper.declare_ns(None, &wrapper_ref.ns_uri);
    wrapper.push_element(marshal(defs, &param_type, &param.name, value)?);
    Ok(crate::soap::envelope(wrapper))
}

/// Extracts and unmarshals the typed payload from an envelope built by
/// [`typed_request`] (or its echo response).
///
/// # Errors
///
/// Fails when the envelope is malformed or the payload violates the
/// declared parameter type.
pub fn typed_payload_value(defs: &Definitions, envelope_xml: &str) -> Result<Value, BindError> {
    let wrapper =
        crate::soap::payload(envelope_xml).map_err(|e| BindError::new(e.to_string()))?;
    let param_type = echo_parameter_type(defs)
        .ok_or_else(|| BindError::new("document declares no echo parameter"))?;
    let param_el = wrapper
        .child_elements()
        .next()
        .ok_or_else(|| BindError::new("payload wrapper is empty"))?;
    unmarshal(defs, &param_type, param_el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocLiteralBuilder;
    use wsinterop_xsd::{ComplexType, ElementDecl, Particle, SimpleType};

    fn bean_defs() -> Definitions {
        let bean = ComplexType::named("Order")
            .with_particle(Particle::Element(ElementDecl::typed(
                "id",
                TypeRef::BuiltIn(BuiltIn::Long),
            )))
            .with_particle(Particle::Element(
                ElementDecl::typed("note", TypeRef::BuiltIn(BuiltIn::String)).min(0),
            ))
            .with_particle(Particle::Element(ElementDecl::typed(
                "paid",
                TypeRef::BuiltIn(BuiltIn::Boolean),
            )));
        DocLiteralBuilder::new("OrderService", "urn:orders")
            .operation_with_types(
                "echo",
                TypeRef::named("urn:orders", "Order"),
                TypeRef::named("urn:orders", "Order"),
                vec![bean],
            )
            .build()
    }

    fn order_type() -> TypeRef {
        TypeRef::named("urn:orders", "Order")
    }

    #[test]
    fn struct_marshal_unmarshal_roundtrip() {
        let defs = bean_defs();
        let value = Value::Struct(vec![
            ("id".into(), Value::Simple(BuiltIn::Long, "9001".into())),
            ("note".into(), Value::text("rush order")),
            ("paid".into(), Value::boolean(true)),
        ]);
        let el = marshal(&defs, &order_type(), "order", &value).unwrap();
        let back = unmarshal(&defs, &order_type(), &el).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn optional_fields_may_be_absent() {
        let defs = bean_defs();
        let value = Value::Struct(vec![
            ("id".into(), Value::Simple(BuiltIn::Long, "1".into())),
            ("paid".into(), Value::boolean(false)),
        ]);
        let el = marshal(&defs, &order_type(), "order", &value).unwrap();
        assert_eq!(el.child_elements().count(), 2);
        assert_eq!(unmarshal(&defs, &order_type(), &el).unwrap(), value);
    }

    #[test]
    fn missing_required_field_is_an_error() {
        let defs = bean_defs();
        let value = Value::Struct(vec![("paid".into(), Value::boolean(false))]);
        let err = marshal(&defs, &order_type(), "order", &value).unwrap_err();
        assert!(err.message().contains("id"), "{err}");
    }

    #[test]
    fn lexical_violations_are_rejected_both_ways() {
        let defs = bean_defs();
        let bad = Value::Struct(vec![
            ("id".into(), Value::Simple(BuiltIn::Long, "not-a-long".into())),
            ("paid".into(), Value::boolean(true)),
        ]);
        assert!(marshal(&defs, &order_type(), "order", &bad).is_err());

        let mut el = Element::new("order");
        el.push_element(Element::new("id").with_text("NaN-ish"));
        el.push_element(Element::new("paid").with_text("true"));
        assert!(unmarshal(&defs, &order_type(), &el).is_err());
    }

    #[test]
    fn enum_binding_validates_constants() {
        let mut defs = bean_defs();
        defs.schemas[0].simple_types.push(SimpleType {
            name: "Status".into(),
            base: BuiltIn::String,
            enumeration: vec!["OPEN".into(), "CLOSED".into()],
        });
        let status = TypeRef::named("urn:orders", "Status");
        let ok = marshal(&defs, &status, "status", &Value::Enum("OPEN".into())).unwrap();
        assert_eq!(unmarshal(&defs, &status, &ok).unwrap(), Value::Enum("OPEN".into()));
        assert!(marshal(&defs, &status, "status", &Value::Enum("BROKEN".into())).is_err());
    }

    #[test]
    fn nil_roundtrip() {
        let defs = bean_defs();
        let el = marshal(&defs, &order_type(), "order", &Value::Nil).unwrap();
        assert_eq!(unmarshal(&defs, &order_type(), &el).unwrap(), Value::Nil);
    }

    #[test]
    fn sample_values_always_marshal() {
        let defs = bean_defs();
        let ty = echo_parameter_type(&defs).unwrap();
        assert_eq!(ty, order_type());
        let sample = sample_value(&defs, &ty).unwrap();
        let el = marshal(&defs, &ty, "order", &sample).unwrap();
        assert_eq!(unmarshal(&defs, &ty, &el).unwrap(), sample);
    }

    #[test]
    fn builtin_mismatch_is_an_error() {
        let defs = bean_defs();
        let err = marshal(
            &defs,
            &TypeRef::BuiltIn(BuiltIn::Int),
            "x",
            &Value::Simple(BuiltIn::String, "7".into()),
        )
        .unwrap_err();
        assert!(err.message().contains("expected"), "{err}");
    }

    #[test]
    fn typed_request_roundtrip() {
        let defs = bean_defs();
        let value = Value::Struct(vec![
            ("id".into(), Value::Simple(BuiltIn::Long, "5".into())),
            ("paid".into(), Value::boolean(true)),
        ]);
        let doc = typed_request(&defs, "echo", &value).unwrap();
        let xml = wsinterop_xml::writer::write_document(
            &doc,
            &wsinterop_xml::WriteOptions::compact(),
        );
        let back = typed_payload_value(&defs, &xml).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn typed_request_rejects_invalid_values() {
        let defs = bean_defs();
        let bad = Value::Struct(vec![("paid".into(), Value::boolean(true))]);
        assert!(typed_request(&defs, "echo", &bad).is_err());
        assert!(typed_request(&defs, "ghost", &Value::Nil).is_err());
    }

    #[test]
    fn display_formats_nested_values() {
        let value = Value::Struct(vec![
            ("id".into(), Value::int(1)),
            ("inner".into(), Value::Struct(vec![("x".into(), Value::Nil)])),
        ]);
        assert_eq!(value.to_string(), "{id: 1, inner: {x: <nil>}}");
    }
}
