//! # wsinterop-wsdl
//!
//! A WSDL 1.1 implementation: object model, document/literal-wrapped
//! builder, XML serialization, a consuming parser, and a SOAP 1.1
//! message layer.
//!
//! * [`model`] — [`Definitions`] and friends
//! * [`builder`] — high-level doc/literal-wrapped construction
//! * [`ser`] / [`de`] — XML (de)serialization
//! * [`soap`] — SOAP 1.1 envelopes for the canonical echo exchange
//! * [`values`] — typed data binding against the document's schema
//!
//! ## Example
//!
//! ```
//! use wsinterop_wsdl::builder::doc_literal_echo;
//! use wsinterop_wsdl::{ser::to_xml_string, de::from_xml_str};
//! use wsinterop_xsd::{BuiltIn, TypeRef};
//!
//! let defs = doc_literal_echo("EchoService", "urn:echo", "echo",
//!                             TypeRef::BuiltIn(BuiltIn::String));
//! let xml = to_xml_string(&defs);
//! assert_eq!(from_xml_str(&xml)?, defs);
//! # Ok::<(), wsinterop_wsdl::de::WsdlReadError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod de;
pub mod model;
pub mod ser;
pub mod soap;
pub mod values;

pub use model::{
    Binding, BindingOperation, Definitions, ExtensionAttr, Fault, Message, NameRef, Operation,
    Part, PartKind, Port, PortType, Service, SoapBinding, Style, Use,
};
