//! Property-based tests: arbitrary doc/literal service shapes survive
//! the build → serialize → parse cycle, and the SOAP layer echoes
//! arbitrary payloads.

use proptest::prelude::*;
use wsinterop_wsdl::builder::DocLiteralBuilder;
use wsinterop_wsdl::de::from_xml_str;
use wsinterop_wsdl::ser::to_xml_string;
use wsinterop_wsdl::soap;
use wsinterop_xml::writer::{write_document, WriteOptions};
use wsinterop_xsd::{BuiltIn, TypeRef};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,10}"
}

fn builtin() -> impl Strategy<Value = BuiltIn> {
    prop::sample::select(BuiltIn::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any set of uniquely-named operations roundtrips through XML.
    #[test]
    fn builder_ser_de_roundtrip(
        service in "[A-Z][a-zA-Z0-9]{0,8}",
        ops in prop::collection::btree_map(ident(), (builtin(), builtin()), 1..5),
        dotnet in any::<bool>(),
    ) {
        let mut builder = DocLiteralBuilder::new(&service, format!("urn:{service}"));
        for (name, (input, output)) in &ops {
            builder = builder.operation(
                name.clone(),
                TypeRef::BuiltIn(*input),
                TypeRef::BuiltIn(*output),
            );
        }
        if dotnet {
            builder = builder.dotnet_prefixes();
        }
        let defs = builder.build();
        let xml = to_xml_string(&defs);
        let parsed = from_xml_str(&xml).unwrap();
        prop_assert_eq!(parsed, defs);
    }

    /// Roundtripped documents keep their operation count.
    #[test]
    fn operation_count_is_preserved(
        ops in prop::collection::btree_set(ident(), 1..6),
    ) {
        let mut builder = DocLiteralBuilder::new("S", "urn:s");
        for name in &ops {
            builder = builder.operation(
                name.clone(),
                TypeRef::BuiltIn(BuiltIn::Int),
                TypeRef::BuiltIn(BuiltIn::Int),
            );
        }
        let defs = builder.build();
        let parsed = from_xml_str(&to_xml_string(&defs)).unwrap();
        prop_assert_eq!(parsed.operation_count(), ops.len());
    }

    /// The SOAP layer echoes arbitrary printable payloads byte-exactly
    /// (escaping roundtrip through a full envelope).
    #[test]
    fn soap_echo_roundtrip(value in "[ -~]{0,40}") {
        let defs = wsinterop_wsdl::builder::doc_literal_echo(
            "S", "urn:s", "echo", TypeRef::BuiltIn(BuiltIn::String),
        );
        let doc = soap::request(&defs, "echo", &value).unwrap();
        let xml = write_document(&doc, &WriteOptions::compact());
        let unwrapped = soap::unwrap_single_value(&xml).unwrap();
        prop_assert_eq!(unwrapped, value);
    }

    /// Every WSDL the builder produces is WS-I clean — the baseline the
    /// framework quirks deliberately break.
    #[test]
    fn builder_output_is_wsi_clean(
        ops in prop::collection::btree_set(ident(), 1..4),
    ) {
        let mut builder = DocLiteralBuilder::new("S", "urn:s");
        for name in &ops {
            builder = builder.operation(
                name.clone(),
                TypeRef::BuiltIn(BuiltIn::Long),
                TypeRef::BuiltIn(BuiltIn::Long),
            );
        }
        let defs = builder.build();
        let report = wsinterop_wsi::Analyzer::basic_profile_1_1().analyze(&defs);
        prop_assert!(report.clean(), "{}", report);
    }
}
