//! A deterministic, dependency-free stand-in for the [`proptest`]
//! crate, implementing exactly the API subset this workspace's
//! property tests use.
//!
//! The build environment has no access to crates.io, so the real
//! proptest cannot be vendored; this shim keeps the property suites
//! compiling *and running*: every `proptest!` test still generates
//! its inputs from strategies and executes the configured number of
//! cases. Generation is seeded from the test name, so runs are fully
//! deterministic and reproducible.
//!
//! Differences from the real crate (acceptable for these suites):
//!
//! * no shrinking — a failing case reports the panic directly;
//! * regex strategies support the subset actually used here
//!   (character classes, `\PC`, `{m,n}` repetitions, concatenation);
//! * `prop_assume!` skips the case instead of resampling.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Per-test configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be positive).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in a half-open range.
    pub fn in_range(&mut self, range: &Range<usize>) -> usize {
        if range.end <= range.start {
            return range.start;
        }
        range.start + self.below(range.end - range.start)
    }
}

/// A value generator. The real crate's `Strategy` builds shrinkable
/// value trees; this shim generates values directly.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing a predicate (resamples, up to
    /// a bounded number of attempts).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Recursive strategies: `recurse` receives the strategy for the
    /// previous depth level and returns the next one. Leaves stay
    /// reachable at every level via a 50/50 union with `self`.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait ErasedStrategy<T> {
    fn generate_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn ErasedStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_erased(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U + Clone> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool + Clone> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive samples", self.reason);
    }
}

/// Uniform choice between several strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!alternatives.is_empty(), "empty prop_oneof!");
        Union(alternatives)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len());
        self.0[i].generate(rng)
    }
}

/// Types with a canonical random generator (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy form of [`Arbitrary`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` ([`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('a')
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix raw bit patterns (NaN/inf included) with tame values.
        match rng.next_u64() % 4 {
            0 => f64::from_bits(rng.next_u64()),
            1 => rng.next_u64() as f64 / 1e3,
            2 => -(rng.next_u64() as f64 / 1e6),
            _ => (rng.next_u64() % 10_000) as f64,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size.start..size.end` elements.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range(&self.size);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// See [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A `BTreeMap` with `size.start..size.end` entries.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.in_range(&self.size);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` with `size.start..size.end` elements.
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.in_range(&self.size);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::*;

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` one time in four, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// See [`select`].
    #[derive(Clone)]
    pub struct Select<T>(Vec<T>);

    /// Uniformly selects one element of a non-empty `Vec`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty vec");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

// ---------------------------------------------------------------
// Regex-subset string strategies: `"[a-z]{1,4}"`, `"\\PC{0,64}"`, …
// ---------------------------------------------------------------

#[derive(Debug, Clone)]
enum Atom {
    /// Inclusive character ranges (a character class).
    Class(Vec<(char, char)>),
    /// `\PC`: any printable character (mostly ASCII, some unicode).
    Printable,
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed class in `{pattern}`"));
                let body: Vec<char> = chars[i + 1..close].to_vec();
                i = close + 1;
                let mut ranges = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        ranges.push((body[j], body[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((body[j], body[j]));
                        j += 1;
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => {
                // Only `\PC` (printable char) is supported.
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in `{pattern}`"
                );
                i += 3;
                Atom::Printable
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unclosed repetition in `{pattern}`"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

const UNICODE_SAMPLES: [char; 8] = ['é', 'ß', 'λ', 'Ж', '中', '→', '✓', '🦀'];

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Printable => {
            if rng.below(10) == 0 {
                UNICODE_SAMPLES[rng.below(UNICODE_SAMPLES.len())]
            } else {
                char::from(b' ' + rng.below(95) as u8)
            }
        }
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len())];
            let span = (hi as u32).saturating_sub(lo as u32) + 1;
            char::from_u32(lo as u32 + rng.next_u64() as u32 % span).unwrap_or(lo)
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..n {
                out.push(generate_atom(&piece.atom, rng));
            }
        }
        out
    }
}

/// The names the real crate's prelude brings into scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestRng, Union,
    };

    /// The `prop` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests. Each function body runs `config.cases`
/// times with freshly generated inputs; panics fail the test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                let mut one_case = || -> ::std::result::Result<(), ()> {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    $body
                    ::std::result::Result::Ok(())
                };
                let _ = one_case();
            }
        }
    )*};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

/// Asserts within a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_subset_generates_within_class() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-zA-Z0-9_.-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(v in 0u32..10, s in "[0-9]{1,3}") {
            prop_assume!(v < 9);
            prop_assert!(v < 9);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}
