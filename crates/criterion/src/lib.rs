//! A minimal, dependency-free stand-in for the [`criterion`] bench
//! harness, implementing the API subset this workspace's benches use.
//!
//! The build environment has no access to crates.io, so the real
//! criterion cannot be vendored. This shim keeps `cargo bench`
//! working: each benchmark runs a fixed warm-up plus a measured batch
//! and prints the median per-iteration time. No statistical analysis,
//! plotting, or baseline comparison is performed.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the measured closure.
pub struct Bencher {
    iters: u64,
    median_ns: Option<u128>,
}

impl Bencher {
    /// Times `routine`, recording the median over the sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..2 {
            black_box(routine());
        }
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed().as_nanos());
        }
        samples.sort_unstable();
        self.median_ns = Some(samples[samples.len() / 2]);
    }

    /// Times `routine` over inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos());
        }
        samples.sort_unstable();
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_one(name: &str, sample_size: u64, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: sample_size.max(3),
        median_ns: None,
    };
    f(&mut bencher);
    match bencher.median_ns {
        Some(ns) => println!("{name:<50} median {}", format_ns(ns)),
        None => println!("{name:<50} (no measurement)"),
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Measurement-time hint (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks one closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks one closure with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks one stand-alone closure.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), 10, f);
        self
    }
}

/// Declares a bench group function compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
