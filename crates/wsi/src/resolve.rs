//! Symbol tables over the inline schemas of a WSDL document.
//!
//! Several Basic Profile assertions reduce to "does this QName resolve
//! to a definition somewhere in the document?". [`SymbolTable`] collects
//! every global element, complex type and simple type declared in the
//! inline schemas, plus the set of namespaces that are imported with and
//! without a resolvable `schemaLocation`.

use std::collections::HashSet;

use wsinterop_wsdl::Definitions;
use wsinterop_xml::name::ns;
use wsinterop_xsd::{AttributeDecl, BuiltIn, Group, Particle, Schema, TypeRef};

/// Resolution tables for one WSDL document.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    elements: HashSet<(String, String)>,
    types: HashSet<(String, String)>,
    imported_with_location: HashSet<String>,
    imported_without_location: HashSet<String>,
}

impl SymbolTable {
    /// Builds the table from a document's inline schemas.
    pub fn build(defs: &Definitions) -> SymbolTable {
        let mut table = SymbolTable::default();
        for schema in &defs.schemas {
            let tns = schema.target_ns.clone();
            for el in &schema.elements {
                table.elements.insert((tns.clone(), el.name.clone()));
            }
            for ct in &schema.complex_types {
                if let Some(name) = &ct.name {
                    table.types.insert((tns.clone(), name.clone()));
                }
            }
            for st in &schema.simple_types {
                table.types.insert((tns.clone(), st.name.clone()));
            }
            for import in &schema.imports {
                if import.schema_location.is_some() {
                    table.imported_with_location.insert(import.namespace.clone());
                } else {
                    table
                        .imported_without_location
                        .insert(import.namespace.clone());
                }
            }
        }
        table
    }

    /// Does a global element `{ns_uri}local` exist?
    pub fn has_element(&self, ns_uri: &str, local: &str) -> bool {
        self.elements.contains(&(ns_uri.to_string(), local.to_string()))
    }

    /// Does a named type resolve? Built-ins always do; named types must
    /// be declared inline or belong to a namespace imported *with* a
    /// schema location (we optimistically treat located imports as
    /// resolvable, as real tools download them).
    pub fn type_resolves(&self, type_ref: &TypeRef) -> bool {
        match type_ref {
            TypeRef::BuiltIn(_) => true,
            TypeRef::Named { ns_uri, local } => {
                if ns_uri == ns::XSD {
                    return local.parse::<BuiltIn>().is_ok();
                }
                self.types.contains(&(ns_uri.clone(), local.clone()))
                    || self.imported_with_location.contains(ns_uri)
            }
        }
    }

    /// Is `ns_uri` imported without a schema location (the JAX-WS
    /// WS-Addressing pattern that breaks consumers)?
    pub fn imported_without_location(&self, ns_uri: &str) -> bool {
        self.imported_without_location.contains(ns_uri)
    }
}

/// Walks every particle of every schema, visiting element declarations,
/// element refs, attribute declarations and type references.
pub fn walk_schema_refs(
    schema: &Schema,
    visit_type: &mut dyn FnMut(&TypeRef, &str),
    visit_element_ref: &mut dyn FnMut(&str, &str, &str),
    visit_attr_ref: &mut dyn FnMut(&str, &str, &str),
) {
    fn walk_group(
        where_: &str,
        group: &Group,
        visit_type: &mut dyn FnMut(&TypeRef, &str),
        visit_element_ref: &mut dyn FnMut(&str, &str, &str),
        visit_attr_ref: &mut dyn FnMut(&str, &str, &str),
    ) {
        for particle in &group.particles {
            match particle {
                Particle::Element(decl) => {
                    if let Some(type_ref) = &decl.type_ref {
                        visit_type(type_ref, where_);
                    }
                    if let Some(inline) = &decl.inline {
                        walk_group(
                            where_,
                            &inline.content,
                            visit_type,
                            visit_element_ref,
                            visit_attr_ref,
                        );
                        for attr in &inline.attributes {
                            visit_attr(where_, attr, visit_type, visit_attr_ref);
                        }
                    }
                }
                Particle::ElementRef { ns_uri, local } => {
                    visit_element_ref(where_, ns_uri, local);
                }
                Particle::Any { .. } => {}
                Particle::Group(inner) => walk_group(
                    where_,
                    inner,
                    visit_type,
                    visit_element_ref,
                    visit_attr_ref,
                ),
            }
        }
    }

    fn visit_attr(
        where_: &str,
        attr: &AttributeDecl,
        visit_type: &mut dyn FnMut(&TypeRef, &str),
        visit_attr_ref: &mut dyn FnMut(&str, &str, &str),
    ) {
        match attr {
            AttributeDecl::Local { type_ref, .. } => visit_type(type_ref, where_),
            AttributeDecl::Ref { ns_uri, local } => visit_attr_ref(where_, ns_uri, local),
        }
    }

    for el in &schema.elements {
        let where_ = format!("element `{}`", el.name);
        if let Some(type_ref) = &el.type_ref {
            visit_type(type_ref, &where_);
        }
        if let Some(inline) = &el.inline {
            walk_group(
                &where_,
                &inline.content,
                visit_type,
                visit_element_ref,
                visit_attr_ref,
            );
            for attr in &inline.attributes {
                visit_attr(&where_, attr, visit_type, visit_attr_ref);
            }
        }
    }
    for ct in &schema.complex_types {
        let where_ = format!(
            "complexType `{}`",
            ct.name.as_deref().unwrap_or("<anonymous>")
        );
        if let Some(base) = &ct.extends {
            visit_type(base, &where_);
        }
        walk_group(
            &where_,
            &ct.content,
            visit_type,
            visit_element_ref,
            visit_attr_ref,
        );
        for attr in &ct.attributes {
            visit_attr(&where_, attr, visit_type, visit_attr_ref);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_wsdl::builder::doc_literal_echo;
    use wsinterop_xsd::{ComplexType, ElementDecl, Import};

    #[test]
    fn table_indexes_elements_and_types() {
        let mut defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        defs.schemas[0]
            .complex_types
            .push(ComplexType::named("Bean"));
        let table = SymbolTable::build(&defs);
        assert!(table.has_element("urn:t", "echo"));
        assert!(table.has_element("urn:t", "echoResponse"));
        assert!(!table.has_element("urn:t", "ghost"));
        assert!(table.type_resolves(&TypeRef::named("urn:t", "Bean")));
        assert!(!table.type_resolves(&TypeRef::named("urn:t", "Ghost")));
        assert!(table.type_resolves(&TypeRef::BuiltIn(BuiltIn::Int)));
    }

    #[test]
    fn located_imports_resolve_optimistically() {
        let mut defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        defs.schemas[0].imports.push(Import {
            namespace: "urn:located".into(),
            schema_location: Some("x.xsd".into()),
        });
        defs.schemas[0].imports.push(Import {
            namespace: "urn:floating".into(),
            schema_location: None,
        });
        let table = SymbolTable::build(&defs);
        assert!(table.type_resolves(&TypeRef::named("urn:located", "T")));
        assert!(!table.type_resolves(&TypeRef::named("urn:floating", "T")));
        assert!(table.imported_without_location("urn:floating"));
    }

    #[test]
    fn walk_visits_nested_refs() {
        let mut defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        defs.schemas[0].elements.push(ElementDecl::with_inline(
            "extra",
            ComplexType::anonymous().with_particle(Particle::ElementRef {
                ns_uri: ns::XSD.to_string(),
                local: "schema".to_string(),
            }),
        ));
        let mut types = 0;
        let mut element_refs = Vec::new();
        let mut attr_refs = 0;
        walk_schema_refs(
            &defs.schemas[0],
            &mut |_, _| types += 1,
            &mut |_, ns_uri, local| element_refs.push((ns_uri.to_string(), local.to_string())),
            &mut |_, _, _| attr_refs += 1,
        );
        assert!(types >= 2); // arg0 + return
        assert_eq!(element_refs, [(ns::XSD.to_string(), "schema".to_string())]);
        assert_eq!(attr_refs, 0);
    }
}
