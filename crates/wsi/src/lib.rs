//! # wsinterop-wsi
//!
//! A WS-I Basic Profile 1.1 conformance analyzer for WSDL documents.
//!
//! The paper uses the WS-I testing tools as a binary oracle (does this
//! service description pass the Basic Profile?) plus a source of
//! warnings. This crate implements the assertion families that decide
//! that verdict for the documents the reproduced frameworks emit:
//! SOAP-binding discipline (R2701/R2702/R2705/R2706/R2745), doc-literal
//! message discipline (R2204), reference resolution (R2105/R2102/R2106),
//! binding/port-type agreement (R2718), address presence (R2711) — and
//! two advisory extensions, including the paper's own recommendation to
//! flag operation-less port types (`EXT0001`). The [`message`] module
//! adds the profile's message-level assertions over SOAP envelopes.
//!
//! ## Example
//!
//! ```
//! use wsinterop_wsi::Analyzer;
//! use wsinterop_wsdl::builder::doc_literal_echo;
//! use wsinterop_xsd::{BuiltIn, TypeRef};
//!
//! let defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
//! let report = Analyzer::basic_profile_1_1().analyze(&defs);
//! assert!(report.conformant());
//! assert!(report.clean());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assertions;
pub mod message;
pub mod report;
pub mod resolve;

pub use report::{Finding, Report, Severity};

use assertions::Assertion;
use resolve::SymbolTable;
use wsinterop_wsdl::Definitions;

/// A configured conformance analyzer.
pub struct Analyzer {
    assertions: Vec<Box<dyn Assertion>>,
}

impl std::fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field("assertions", &self.assertion_ids())
            .finish()
    }
}

impl Analyzer {
    /// The full Basic Profile 1.1 assertion set.
    pub fn basic_profile_1_1() -> Analyzer {
        Analyzer {
            assertions: assertions::basic_profile_1_1(),
        }
    }

    /// An analyzer with a custom assertion set.
    pub fn with_assertions(assertions: Vec<Box<dyn Assertion>>) -> Analyzer {
        Analyzer { assertions }
    }

    /// Identifiers of the configured assertions, in check order.
    pub fn assertion_ids(&self) -> Vec<&'static str> {
        self.assertions.iter().map(|a| a.id()).collect()
    }

    /// `(id, description)` pairs for tool output.
    pub fn assertion_catalog(&self) -> Vec<(&'static str, &'static str)> {
        self.assertions
            .iter()
            .map(|a| (a.id(), a.description()))
            .collect()
    }

    /// Runs every assertion over the document.
    pub fn analyze(&self, defs: &Definitions) -> Report {
        let table = SymbolTable::build(defs);
        let mut report = Report::new();
        for assertion in &self.assertions {
            assertion.check(defs, &table, &mut report);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_wsdl::builder::doc_literal_echo;
    use wsinterop_wsdl::{ExtensionAttr, PartKind, Use};
    use wsinterop_xml::name::ns;
    use wsinterop_xsd::{
        AttributeDecl, BuiltIn, ComplexType, ElementDecl, Import, MaxOccurs, Particle,
        ProcessContents, TypeRef,
    };

    fn echo() -> wsinterop_wsdl::Definitions {
        doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int))
    }

    fn analyze(defs: &wsinterop_wsdl::Definitions) -> Report {
        Analyzer::basic_profile_1_1().analyze(defs)
    }

    #[test]
    fn canonical_echo_is_clean() {
        let report = analyze(&echo());
        assert!(report.conformant(), "{report}");
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn missing_soap_binding_fails_r2701() {
        let mut defs = echo();
        defs.bindings[0].soap = None;
        let report = analyze(&defs);
        assert!(!report.conformant());
        assert!(report.failures().any(|f| f.assertion == "R2701"));
    }

    #[test]
    fn wrong_transport_fails_r2702() {
        let mut defs = echo();
        defs.bindings[0].soap.as_mut().unwrap().transport = "urn:smtp".into();
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2702"));
    }

    #[test]
    fn mixed_styles_fail_r2705() {
        let mut defs = doc_literal_echo("S", "urn:t", "a", TypeRef::BuiltIn(BuiltIn::Int));
        // Add a second bound operation with an rpc override.
        let mut second = defs.bindings[0].operations[0].clone();
        second.name = "b".into();
        second.style = Some(wsinterop_wsdl::Style::Rpc);
        defs.bindings[0].operations.push(second);
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2705"));
    }

    #[test]
    fn encoded_use_fails_r2706() {
        let mut defs = echo();
        defs.bindings[0].operations[0].input_use = Use::Encoded;
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2706"));
    }

    #[test]
    fn missing_soap_operation_fails_r2745() {
        let mut defs = echo();
        defs.bindings[0].operations[0].soap_action = None;
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2745"));
    }

    #[test]
    fn empty_soap_action_is_fine() {
        let mut defs = echo();
        defs.bindings[0].operations[0].soap_action = Some(String::new());
        assert!(analyze(&defs).clean());
    }

    #[test]
    fn type_part_in_doc_binding_fails_r2204() {
        let mut defs = echo();
        defs.messages[0].parts[0].kind = PartKind::Type(TypeRef::BuiltIn(BuiltIn::String));
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2204"));
    }

    #[test]
    fn unresolved_part_element_fails_r2105() {
        let mut defs = echo();
        if let PartKind::Element(r) = &mut defs.messages[0].parts[0].kind {
            r.local = "ghost".into();
        }
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2105"));
    }

    #[test]
    fn schema_ref_into_xsd_namespace_fails_r2105() {
        let mut defs = echo();
        defs.schemas[0].elements.push(ElementDecl::with_inline(
            "broken",
            ComplexType::anonymous().with_particle(Particle::ElementRef {
                ns_uri: ns::XSD.to_string(),
                local: "schema".to_string(),
            }),
        ));
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2105"));
    }

    #[test]
    fn unresolved_type_in_unlocated_import_fails_r2102() {
        let mut defs = echo();
        defs.schemas[0].imports.push(Import {
            namespace: "http://www.w3.org/2005/08/addressing".into(),
            schema_location: None,
        });
        defs.schemas[0].elements.push(ElementDecl::typed(
            "epr",
            TypeRef::named("http://www.w3.org/2005/08/addressing", "EndpointReferenceType"),
        ));
        let report = analyze(&defs);
        let failures: Vec<_> = report
            .failures()
            .filter(|f| f.assertion == "R2102")
            .collect();
        assert!(!failures.is_empty(), "R2102 must fire");
        assert!(failures[0].detail.contains("without schemaLocation"));
    }

    #[test]
    fn located_import_passes_r2102() {
        let mut defs = echo();
        defs.schemas[0].imports.push(Import {
            namespace: "urn:lib".into(),
            schema_location: Some("lib.xsd".into()),
        });
        defs.schemas[0]
            .elements
            .push(ElementDecl::typed("x", TypeRef::named("urn:lib", "T")));
        assert!(analyze(&defs).conformant());
    }

    #[test]
    fn lang_attr_ref_fails_r2106_but_xml_lang_passes() {
        let mut defs = echo();
        defs.schemas[0].complex_types.push(
            ComplexType::named("WithLang").with_attribute(AttributeDecl::Ref {
                ns_uri: ns::XSD.to_string(),
                local: "lang".to_string(),
            }),
        );
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2106"));

        let mut defs2 = echo();
        defs2.schemas[0].complex_types.push(
            ComplexType::named("WithXmlLang").with_attribute(AttributeDecl::Ref {
                ns_uri: ns::XML.to_string(),
                local: "lang".to_string(),
            }),
        );
        assert!(analyze(&defs2).conformant());
    }

    #[test]
    fn unbound_operation_warns_r2718() {
        let mut defs = echo();
        defs.bindings[0].operations.clear();
        let report = analyze(&defs);
        assert!(report.conformant());
        assert!(report.warnings().any(|f| f.assertion == "R2718"));
    }

    #[test]
    fn operation_less_port_type_passes_with_ext_warning() {
        // The JBossWS Future/Response case: conformant, but flagged.
        let mut defs = echo();
        defs.port_types[0].operations.clear();
        defs.bindings[0].operations.clear();
        defs.messages.clear();
        defs.schemas.clear();
        let report = analyze(&defs);
        assert!(report.conformant(), "{report}");
        assert!(report.warnings().any(|f| f.assertion == "EXT0001"));
    }

    #[test]
    fn wildcard_is_a_note_only() {
        // The DataTable case: xsd:any passes WS-I.
        let mut defs = echo();
        defs.schemas[0].elements.push(ElementDecl::with_inline(
            "blob",
            ComplexType::anonymous().with_particle(Particle::Any {
                process_contents: ProcessContents::Lax,
                min_occurs: 0,
                max_occurs: MaxOccurs::Bounded(1),
            }),
        ));
        let report = analyze(&defs);
        assert!(report.conformant());
        assert!(report.notes().any(|f| f.assertion == "EXT0002"));
        assert!(report.warnings().count() == 0);
    }

    #[test]
    fn missing_address_fails_r2711() {
        let mut defs = echo();
        defs.services[0].ports[0].address = None;
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2711"));
    }

    #[test]
    fn foreign_extension_attr_warns_ext0003() {
        let mut defs = echo();
        defs.bindings[0].extension_attrs.push(ExtensionAttr {
            ns_uri: ns::WSAW.to_string(),
            lexical: "wsaw:UsingAddressing".to_string(),
            value: "true".to_string(),
        });
        let report = analyze(&defs);
        assert!(report.conformant());
        assert!(report.warnings().any(|f| f.assertion == "EXT0003"));
    }

    #[test]
    fn assertion_catalog_is_complete() {
        let analyzer = Analyzer::basic_profile_1_1();
        let ids = analyzer.assertion_ids();
        for expected in [
            "R2701", "R2702", "R2705", "R2706", "R2745", "R2204", "R2203", "R2304", "R2201",
            "R2105", "R2102", "R2106", "R2718", "EXT0001", "EXT0002", "R2711", "EXT0003",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
        assert_eq!(analyzer.assertion_catalog().len(), ids.len());
    }

    #[test]
    fn rpc_literal_is_conformant_and_element_parts_under_rpc_fail_r2203() {
        use wsinterop_wsdl::builder::RpcLiteralBuilder;
        let defs = RpcLiteralBuilder::new("Calc", "urn:calc")
            .operation(
                "add",
                vec![
                    ("a".into(), TypeRef::BuiltIn(BuiltIn::Int)),
                    ("b".into(), TypeRef::BuiltIn(BuiltIn::Int)),
                ],
                TypeRef::BuiltIn(BuiltIn::Int),
            )
            .build();
        let report = analyze(&defs);
        assert!(report.conformant(), "{report}");

        // Flip one part to element= — conformant under document style,
        // a violation under rpc.
        let mut broken = defs.clone();
        broken.schemas[0].elements.push(ElementDecl::typed(
            "a",
            TypeRef::BuiltIn(BuiltIn::Int),
        ));
        broken.messages[0].parts[0].kind = PartKind::Element(
            wsinterop_wsdl::NameRef::new("urn:calc", "a"),
        );
        let report = analyze(&broken);
        assert!(report.failures().any(|f| f.assertion == "R2203"), "{report}");
    }

    #[test]
    fn overloaded_operations_fail_r2304() {
        let mut defs = echo();
        let dup = defs.port_types[0].operations[0].clone();
        defs.port_types[0].operations.push(dup);
        let dup_binding = defs.bindings[0].operations[0].clone();
        defs.bindings[0].operations.push(dup_binding);
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2304"), "{report}");
    }

    #[test]
    fn multi_part_doc_literal_fails_r2201() {
        let mut defs = echo();
        let extra = defs.messages[0].parts[0].clone();
        defs.messages[0].parts.push(wsinterop_wsdl::Part {
            name: "extra".into(),
            ..extra
        });
        let report = analyze(&defs);
        assert!(report.failures().any(|f| f.assertion == "R2201"), "{report}");
    }

    #[test]
    fn rpc_literal_multi_part_is_fine() {
        use wsinterop_wsdl::builder::RpcLiteralBuilder;
        let defs = RpcLiteralBuilder::new("Calc", "urn:calc")
            .operation(
                "add",
                vec![
                    ("a".into(), TypeRef::BuiltIn(BuiltIn::Int)),
                    ("b".into(), TypeRef::BuiltIn(BuiltIn::Int)),
                ],
                TypeRef::BuiltIn(BuiltIn::Int),
            )
            .build();
        let report = analyze(&defs);
        assert!(report.conformant(), "{report}");
        assert!(!report.findings().iter().any(|f| f.assertion == "R2201"));
    }

    #[test]
    fn analyzer_on_parsed_document_matches_in_memory() {
        let defs = echo();
        let xml = wsinterop_wsdl::ser::to_xml_string(&defs);
        let parsed = wsinterop_wsdl::de::from_xml_str(&xml).unwrap();
        assert_eq!(analyze(&defs), analyze(&parsed));
    }
}
