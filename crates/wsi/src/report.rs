//! Findings and reports produced by the WS-I analyzer.

use std::fmt;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note; does not affect conformance.
    Note,
    /// Advisory; the document is conformant but risky.
    Warning,
    /// A Basic Profile violation; the document is non-conformant.
    Failure,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Failure => "failure",
        })
    }
}

/// A single analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Assertion identifier (e.g. `R2706`).
    pub assertion: &'static str,
    /// Severity.
    pub severity: Severity,
    /// The WSDL component the finding is anchored to.
    pub target: String,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {}: {}",
            self.assertion, self.severity, self.target, self.detail
        )
    }
}

/// The outcome of analyzing one WSDL document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    findings: Vec<Finding>,
}

impl Report {
    /// An empty (conformant) report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Records a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// All findings, in assertion order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// `true` when no failure-severity findings exist.
    ///
    /// Warnings and notes do not affect conformance — mirroring the
    /// WS-I analyzer the paper used, which passed e.g. operation-less
    /// port types.
    pub fn conformant(&self) -> bool {
        !self
            .findings
            .iter()
            .any(|f| f.severity == Severity::Failure)
    }

    /// Iterates over failures.
    pub fn failures(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Failure)
    }

    /// Iterates over warnings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
    }

    /// Iterates over notes.
    pub fn notes(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Note)
    }

    /// `true` when the report has neither failures nor warnings.
    pub fn clean(&self) -> bool {
        self.findings
            .iter()
            .all(|f| f.severity == Severity::Note)
    }
}

impl Report {
    /// Serializes the report as an XML conformance document, the form
    /// the real WS-I testing tools emit.
    ///
    /// ```xml
    /// <wsi:report xmlns:wsi="urn:wsinterop:wsi-report" conformant="false">
    ///   <wsi:finding assertion="R2105" severity="failure" target="…">…</wsi:finding>
    /// </wsi:report>
    /// ```
    pub fn to_xml(&self) -> String {
        use wsinterop_xml::writer::{write_document, WriteOptions};
        use wsinterop_xml::{Document, Element};

        const REPORT_NS: &str = "urn:wsinterop:wsi-report";
        let mut root = Element::new("wsi:report")
            .in_ns(REPORT_NS)
            .with_ns_decl(Some("wsi"), REPORT_NS)
            .with_attr("conformant", self.conformant().to_string());
        for finding in &self.findings {
            root.push_element(
                Element::new("wsi:finding")
                    .in_ns(REPORT_NS)
                    .with_attr("assertion", finding.assertion)
                    .with_attr("severity", finding.severity.to_string())
                    .with_attr("target", &finding.target)
                    .with_text(finding.detail.clone()),
            );
        }
        write_document(&Document::new(root), &WriteOptions::pretty())
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return writeln!(f, "WS-I Basic Profile 1.1: conformant (no findings)");
        }
        writeln!(
            f,
            "WS-I Basic Profile 1.1: {} ({} findings)",
            if self.conformant() {
                "conformant"
            } else {
                "NOT conformant"
            },
            self.findings.len()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(sev: Severity) -> Finding {
        Finding {
            assertion: "R0000",
            severity: sev,
            target: "t".into(),
            detail: "d".into(),
        }
    }

    #[test]
    fn empty_report_is_conformant_and_clean() {
        let r = Report::new();
        assert!(r.conformant());
        assert!(r.clean());
    }

    #[test]
    fn warnings_do_not_break_conformance() {
        let mut r = Report::new();
        r.push(f(Severity::Warning));
        assert!(r.conformant());
        assert!(!r.clean());
        assert_eq!(r.warnings().count(), 1);
        assert_eq!(r.failures().count(), 0);
    }

    #[test]
    fn failures_break_conformance() {
        let mut r = Report::new();
        r.push(f(Severity::Note));
        r.push(f(Severity::Failure));
        assert!(!r.conformant());
        assert_eq!(r.notes().count(), 1);
    }

    #[test]
    fn display_mentions_conformance() {
        let mut r = Report::new();
        assert!(r.to_string().contains("conformant"));
        r.push(f(Severity::Failure));
        assert!(r.to_string().contains("NOT conformant"));
    }

    #[test]
    fn xml_report_roundtrips_through_the_xml_stack() {
        let mut r = Report::new();
        r.push(Finding {
            assertion: "R2105",
            severity: Severity::Failure,
            target: "message `m` part `p`".into(),
            detail: "references undeclared element <ghost> & friends".into(),
        });
        r.push(f(Severity::Warning));
        let xml = r.to_xml();
        let doc = wsinterop_xml::parse_document(&xml).unwrap();
        assert_eq!(doc.root().attr("conformant"), Some("false"));
        let findings: Vec<_> = doc.root().child_elements().collect();
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].attr("assertion"), Some("R2105"));
        assert_eq!(findings[0].attr("severity"), Some("failure"));
        assert!(findings[0]
            .text_content()
            .contains("<ghost> & friends"));
    }

    #[test]
    fn conformant_xml_report() {
        let xml = Report::new().to_xml();
        assert!(xml.contains(r#"conformant="true""#));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Failure);
    }
}
