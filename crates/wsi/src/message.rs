//! Message-level conformance: Basic Profile assertions over SOAP 1.1
//! *envelopes* (the profile's requirements on what actually travels,
//! complementing the document-level checks in [`crate::assertions`]).
//!
//! Implemented assertion families:
//!
//! * **R9980** — the envelope must be namespace-qualified in the SOAP
//!   1.1 envelope namespace with `Envelope`/`Body` structure;
//! * **R1005/R1007** — no `soapenv:encodingStyle` attributes on any
//!   element of a literal message;
//! * **R1014** — the children of `soapenv:Body` must be
//!   namespace-qualified;
//! * **R1011** — the `Body` must contain at most one child element
//!   (doc/literal wrapped discipline);
//! * **R1004 (fault form)** — a fault body must carry `faultcode` and
//!   `faultstring` as unqualified children.

use wsinterop_xml::name::ns;
use wsinterop_xml::{parse_document, Element};

use crate::report::{Finding, Report, Severity};

fn finding(
    assertion: &'static str,
    severity: Severity,
    target: impl Into<String>,
    detail: impl Into<String>,
) -> Finding {
    Finding {
        assertion,
        severity,
        target: target.into(),
        detail: detail.into(),
    }
}

/// Checks one serialized SOAP 1.1 message for Basic Profile
/// conformance.
///
/// Returns a [`Report`]; malformed XML yields a single `R9980` failure
/// rather than an error, because "not even XML" is the strongest
/// non-conformance there is.
pub fn check_message(xml: &str) -> Report {
    let mut report = Report::new();
    let doc = match parse_document(xml) {
        Ok(doc) => doc,
        Err(e) => {
            report.push(finding(
                "R9980",
                Severity::Failure,
                "message",
                format!("not well-formed XML: {e}"),
            ));
            return report;
        }
    };
    let root = doc.root();

    if !root.is_named(ns::SOAP_ENV, "Envelope") {
        report.push(finding(
            "R9980",
            Severity::Failure,
            "message",
            format!(
                "root is {} — expected a SOAP 1.1 Envelope",
                root.expanded_name()
            ),
        ));
        return report;
    }

    let Some(body) = root.element(ns::SOAP_ENV, "Body") else {
        report.push(finding(
            "R9980",
            Severity::Failure,
            "Envelope",
            "no soapenv:Body child",
        ));
        return report;
    };

    // Header, if present, must precede the Body.
    let mut saw_body = false;
    for child in root.child_elements() {
        if child.is_named(ns::SOAP_ENV, "Body") {
            saw_body = true;
        } else if child.is_named(ns::SOAP_ENV, "Header") && saw_body {
            report.push(finding(
                "R9980",
                Severity::Failure,
                "Envelope",
                "Header appears after Body",
            ));
        }
    }

    // R1005/R1007: encodingStyle is banned on literal messages.
    let offenders = root.descendants_where(|el| {
        el.attrs()
            .iter()
            .any(|a| a.name().local_part() == "encodingStyle")
    });
    for el in offenders {
        report.push(finding(
            "R1005",
            Severity::Failure,
            el.name().to_string(),
            "carries a soapenv:encodingStyle attribute",
        ));
    }

    // R1011: at most one Body child in doc/literal wrapped exchanges.
    let body_children: Vec<&Element> = body.child_elements().collect();
    if body_children.len() > 1 && !is_fault(&body_children) {
        report.push(finding(
            "R1011",
            Severity::Warning,
            "Body",
            format!("{} children; wrapped doc/literal expects one", body_children.len()),
        ));
    }

    for child in &body_children {
        if child.is_named(ns::SOAP_ENV, "Fault") {
            check_fault(child, &mut report);
        } else if child.ns_uri().is_none() {
            // R1014: body children must be namespace-qualified.
            report.push(finding(
                "R1014",
                Severity::Failure,
                child.name().to_string(),
                "Body child is not namespace-qualified",
            ));
        }
    }
    report
}

fn is_fault(children: &[&Element]) -> bool {
    children
        .iter()
        .any(|el| el.is_named(ns::SOAP_ENV, "Fault"))
}

fn check_fault(fault: &Element, report: &mut Report) {
    for required in ["faultcode", "faultstring"] {
        match fault
            .child_elements()
            .find(|el| el.name().local_part() == required)
        {
            None => report.push(finding(
                "R1004",
                Severity::Failure,
                "Fault",
                format!("missing `{required}` child"),
            )),
            Some(el) if el.ns_uri().is_some() => report.push(finding(
                "R1004",
                Severity::Failure,
                "Fault",
                format!("`{required}` must be unqualified"),
            )),
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_wsdl::builder::doc_literal_echo;
    use wsinterop_wsdl::soap;
    use wsinterop_xml::writer::{write_document, WriteOptions};
    use wsinterop_xsd::{BuiltIn, TypeRef};

    fn echo_request_xml() -> String {
        let defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::Int));
        let doc = soap::request(&defs, "echo", "7").unwrap();
        write_document(&doc, &WriteOptions::compact())
    }

    #[test]
    fn canonical_request_is_conformant() {
        let report = check_message(&echo_request_xml());
        assert!(report.conformant(), "{report}");
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn fault_envelopes_are_conformant() {
        let xml = write_document(&soap::fault("Server", "boom"), &WriteOptions::compact());
        let report = check_message(&xml);
        assert!(report.conformant(), "{report}");
    }

    #[test]
    fn garbage_fails_r9980() {
        let report = check_message("this is not xml");
        assert!(report.failures().any(|f| f.assertion == "R9980"));
        let report = check_message("<html/>");
        assert!(report.failures().any(|f| f.assertion == "R9980"));
    }

    #[test]
    fn encoding_style_fails_r1005() {
        let xml = echo_request_xml().replace(
            "<soapenv:Body>",
            r#"<soapenv:Body soapenv:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/">"#,
        );
        let report = check_message(&xml);
        assert!(report.failures().any(|f| f.assertion == "R1005"), "{report}");
    }

    #[test]
    fn unqualified_body_child_fails_r1014() {
        let xml = r#"<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">
            <soapenv:Body><bare/></soapenv:Body></soapenv:Envelope>"#;
        let report = check_message(xml);
        assert!(report.failures().any(|f| f.assertion == "R1014"), "{report}");
    }

    #[test]
    fn multiple_body_children_warn_r1011() {
        let xml = r#"<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">
            <soapenv:Body xmlns:m="urn:t"><m:a/><m:b/></soapenv:Body></soapenv:Envelope>"#;
        let report = check_message(xml);
        assert!(report.conformant());
        assert!(report.warnings().any(|f| f.assertion == "R1011"), "{report}");
    }

    #[test]
    fn missing_body_fails() {
        let xml = r#"<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"/>"#;
        let report = check_message(xml);
        assert!(!report.conformant());
    }

    #[test]
    fn malformed_fault_fails_r1004() {
        let xml = r#"<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">
            <soapenv:Body><soapenv:Fault><faultcode>soapenv:Server</faultcode></soapenv:Fault>
            </soapenv:Body></soapenv:Envelope>"#;
        let report = check_message(xml);
        assert!(report.failures().any(|f| f.assertion == "R1004"), "{report}");
    }

    #[test]
    fn exchange_traffic_is_message_conformant() {
        // Everything the workspace's own SOAP layer produces passes the
        // message profile.
        let defs = doc_literal_echo("S", "urn:t", "echo", TypeRef::BuiltIn(BuiltIn::String));
        for value in ["plain", "with <escapes> & quotes", ""] {
            let doc = soap::request(&defs, "echo", value).unwrap();
            let xml = write_document(&doc, &WriteOptions::pretty());
            assert!(check_message(&xml).conformant(), "{value}");
        }
    }
}
