//! The Basic Profile 1.1 assertion set implemented by the analyzer.
//!
//! Assertion identifiers follow the WS-I Basic Profile 1.1 numbering
//! where a direct counterpart exists (R2701, R2702, R2705, R2706,
//! R2745, R2204, R2718); document-resolution assertions are labelled
//! with the profile's schema-reference requirement family (R2105,
//! R2102, R2106), and two advisory checks carry `EXT` identifiers — in
//! particular `EXT0001`, which implements the paper's recommendation
//! that operation-less port types be flagged at generation time.

use wsinterop_wsdl::{Definitions, PartKind, Style, Use};
use wsinterop_xml::name::ns;
use wsinterop_xsd::Particle;

use crate::report::{Finding, Report, Severity};
use crate::resolve::{walk_schema_refs, SymbolTable};

/// A single profile assertion.
pub trait Assertion: Send + Sync {
    /// Stable identifier (`R2706`).
    fn id(&self) -> &'static str;
    /// One-line description.
    fn description(&self) -> &'static str;
    /// Runs the check, appending findings.
    fn check(&self, defs: &Definitions, table: &SymbolTable, report: &mut Report);
}

fn finding(
    assertion: &'static str,
    severity: Severity,
    target: impl Into<String>,
    detail: impl Into<String>,
) -> Finding {
    Finding {
        assertion,
        severity,
        target: target.into(),
        detail: detail.into(),
    }
}

/// R2701: a `wsdl:binding` must include a `soap:binding` extension.
pub struct SoapBindingPresent;

impl Assertion for SoapBindingPresent {
    fn id(&self) -> &'static str {
        "R2701"
    }
    fn description(&self) -> &'static str {
        "wsdl:binding must use the WSDL SOAP binding (soap:binding child)"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for binding in &defs.bindings {
            if binding.soap.is_none() {
                report.push(finding(
                    self.id(),
                    Severity::Failure,
                    format!("binding `{}`", binding.name),
                    "no soap:binding extension element",
                ));
            }
        }
    }
}

/// R2702: `soap:binding/@transport` must be the SOAP-over-HTTP URI.
pub struct HttpTransport;

impl Assertion for HttpTransport {
    fn id(&self) -> &'static str {
        "R2702"
    }
    fn description(&self) -> &'static str {
        "soap:binding transport must be the HTTP transport URI"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for binding in &defs.bindings {
            if let Some(soap) = &binding.soap {
                if soap.transport != ns::SOAP_HTTP_TRANSPORT {
                    report.push(finding(
                        self.id(),
                        Severity::Failure,
                        format!("binding `{}`", binding.name),
                        format!("transport is `{}`", soap.transport),
                    ));
                }
            }
        }
    }
}

/// R2705: a binding must not mix document and rpc styles.
pub struct ConsistentStyle;

impl Assertion for ConsistentStyle {
    fn id(&self) -> &'static str {
        "R2705"
    }
    fn description(&self) -> &'static str {
        "all operations of a binding must share one style"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for binding in &defs.bindings {
            let default_style = binding
                .soap
                .as_ref()
                .map(|s| s.style)
                .unwrap_or(Style::Document);
            let mut styles: Vec<Style> = binding
                .operations
                .iter()
                .map(|op| op.style.unwrap_or(default_style))
                .collect();
            styles.dedup();
            if styles.len() > 1 {
                report.push(finding(
                    self.id(),
                    Severity::Failure,
                    format!("binding `{}`", binding.name),
                    "operations mix document and rpc styles",
                ));
            }
        }
    }
}

/// R2706: `soap:body/@use` must be `literal`.
pub struct LiteralUse;

impl Assertion for LiteralUse {
    fn id(&self) -> &'static str {
        "R2706"
    }
    fn description(&self) -> &'static str {
        "soap:body use must be literal (encoded is disallowed)"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for binding in &defs.bindings {
            for op in &binding.operations {
                if op.input_use == Use::Encoded || op.output_use == Use::Encoded {
                    report.push(finding(
                        self.id(),
                        Severity::Failure,
                        format!("binding `{}` operation `{}`", binding.name, op.name),
                        "uses SOAP encoding",
                    ));
                }
            }
        }
    }
}

/// R2745: each bound operation must carry a `soap:operation` with a
/// (possibly empty) `soapAction` attribute.
///
/// The simulated JBossWS emitter drops `soap:operation` for certain
/// types — this is the assertion those documents fail.
pub struct SoapActionPresent;

impl Assertion for SoapActionPresent {
    fn id(&self) -> &'static str {
        "R2745"
    }
    fn description(&self) -> &'static str {
        "binding operations must declare soap:operation/@soapAction"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for binding in &defs.bindings {
            for op in &binding.operations {
                if op.soap_action.is_none() {
                    report.push(finding(
                        self.id(),
                        Severity::Failure,
                        format!("binding `{}` operation `{}`", binding.name, op.name),
                        "no soap:operation extension (soapAction missing)",
                    ));
                }
            }
        }
    }
}

/// R2204: in a document-literal binding, every part must reference a
/// global element (not a type).
pub struct DocLiteralElementParts;

impl Assertion for DocLiteralElementParts {
    fn id(&self) -> &'static str {
        "R2204"
    }
    fn description(&self) -> &'static str {
        "document-literal parts must reference element declarations"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        // Determine which messages participate in document-style bindings.
        for binding in &defs.bindings {
            let style = binding
                .soap
                .as_ref()
                .map(|s| s.style)
                .unwrap_or(Style::Document);
            if style != Style::Document {
                continue;
            }
            let Some(port_type) = defs.port_type(&binding.port_type.local) else {
                continue;
            };
            for op in &port_type.operations {
                for message_ref in op.input.iter().chain(op.output.iter()) {
                    let Some(message) = defs.message(&message_ref.local) else {
                        continue;
                    };
                    for part in &message.parts {
                        if matches!(part.kind, PartKind::Type(_)) {
                            report.push(finding(
                                self.id(),
                                Severity::Failure,
                                format!("message `{}` part `{}`", message.name, part.name),
                                "doc-literal part uses type= instead of element=",
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// R2203: in an **rpc**-literal binding, every part must reference a
/// *type* (the mirror image of R2204).
pub struct RpcLiteralTypeParts;

impl Assertion for RpcLiteralTypeParts {
    fn id(&self) -> &'static str {
        "R2203"
    }
    fn description(&self) -> &'static str {
        "rpc-literal parts must reference type definitions"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for binding in &defs.bindings {
            let style = binding
                .soap
                .as_ref()
                .map(|s| s.style)
                .unwrap_or(Style::Document);
            if style != Style::Rpc {
                continue;
            }
            let Some(port_type) = defs.port_type(&binding.port_type.local) else {
                continue;
            };
            for op in &port_type.operations {
                for message_ref in op.input.iter().chain(op.output.iter()) {
                    let Some(message) = defs.message(&message_ref.local) else {
                        continue;
                    };
                    for part in &message.parts {
                        if matches!(part.kind, PartKind::Element(_)) {
                            report.push(finding(
                                self.id(),
                                Severity::Failure,
                                format!("message `{}` part `{}`", message.name, part.name),
                                "rpc-literal part uses element= instead of type=",
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// R2105 family: every referenced global element must be defined —
/// message parts and `<xsd:element ref>` particles alike. This is the
/// assertion the `.NET` `ref="s:schema"` DataSet documents fail.
pub struct ElementRefsResolve;

impl Assertion for ElementRefsResolve {
    fn id(&self) -> &'static str {
        "R2105"
    }
    fn description(&self) -> &'static str {
        "all element references must resolve to a declaration"
    }
    fn check(&self, defs: &Definitions, table: &SymbolTable, report: &mut Report) {
        for message in &defs.messages {
            for part in &message.parts {
                if let PartKind::Element(r) = &part.kind {
                    if !table.has_element(&r.ns_uri, &r.local) {
                        report.push(finding(
                            self.id(),
                            Severity::Failure,
                            format!("message `{}` part `{}`", message.name, part.name),
                            format!("references undeclared element `{{{}}}{}`", r.ns_uri, r.local),
                        ));
                    }
                }
            }
        }
        for schema in &defs.schemas {
            walk_schema_refs(
                schema,
                &mut |_, _| {},
                &mut |where_, ns_uri, local| {
                    if !table.has_element(ns_uri, local) {
                        report.push(finding(
                            self.id(),
                            Severity::Failure,
                            where_.to_string(),
                            format!("element ref `{{{ns_uri}}}{local}` does not resolve"),
                        ));
                    }
                },
                &mut |_, _, _| {},
            );
        }
    }
}

/// R2102 family: every referenced named *type* must be defined inline or
/// imported with a resolvable location. The JAX-WS `W3CEndpointReference`
/// documents — which import the WS-Addressing namespace **without** a
/// `schemaLocation` — fail here.
pub struct TypeRefsResolve;

impl Assertion for TypeRefsResolve {
    fn id(&self) -> &'static str {
        "R2102"
    }
    fn description(&self) -> &'static str {
        "all type references must resolve to a definition"
    }
    fn check(&self, defs: &Definitions, table: &SymbolTable, report: &mut Report) {
        for schema in &defs.schemas {
            walk_schema_refs(
                schema,
                &mut |type_ref, where_| {
                    if !table.type_resolves(type_ref) {
                        let extra = match type_ref {
                            wsinterop_xsd::TypeRef::Named { ns_uri, .. }
                                if table.imported_without_location(ns_uri) =>
                            {
                                " (namespace imported without schemaLocation)"
                            }
                            _ => "",
                        };
                        report.push(finding(
                            self.id(),
                            Severity::Failure,
                            where_.to_string(),
                            format!(
                                "type `{}` does not resolve{extra}",
                                type_ref.local_name()
                            ),
                        ));
                    }
                },
                &mut |_, _, _| {},
                &mut |_, _, _| {},
            );
        }
    }
}

/// R2106 family: attribute references must resolve. The `.NET`
/// `ref="s:lang"` emission fails here.
pub struct AttributeRefsResolve;

impl Assertion for AttributeRefsResolve {
    fn id(&self) -> &'static str {
        "R2106"
    }
    fn description(&self) -> &'static str {
        "all attribute references must resolve to a declaration"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for schema in &defs.schemas {
            walk_schema_refs(
                schema,
                &mut |_, _| {},
                &mut |_, _, _| {},
                &mut |where_, ns_uri, local| {
                    // The only global attributes that exist without a
                    // schema are xml:lang/xml:space; anything else —
                    // including refs into the XSD namespace itself — is
                    // unresolvable.
                    let resolvable = ns_uri == ns::XML && (local == "lang" || local == "space");
                    if !resolvable {
                        report.push(finding(
                            self.id(),
                            Severity::Failure,
                            where_.to_string(),
                            format!("attribute ref `{{{ns_uri}}}{local}` does not resolve"),
                        ));
                    }
                },
            );
        }
    }
}

/// R2304: operations within a port type must have distinct names
/// (WSDL 1.1 overloading is disallowed by the profile).
pub struct UniqueOperationNames;

impl Assertion for UniqueOperationNames {
    fn id(&self) -> &'static str {
        "R2304"
    }
    fn description(&self) -> &'static str {
        "port-type operations must have unique names"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for port_type in &defs.port_types {
            let mut seen = std::collections::HashSet::new();
            for op in &port_type.operations {
                if !seen.insert(op.name.as_str()) {
                    report.push(finding(
                        self.id(),
                        Severity::Failure,
                        format!("portType `{}`", port_type.name),
                        format!("operation `{}` is overloaded", op.name),
                    ));
                }
            }
        }
    }
}

/// R2201: a document-literal binding must use **at most one** part per
/// message.
pub struct DocLiteralSinglePart;

impl Assertion for DocLiteralSinglePart {
    fn id(&self) -> &'static str {
        "R2201"
    }
    fn description(&self) -> &'static str {
        "document-literal messages must have at most one part"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for binding in &defs.bindings {
            let style = binding
                .soap
                .as_ref()
                .map(|s| s.style)
                .unwrap_or(Style::Document);
            if style != Style::Document {
                continue;
            }
            let Some(port_type) = defs.port_type(&binding.port_type.local) else {
                continue;
            };
            for op in &port_type.operations {
                for message_ref in op.input.iter().chain(op.output.iter()) {
                    let Some(message) = defs.message(&message_ref.local) else {
                        continue;
                    };
                    if message.parts.len() > 1 {
                        report.push(finding(
                            self.id(),
                            Severity::Failure,
                            format!("message `{}`", message.name),
                            format!("{} parts under a document binding", message.parts.len()),
                        ));
                    }
                }
            }
        }
    }
}

/// R2718: a binding must bind exactly the operations of its port type.
pub struct BindingMatchesPortType;

impl Assertion for BindingMatchesPortType {
    fn id(&self) -> &'static str {
        "R2718"
    }
    fn description(&self) -> &'static str {
        "binding operation set must match the port type"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for binding in &defs.bindings {
            let Some(port_type) = defs.port_type(&binding.port_type.local) else {
                report.push(finding(
                    self.id(),
                    Severity::Failure,
                    format!("binding `{}`", binding.name),
                    format!("bound port type `{}` is not defined", binding.port_type.local),
                ));
                continue;
            };
            for op in &port_type.operations {
                if !binding.operations.iter().any(|b| b.name == op.name) {
                    report.push(finding(
                        self.id(),
                        Severity::Warning,
                        format!("binding `{}`", binding.name),
                        format!("port-type operation `{}` is not bound", op.name),
                    ));
                }
            }
            for op in &binding.operations {
                if !port_type.operations.iter().any(|p| p.name == op.name) {
                    report.push(finding(
                        self.id(),
                        Severity::Warning,
                        format!("binding `{}`", binding.name),
                        format!("bound operation `{}` does not exist in the port type", op.name),
                    ));
                }
            }
        }
    }
}

/// EXT0001 (advisory, this study's recommendation): flag port types
/// that declare **zero operations**. The WSDL schema allows them
/// (`minOccurs=0`), the WS-I analyzer passes them, and the paper argues
/// that tools should at least warn — so this assertion reports a
/// warning without affecting conformance.
pub struct OperationsPresent;

impl Assertion for OperationsPresent {
    fn id(&self) -> &'static str {
        "EXT0001"
    }
    fn description(&self) -> &'static str {
        "port types should declare at least one operation (advisory)"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for port_type in &defs.port_types {
            if port_type.operations.is_empty() {
                report.push(finding(
                    self.id(),
                    Severity::Warning,
                    format!("portType `{}`", port_type.name),
                    "declares no operations; generated clients will be unusable",
                ));
            }
        }
    }
}

/// EXT0002 (advisory): note the presence of `xsd:any` wildcards in
/// message wrappers. Conformant per the profile, but a known
/// cross-platform hazard (the paper's DataTable case).
pub struct WildcardNote;

impl Assertion for WildcardNote {
    fn id(&self) -> &'static str {
        "EXT0002"
    }
    fn description(&self) -> &'static str {
        "note xsd:any wildcards in message content (advisory)"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for schema in &defs.schemas {
            for el in &schema.elements {
                if let Some(inline) = &el.inline {
                    if inline
                        .content
                        .particles
                        .iter()
                        .any(|p| matches!(p, Particle::Any { .. }))
                    {
                        report.push(finding(
                            self.id(),
                            Severity::Note,
                            format!("element `{}`", el.name),
                            "wrapper content model contains xsd:any",
                        ));
                    }
                }
            }
        }
    }
}

/// R2711-family: every `wsdl:port` must carry a `soap:address`.
pub struct SoapAddressPresent;

impl Assertion for SoapAddressPresent {
    fn id(&self) -> &'static str {
        "R2711"
    }
    fn description(&self) -> &'static str {
        "service ports must include a soap:address extension"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for service in &defs.services {
            for port in &service.ports {
                if port.address.is_none() {
                    report.push(finding(
                        self.id(),
                        Severity::Failure,
                        format!("service `{}` port `{}`", service.name, port.name),
                        "no soap:address extension",
                    ));
                }
            }
        }
    }
}

/// EXT0003 (advisory): extension attributes from unrecognized
/// namespaces on bindings (e.g. WS-Addressing `wsaw:UsingAddressing`)
/// are flagged as warnings — consumers without addressing support will
/// surface these differently.
pub struct ForeignExtensionAttrs;

impl Assertion for ForeignExtensionAttrs {
    fn id(&self) -> &'static str {
        "EXT0003"
    }
    fn description(&self) -> &'static str {
        "note foreign extension attributes on bindings (advisory)"
    }
    fn check(&self, defs: &Definitions, _table: &SymbolTable, report: &mut Report) {
        for binding in &defs.bindings {
            for attr in &binding.extension_attrs {
                report.push(finding(
                    self.id(),
                    Severity::Warning,
                    format!("binding `{}`", binding.name),
                    format!("extension attribute `{}` from `{}`", attr.lexical, attr.ns_uri),
                ));
            }
        }
    }
}

/// The full assertion set of the profile, in check order.
pub fn basic_profile_1_1() -> Vec<Box<dyn Assertion>> {
    vec![
        Box::new(SoapBindingPresent),
        Box::new(HttpTransport),
        Box::new(ConsistentStyle),
        Box::new(LiteralUse),
        Box::new(SoapActionPresent),
        Box::new(DocLiteralElementParts),
        Box::new(RpcLiteralTypeParts),
        Box::new(UniqueOperationNames),
        Box::new(DocLiteralSinglePart),
        Box::new(ElementRefsResolve),
        Box::new(TypeRefsResolve),
        Box::new(AttributeRefsResolve),
        Box::new(BindingMatchesPortType),
        Box::new(OperationsPresent),
        Box::new(WildcardNote),
        Box::new(SoapAddressPresent),
        Box::new(ForeignExtensionAttrs),
    ]
}
