//! # wsinterop-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation section, plus pipeline throughput benches.
//!
//! | bench target | regenerates |
//! |---|---|
//! | `fig4_overview` | Fig. 4 (per-server warning/error overview) |
//! | `table3_matrix` | Table III (server × client matrix) + Tables I/II inventories |
//! | `pipeline` | per-stage throughput (WSDL gen/parse, WS-I check, artifact gen, compile) |
//! | `campaign_scaling` | end-to-end campaign throughput vs. sample size |
//! | `ablation` | per-defect error attribution + fault-model overhead |
//! | `complexity` | the complexity-frontier extension (E10) |
//!
//! Each table/figure bench *asserts the paper's result shape first*
//! (who wins, by roughly what factor) on a sampled run, then times the
//! regeneration. The exact full-campaign equality check lives in
//! `tests/paper_numbers.rs`; `EXPERIMENTS.md` records paper-vs-measured
//! values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use wsinterop_core::report::{Fig4, TableIII, Totals};
use wsinterop_core::{Campaign, CampaignResults};
use wsinterop_frameworks::client::ClientId;
use wsinterop_frameworks::server::ServerId;

/// Runs a strided campaign (shared by the bench targets).
pub fn sampled_results(stride: usize) -> CampaignResults {
    Campaign::sampled(stride).run()
}

/// Asserts the qualitative *shape* of Fig. 4 on sampled results — the
/// relations the paper's bar chart communicates, which must survive
/// sampling:
///
/// * compilation warnings dwarf everything else (the Axis tools warn on
///   every service),
/// * generation warnings against the Java servers dwarf the `.NET`
///   column (the JScript incompatibility),
/// * the `.NET` server shows the most generation errors (DataSet
///   family).
///
/// # Panics
///
/// Panics when a relation does not hold.
pub fn assert_fig4_shape(results: &CampaignResults) {
    let fig4 = Fig4::from_results(results);
    for (server, row) in &fig4.rows {
        assert!(
            row.cac_warnings >= row.cag_warnings,
            "{server}: compile warnings must dominate"
        );
        assert!(
            row.cac_warnings > 0,
            "{server}: Axis compile warnings must appear"
        );
    }
    let metro = fig4.row(ServerId::Metro);
    let wcf = fig4.row(ServerId::WcfDotNet);
    assert!(
        metro.cag_warnings > 10 * wcf.cag_warnings.max(1) / 2,
        "JScript warnings must concentrate on the Java servers"
    );
    assert!(
        wcf.cag_errors >= metro.cag_errors,
        "the .NET server must show the most generation errors (DataSet family)"
    );
}

/// Asserts the qualitative shape of Table III on sampled results:
///
/// * Axis1 is the dominant source of compilation errors on the Java
///   servers (the Throwable-wrapper defect),
/// * the mature tools (Metro/CXF/JBossWS/C#/gSOAP) never produce
///   compilation errors,
/// * the dynamic clients have no compilation columns at all.
///
/// # Panics
///
/// Panics when a relation does not hold.
pub fn assert_table3_shape(results: &CampaignResults) {
    let table = TableIII::from_results(results);
    for &server in &[ServerId::Metro, ServerId::JBossWs] {
        let axis1 = table.cell(ClientId::Axis1, server);
        for &other in &ClientId::ALL {
            if other == ClientId::Axis1 {
                continue;
            }
            let cell = table.cell(other, server);
            assert!(
                axis1.compile_errors.unwrap_or(0) >= cell.compile_errors.unwrap_or(0),
                "Axis1 must lead compile errors on {server}"
            );
        }
    }
    for client in [
        ClientId::Metro,
        ClientId::Cxf,
        ClientId::JBossWs,
        ClientId::DotnetCs,
        ClientId::Gsoap,
    ] {
        for &server in &ServerId::ALL {
            let cell = table.cell(client, server);
            assert_eq!(
                cell.compile_errors.unwrap_or(0),
                0,
                "mature tool {client} must not produce compile errors on {server}"
            );
        }
    }
    for client in [ClientId::Zend, ClientId::Suds] {
        for &server in &ServerId::ALL {
            let cell = table.cell(client, server);
            assert_eq!(cell.compile_errors, None);
            assert_eq!(cell.compile_warnings, None);
        }
    }
}

/// Asserts the headline-totals shape: tests ran, deployments filtered
/// the catalogs roughly as the paper reports (≈33 % of the candidate
/// services survive), and errors exist on both steps.
///
/// # Panics
///
/// Panics when a relation does not hold.
pub fn assert_totals_shape(results: &CampaignResults) {
    let totals = Totals::from_results(results);
    assert_eq!(totals.tests_executed, totals.services_deployed * 11);
    assert!(totals.services_excluded > totals.services_deployed);
    assert!(totals.generation_errors > 0);
    assert!(totals.compilation_errors > 0);
    assert!(totals.compilation_warnings > totals.compilation_errors);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold_on_a_sampled_run() {
        let results = sampled_results(40);
        assert_fig4_shape(&results);
        assert_table3_shape(&results);
        assert_totals_shape(&results);
    }
}
