//! Per-stage throughput of the interoperability pipeline: WSDL
//! emission, parsing, WS-I analysis, artifact generation, compilation
//! and the SOAP message layer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wsinterop_compilers::{compiler_for, Compiler, Javac};
use wsinterop_core::doccache::DocCache;
use wsinterop_frameworks::client::{Axis1, ClientSubsystem, DotnetJs, MetroClient};
use wsinterop_frameworks::server::{Metro, ServerSubsystem, WcfDotNet};
use wsinterop_wsdl::de::from_xml_str;
use wsinterop_wsi::Analyzer;

fn wsdl_emission(c: &mut Criterion) {
    let catalog = Metro.catalog();
    let plain = catalog.get("java.util.GregorianCalendar").unwrap();
    let throwable = catalog.get("java.io.IOException").unwrap();
    let dataset = WcfDotNet
        .catalog()
        .get("System.Data.DataSet")
        .unwrap();

    let mut group = c.benchmark_group("wsdl_emission");
    group.bench_function("metro_plain_bean", |b| {
        b.iter(|| black_box(Metro.deploy(plain)))
    });
    group.bench_function("metro_throwable_bean", |b| {
        b.iter(|| black_box(Metro.deploy(throwable)))
    });
    group.bench_function("wcf_dataset_family", |b| {
        b.iter(|| black_box(WcfDotNet.deploy(dataset)))
    });
    group.finish();
}

fn wsdl_parse_and_wsi(c: &mut Criterion) {
    let entry = Metro.catalog().get("javax.swing.JTable").unwrap();
    let wsdl = Metro.deploy(entry).wsdl().unwrap().to_string();
    let defs = from_xml_str(&wsdl).unwrap();
    let analyzer = Analyzer::basic_profile_1_1();

    let mut group = c.benchmark_group("consume");
    group.bench_function("parse_wsdl", |b| {
        b.iter(|| black_box(from_xml_str(&wsdl).unwrap()))
    });
    group.bench_function("wsi_analyze", |b| {
        b.iter(|| black_box(analyzer.analyze(&defs)))
    });
    group.finish();
}

fn artifact_generation(c: &mut Criterion) {
    let entry = Metro.catalog().get("javax.swing.JTable").unwrap();
    let wsdl = Metro.deploy(entry).wsdl().unwrap().to_string();

    let mut group = c.benchmark_group("artifact_generation");
    group.bench_function("wsimport", |b| {
        b.iter(|| black_box(MetroClient.generate(&wsdl)))
    });
    group.bench_function("axis1_wsdl2java", |b| {
        b.iter(|| black_box(Axis1.generate(&wsdl)))
    });
    group.bench_function("wsdl_exe_jscript", |b| {
        b.iter(|| black_box(DotnetJs.generate(&wsdl)))
    });
    group.finish();
}

fn compilation(c: &mut Criterion) {
    let entry = Metro.catalog().get("javax.swing.JTable").unwrap();
    let wsdl = Metro.deploy(entry).wsdl().unwrap().to_string();
    let clean = MetroClient.generate(&wsdl).artifacts.unwrap();
    let faulty = {
        let throwable = Metro.catalog().get("java.io.IOException").unwrap();
        let wsdl = Metro.deploy(throwable).wsdl().unwrap().to_string();
        Axis1.generate(&wsdl).artifacts.unwrap()
    };

    let mut group = c.benchmark_group("compilation");
    group.bench_function("javac_clean_bundle", |b| {
        b.iter(|| black_box(Javac.compile(&clean)))
    });
    group.bench_function("javac_faulty_wrapper", |b| {
        b.iter(|| black_box(Javac.compile(&faulty)))
    });
    group.finish();
}

fn soap_messages(c: &mut Criterion) {
    let entry = Metro.catalog().get("java.lang.String").unwrap();
    let wsdl = Metro.deploy(entry).wsdl().unwrap().to_string();
    let defs = from_xml_str(&wsdl).unwrap();
    let request = wsinterop_wsdl::soap::request(&defs, "echo", "payload").unwrap();
    let request_xml =
        wsinterop_xml::writer::write_document(&request, &wsinterop_xml::WriteOptions::compact());

    let mut group = c.benchmark_group("soap");
    group.bench_function("build_request", |b| {
        b.iter(|| black_box(wsinterop_wsdl::soap::request(&defs, "echo", "payload").unwrap()))
    });
    group.bench_function("unwrap_value", |b| {
        b.iter(|| black_box(wsinterop_wsdl::soap::unwrap_single_value(&request_xml).unwrap()))
    });
    group.finish();
}

fn parse_once(c: &mut Criterion) {
    // The parse-once pipeline's unit economics: one Artifact Generation
    // step paying the full text parse per cell, versus the shared
    // pre-parsed document, versus a content-addressed memo replay.
    let entry = Metro.catalog().get("javax.swing.JTable").unwrap();
    let wsdl = Metro.deploy(entry).wsdl().unwrap().to_string();
    let cache = DocCache::new();
    let svc = cache.parse(wsdl.clone());
    let (defs, facts) = (svc.defs().unwrap(), svc.facts().unwrap());

    let mut group = c.benchmark_group("parse_once");
    group.bench_function("per_cell_text_generate", |b| {
        b.iter(|| black_box(MetroClient.generate(&wsdl)))
    });
    group.bench_function("shared_generate_from", |b| {
        b.iter(|| black_box(MetroClient.generate_from(defs, facts)))
    });
    group.bench_function("memoized_generate", |b| {
        b.iter(|| black_box(cache.generate(&MetroClient, &svc)))
    });
    group.finish();
}

fn full_test_cell(c: &mut Criterion) {
    // One complete (generate + compile) test, the campaign's unit of work.
    let entry = Metro.catalog().get("java.io.IOException").unwrap();
    let wsdl = Metro.deploy(entry).wsdl().unwrap().to_string();
    c.bench_function("one_interop_test_axis1", |b| {
        b.iter(|| {
            let outcome = Axis1.generate(&wsdl);
            let bundle = outcome.artifacts.as_ref().unwrap();
            let compiler = compiler_for(bundle.language).unwrap();
            black_box(compiler.compile(bundle))
        })
    });
}

criterion_group!(
    benches,
    wsdl_emission,
    wsdl_parse_and_wsi,
    artifact_generation,
    compilation,
    soap_messages,
    parse_once,
    full_test_cell
);
criterion_main!(benches);
