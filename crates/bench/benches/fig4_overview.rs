//! Bench E1: regenerating the paper's **Fig. 4** — the per-server
//! overview of warnings and errors across the three testing steps.
//!
//! The shape of the figure (compile warnings dominate; JScript
//! warnings concentrate on the Java servers; the `.NET` column leads
//! generation errors) is asserted before timing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use wsinterop_bench::{assert_fig4_shape, sampled_results};
use wsinterop_core::report::Fig4;
use wsinterop_core::Campaign;

fn fig4_overview(c: &mut Criterion) {
    // Shape check once, on a denser sample than the timed runs.
    let shape_run = sampled_results(40);
    assert_fig4_shape(&shape_run);

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);

    // End-to-end: campaign (1/100th sample) + report extraction.
    group.bench_function("campaign_stride100_plus_report", |b| {
        b.iter(|| {
            let results = Campaign::sampled(100).run();
            black_box(Fig4::from_results(&results))
        });
    });

    // Report extraction alone over precomputed results.
    group.bench_function("report_from_results_stride40", |b| {
        b.iter_batched(
            || shape_run.clone(),
            |results| black_box(Fig4::from_results(&results)),
            BatchSize::LargeInput,
        );
    });

    group.finish();
}

criterion_group!(benches, fig4_overview);
criterion_main!(benches);
