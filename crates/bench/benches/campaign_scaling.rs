//! End-to-end campaign throughput at different sample densities, and
//! single- vs multi-thread scaling. (The paper reports no runtime
//! numbers; these benches characterize this reproduction so a full
//! 79 629-test run can be budgeted from a sample.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wsinterop_bench::assert_totals_shape;
use wsinterop_core::Campaign;

fn campaign_scaling(c: &mut Criterion) {
    assert_totals_shape(&Campaign::sampled(80).run());

    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    for stride in [400usize, 200, 100] {
        group.bench_with_input(
            BenchmarkId::new("stride", stride),
            &stride,
            |b, &stride| b.iter(|| black_box(Campaign::sampled(stride).run())),
        );
    }
    group.finish();

    let mut threads = c.benchmark_group("campaign_threads");
    threads.sample_size(10);
    for n in [1usize, 4] {
        threads.bench_with_input(BenchmarkId::new("threads", n), &n, |b, &n| {
            b.iter(|| black_box(Campaign::sampled(200).with_threads(n).run()))
        });
    }
    threads.finish();

    // Shared parsed-description cache vs the historical per-cell parse
    // (the parse-once pipeline's headline comparison; `wsitool
    // bench-campaign` snapshots the same pair into BENCH_campaign.json).
    let mut cache = c.benchmark_group("campaign_cache");
    cache.sample_size(10);
    cache.bench_function("stride200_shared_parse", |b| {
        b.iter(|| black_box(Campaign::sampled(200).run()))
    });
    cache.bench_function("stride200_per_cell_parse", |b| {
        b.iter(|| black_box(Campaign::sampled(200).with_doc_cache(false).run()))
    });
    cache.finish();
}

criterion_group!(benches, campaign_scaling);
criterion_main!(benches);
