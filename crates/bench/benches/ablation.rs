//! Ablation bench: how much of the campaign's error mass each injected
//! defect class accounts for, and what the fault model costs at
//! runtime.
//!
//! DESIGN.md calls out the major design choice of this reproduction —
//! generator defects are *planted in the artifact model and discovered
//! by the compilers*, rather than looked up. This bench ablates the
//! plants one at a time (via `StubOptions`) and measures (a) that the
//! corresponding error class disappears and nothing else moves, and
//! (b) the runtime cost of the honest pipeline versus a defect-free
//! one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wsinterop_compilers::{Compiler, Javac};
use wsinterop_frameworks::client::facts::DocFacts;
use wsinterop_frameworks::client::stubgen::{generate, StubOptions};
use wsinterop_frameworks::server::{Metro, ServerSubsystem};
use wsinterop_artifact::ArtifactLanguage;
use wsinterop_wsdl::de::from_xml_str;

/// Compiles the Axis1-style artifacts for every bindable throwable on
/// Metro, with the fault-wrapper defect switched on or off.
fn axis1_throwable_errors(with_defect: bool) -> usize {
    let opts = StubOptions {
        unchecked_lint: true,
        fault_wrapper_bug: with_defect,
        ..StubOptions::default()
    };
    let mut errors = 0;
    for entry in Metro
        .catalog()
        .iter()
        .filter(|e| e.is_throwable && e.is_bean_bindable())
        .take(60)
    {
        let wsdl = Metro.deploy(entry).wsdl().unwrap().to_string();
        let defs = from_xml_str(&wsdl).unwrap();
        let facts = DocFacts::analyze(&defs);
        let bundle = generate(&defs, ArtifactLanguage::Java, &opts, &facts);
        if !Javac.compile(&bundle).success() {
            errors += 1;
        }
    }
    errors
}

fn ablation(c: &mut Criterion) {
    // Shape: with the defect, every throwable service fails; without
    // it, none do — the error mass is attributable to exactly this
    // plant.
    assert_eq!(axis1_throwable_errors(true), 60);
    assert_eq!(axis1_throwable_errors(false), 0);

    let mut group = c.benchmark_group("ablation_axis1_fault_wrapper");
    group.sample_size(10);
    for (label, with_defect) in [("defective", true), ("clean", false)] {
        group.bench_with_input(
            BenchmarkId::new("pipeline60", label),
            &with_defect,
            |b, &with_defect| b.iter(|| black_box(axis1_throwable_errors(with_defect))),
        );
    }
    group.finish();
}

fn quirk_cost(c: &mut Criterion) {
    // Cost of the fault-model machinery itself: generating artifacts
    // with all defect switches off vs. the full Axis2 option set, over
    // the same clean document.
    let entry = Metro.catalog().get("javax.swing.JTable").unwrap();
    let wsdl = Metro.deploy(entry).wsdl().unwrap().to_string();
    let defs = from_xml_str(&wsdl).unwrap();
    let facts = DocFacts::analyze(&defs);
    let clean = StubOptions::default();
    let axis2 = StubOptions {
        unchecked_lint: true,
        local_prefix_bug: true,
        duplicate_local_bug: false,
        ..StubOptions::default()
    };

    let mut group = c.benchmark_group("stubgen_options");
    group.bench_function("defaults", |b| {
        b.iter(|| black_box(generate(&defs, ArtifactLanguage::Java, &clean, &facts)))
    });
    group.bench_function("axis2_option_set", |b| {
        b.iter(|| black_box(generate(&defs, ArtifactLanguage::Java, &axis2, &facts)))
    });
    group.finish();
}

criterion_group!(benches, ablation, quirk_cost);
criterion_main!(benches);
