//! Bench E10 (extension): the complexity-frontier experiment — client
//! success as services grow nested parameters, operation fan-out, and
//! the rpc/literal style.
//!
//! Shape asserted before timing: document/literal tiers interoperate
//! universally; the rpc/literal tier splits the field.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wsinterop_core::complexity::{default_tiers, service_for, ComplexityMatrix, Tier};
use wsinterop_wsdl::ser::to_xml_string;

fn complexity(c: &mut Criterion) {
    let tiers = default_tiers();
    let matrix = ComplexityMatrix::run(&tiers);
    for tier in &tiers {
        let rate = matrix.success_rate(*tier);
        if tier.rpc {
            assert!(rate < 1.0, "rpc tier must split the field");
        } else {
            assert!((rate - 1.0).abs() < f64::EPSILON, "{tier} must be universal");
        }
    }

    let mut group = c.benchmark_group("complexity");
    group.sample_size(10);
    for depth in [0usize, 3, 6] {
        let tier = Tier {
            depth,
            operations: 4,
            rpc: false,
        };
        group.bench_with_input(
            BenchmarkId::new("matrix_depth", depth),
            &tier,
            |b, &tier| b.iter(|| black_box(ComplexityMatrix::run(&[tier]))),
        );
        group.bench_with_input(
            BenchmarkId::new("wsdl_bytes_depth", depth),
            &tier,
            |b, &tier| b.iter(|| black_box(to_xml_string(&service_for(tier)).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, complexity);
criterion_main!(benches);
