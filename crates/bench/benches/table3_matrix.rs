//! Bench E2/E3/E4: regenerating the paper's **Table I** and **Table
//! II** inventories and the full **Table III** (server × client)
//! result matrix.
//!
//! Table III's shape (Axis1 leads compile errors on the Java servers,
//! the mature tools never emit uncompilable code, dynamic clients have
//! no compile columns) is asserted before timing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use wsinterop_bench::{assert_table3_shape, sampled_results};
use wsinterop_core::report::TableIII;
use wsinterop_core::Campaign;
use wsinterop_frameworks::client::all_clients;
use wsinterop_frameworks::server::all_servers;

fn table_inventories(c: &mut Criterion) {
    // Tables I and II are static inventories; assert their shape.
    assert_eq!(all_servers().len(), 3, "Table I has three rows");
    assert_eq!(all_clients().len(), 11, "Table II has eleven rows");

    c.bench_function("table1_table2_inventories", |b| {
        b.iter(|| {
            let servers: Vec<_> = all_servers().iter().map(|s| s.info()).collect();
            let clients: Vec<_> = all_clients().iter().map(|c| c.info()).collect();
            black_box((servers, clients))
        });
    });
}

fn table3_matrix(c: &mut Criterion) {
    let shape_run = sampled_results(40);
    assert_table3_shape(&shape_run);

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);

    group.bench_function("campaign_stride100_plus_matrix", |b| {
        b.iter(|| {
            let results = Campaign::sampled(100).run();
            black_box(TableIII::from_results(&results))
        });
    });

    group.bench_function("matrix_from_results_stride40", |b| {
        b.iter_batched(
            || shape_run.clone(),
            |results| black_box(TableIII::from_results(&results)),
            BatchSize::LargeInput,
        );
    });

    group.bench_function("matrix_render_text", |b| {
        let table = TableIII::from_results(&shape_run);
        b.iter(|| black_box(table.to_string()));
    });

    group.finish();
}

criterion_group!(benches, table_inventories, table3_matrix);
criterion_main!(benches);
