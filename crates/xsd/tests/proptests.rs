//! Property-based tests for the XSD crate: schema ser/de roundtrips
//! over generated schemas, and lexical-space laws.

use proptest::prelude::*;
use wsinterop_xml::scope::NsBindings;
use wsinterop_xsd::de::schema_from_element;
use wsinterop_xsd::lexical::{base64_decode, base64_encode, validate};
use wsinterop_xsd::ser::{schema_to_element, SerOptions};
use wsinterop_xsd::{
    BuiltIn, ComplexType, ElementDecl, MaxOccurs, Particle, Schema, SimpleType, TypeRef,
};

fn ncname() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9]{0,8}"
}

fn builtin() -> impl Strategy<Value = BuiltIn> {
    prop::sample::select(BuiltIn::ALL.to_vec())
}

fn arb_element_decl() -> impl Strategy<Value = ElementDecl> {
    (ncname(), builtin(), 0u32..2, any::<bool>(), any::<bool>()).prop_map(
        |(name, b, min, unbounded, nillable)| {
            let mut decl = ElementDecl::typed(name, TypeRef::BuiltIn(b)).min(min);
            if unbounded {
                decl = decl.max(MaxOccurs::Unbounded);
            }
            if nillable {
                decl = decl.nillable();
            }
            decl
        },
    )
}

fn arb_schema() -> impl Strategy<Value = Schema> {
    (
        prop::collection::btree_map(ncname(), arb_element_decl(), 0..4),
        prop::collection::btree_map(ncname(), prop::collection::vec(arb_element_decl(), 0..4), 0..3),
        prop::collection::btree_map(ncname(), prop::collection::vec("[A-Z]{1,6}", 1..4), 0..3),
    )
        .prop_map(|(elements, complex, simple)| {
            let mut schema = Schema::new("urn:prop");
            for (name, mut decl) in elements {
                decl.name = name;
                schema.elements.push(decl);
            }
            for (name, fields) in complex {
                // Avoid name collisions with simple types below.
                let mut ct = ComplexType::named(format!("C{name}"));
                for field in fields {
                    ct = ct.with_particle(Particle::Element(field));
                }
                schema.complex_types.push(ct);
            }
            for (name, constants) in simple {
                schema.simple_types.push(SimpleType {
                    name: format!("S{name}"),
                    base: BuiltIn::String,
                    enumeration: constants,
                });
            }
            schema
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated schema survives serialize → parse.
    #[test]
    fn schema_ser_de_roundtrip(schema in arb_schema(), dotnet in any::<bool>()) {
        let opts = if dotnet { SerOptions::dotnet() } else { SerOptions::default() };
        let el = schema_to_element(&schema, &opts);
        let back = schema_from_element(&el, &NsBindings::new()).unwrap();
        prop_assert_eq!(back, schema);
    }

    /// Element-declaration counts survive the roundtrip.
    #[test]
    fn decl_count_preserved(schema in arb_schema()) {
        let el = schema_to_element(&schema, &SerOptions::default());
        let back = schema_from_element(&el, &NsBindings::new()).unwrap();
        prop_assert_eq!(back.element_decl_count(), schema.element_decl_count());
    }

    /// base64: encode → decode is the identity on arbitrary bytes.
    #[test]
    fn base64_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let encoded = base64_encode(&bytes);
        prop_assert!(validate(BuiltIn::Base64Binary, &encoded).is_ok());
        prop_assert_eq!(base64_decode(&encoded).unwrap(), bytes);
    }

    /// base64 decoding never panics on arbitrary text.
    #[test]
    fn base64_decode_total(raw in "\\PC{0,48}") {
        let _ = base64_decode(&raw);
    }

    /// Integer lexical spaces agree with Rust's parsers.
    #[test]
    fn int_lexical_matches_rust(v in any::<i64>()) {
        let text = v.to_string();
        prop_assert!(validate(BuiltIn::Long, &text).is_ok());
        prop_assert_eq!(
            validate(BuiltIn::Int, &text).is_ok(),
            i32::try_from(v).is_ok()
        );
        prop_assert_eq!(
            validate(BuiltIn::Short, &text).is_ok(),
            i16::try_from(v).is_ok()
        );
        prop_assert_eq!(
            validate(BuiltIn::UnsignedInt, &text).is_ok(),
            u32::try_from(v).is_ok()
        );
    }

    /// Doubles in canonical form always validate.
    #[test]
    fn double_lexical_total(v in any::<f64>()) {
        prop_assume!(v.is_finite());
        prop_assert!(validate(BuiltIn::Double, &v.to_string()).is_ok());
    }
}
