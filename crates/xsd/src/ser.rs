//! Serialization of the schema object model to XML elements.

use wsinterop_xml::name::ns;
use wsinterop_xml::Element;

use crate::model::{
    AttributeDecl, ComplexType, ElementDecl, Group, Import, MaxOccurs, Particle, Schema,
    SimpleType, TypeRef,
};

/// Prefix assignments used while serializing a schema.
///
/// The XSD namespace and the schema's target namespace always have a
/// prefix; additional namespaces can be registered for cross-namespace
/// type references.
#[derive(Debug, Clone)]
pub struct SerOptions {
    /// Prefix bound to the XSD namespace (JAX-WS emits `xs`/`xsd`,
    /// `.NET` emits `s` — the difference is visible in the paper's
    /// error messages, so it is configurable).
    pub xsd_prefix: String,
    /// Prefix bound to the target namespace.
    pub tns_prefix: String,
    /// Extra `(namespace-uri, prefix)` pairs.
    pub extra: Vec<(String, String)>,
    /// Emit `xmlns` declarations on the `schema` element itself
    /// (standalone document form). When embedded in a WSDL the
    /// declarations usually live on `wsdl:definitions` instead.
    pub declare_namespaces: bool,
}

impl Default for SerOptions {
    fn default() -> Self {
        SerOptions {
            xsd_prefix: "xsd".to_string(),
            tns_prefix: "tns".to_string(),
            extra: Vec::new(),
            declare_namespaces: true,
        }
    }
}

impl SerOptions {
    /// The `.NET`-style prefix assignment (`s:` for XSD).
    pub fn dotnet() -> SerOptions {
        SerOptions {
            xsd_prefix: "s".to_string(),
            ..SerOptions::default()
        }
    }

    fn prefix_for(&self, uri: &str, target_ns: &str) -> Option<&str> {
        if uri == ns::XSD {
            Some(&self.xsd_prefix)
        } else if uri == target_ns {
            Some(&self.tns_prefix)
        } else {
            self.extra
                .iter()
                .find(|(u, _)| u == uri)
                .map(|(_, p)| p.as_str())
        }
    }

    fn qname(&self, uri: &str, local: &str, target_ns: &str) -> String {
        match self.prefix_for(uri, target_ns) {
            Some(p) => format!("{p}:{local}"),
            // Unknown namespace: emit the raw local name; consumers will
            // fail to resolve it, which is precisely the failure mode
            // some real generators exhibit.
            None => local.to_string(),
        }
    }

    fn type_ref(&self, r: &TypeRef, target_ns: &str) -> String {
        match r {
            TypeRef::BuiltIn(b) => format!("{}:{}", self.xsd_prefix, b.xsd_name()),
            TypeRef::Named { ns_uri, local } => self.qname(ns_uri, local, target_ns),
        }
    }
}

/// Serializes a [`Schema`] to an `xsd:schema` element.
///
/// # Examples
///
/// ```
/// use wsinterop_xsd::{Schema, ElementDecl, TypeRef, BuiltIn, ser::{schema_to_element, SerOptions}};
/// let mut schema = Schema::new("urn:example");
/// schema.elements.push(ElementDecl::typed("echo", TypeRef::BuiltIn(BuiltIn::String)));
/// let el = schema_to_element(&schema, &SerOptions::default());
/// assert_eq!(el.attr("targetNamespace"), Some("urn:example"));
/// assert_eq!(el.child_elements().count(), 1);
/// ```
pub fn schema_to_element(schema: &Schema, opts: &SerOptions) -> Element {
    let xp = &opts.xsd_prefix;
    let mut root = Element::new(&format!("{xp}:schema"))
        .in_ns(ns::XSD)
        .with_attr("targetNamespace", &schema.target_ns)
        .with_attr(
            "elementFormDefault",
            schema.element_form_default.as_str(),
        );
    if opts.declare_namespaces {
        root.declare_ns(Some(xp), ns::XSD);
        root.declare_ns(Some(&opts.tns_prefix), &schema.target_ns);
        for (uri, p) in &opts.extra {
            root.declare_ns(Some(p), uri);
        }
    }
    for import in &schema.imports {
        root.push_element(import_to_element(import, opts));
    }
    for el in &schema.elements {
        root.push_element(element_decl_to_element(el, schema, opts));
    }
    for ct in &schema.complex_types {
        root.push_element(complex_type_to_element(ct, schema, opts));
    }
    for st in &schema.simple_types {
        root.push_element(simple_type_to_element(st, opts));
    }
    root
}

fn import_to_element(import: &Import, opts: &SerOptions) -> Element {
    let mut el = Element::new(&format!("{}:import", opts.xsd_prefix))
        .in_ns(ns::XSD)
        .with_attr("namespace", &import.namespace);
    if let Some(loc) = &import.schema_location {
        el.set_attr("schemaLocation", loc);
    }
    el
}

fn element_decl_to_element(decl: &ElementDecl, schema: &Schema, opts: &SerOptions) -> Element {
    let mut el = Element::new(&format!("{}:element", opts.xsd_prefix))
        .in_ns(ns::XSD)
        .with_attr("name", &decl.name);
    if decl.min_occurs != 1 {
        el.set_attr("minOccurs", decl.min_occurs.to_string());
    }
    match decl.max_occurs {
        MaxOccurs::Bounded(1) => {}
        MaxOccurs::Bounded(n) => el.set_attr("maxOccurs", n.to_string()),
        MaxOccurs::Unbounded => el.set_attr("maxOccurs", "unbounded"),
    }
    if decl.nillable {
        el.set_attr("nillable", "true");
    }
    if let Some(r) = &decl.type_ref {
        el.set_attr("type", opts.type_ref(r, &schema.target_ns));
    }
    if let Some(inline) = &decl.inline {
        el.push_element(complex_type_to_element(inline, schema, opts));
    }
    el
}

fn complex_type_to_element(ct: &ComplexType, schema: &Schema, opts: &SerOptions) -> Element {
    let xp = &opts.xsd_prefix;
    let mut el = Element::new(&format!("{xp}:complexType")).in_ns(ns::XSD);
    if let Some(name) = &ct.name {
        el.set_attr("name", name);
    }
    if ct.is_abstract {
        el.set_attr("abstract", "true");
    }
    let body = group_to_element(&ct.content, schema, opts);
    if let Some(base) = &ct.extends {
        let ext = Element::new(&format!("{xp}:extension"))
            .in_ns(ns::XSD)
            .with_attr("base", opts.type_ref(base, &schema.target_ns))
            .with_child(body);
        el.push_element(
            Element::new(&format!("{xp}:complexContent"))
                .in_ns(ns::XSD)
                .with_child(ext),
        );
    } else {
        el.push_element(body);
    }
    for attr in &ct.attributes {
        el.push_element(attribute_to_element(attr, schema, opts));
    }
    el
}

fn group_to_element(group: &Group, schema: &Schema, opts: &SerOptions) -> Element {
    let xp = &opts.xsd_prefix;
    let mut el =
        Element::new(&format!("{xp}:{}", group.compositor.xsd_name())).in_ns(ns::XSD);
    for particle in &group.particles {
        match particle {
            Particle::Element(decl) => {
                el.push_element(element_decl_to_element(decl, schema, opts));
            }
            Particle::ElementRef { ns_uri, local } => {
                el.push_element(
                    Element::new(&format!("{xp}:element"))
                        .in_ns(ns::XSD)
                        .with_attr("ref", opts.qname(ns_uri, local, &schema.target_ns)),
                );
            }
            Particle::Any {
                process_contents,
                min_occurs,
                max_occurs,
            } => {
                let mut any = Element::new(&format!("{xp}:any"))
                    .in_ns(ns::XSD)
                    .with_attr("processContents", process_contents.as_str());
                if *min_occurs != 1 {
                    any.set_attr("minOccurs", min_occurs.to_string());
                }
                match max_occurs {
                    MaxOccurs::Bounded(1) => {}
                    MaxOccurs::Bounded(n) => any.set_attr("maxOccurs", n.to_string()),
                    MaxOccurs::Unbounded => any.set_attr("maxOccurs", "unbounded"),
                }
                el.push_element(any);
            }
            Particle::Group(inner) => {
                el.push_element(group_to_element(inner, schema, opts));
            }
        }
    }
    el
}

fn attribute_to_element(attr: &AttributeDecl, schema: &Schema, opts: &SerOptions) -> Element {
    let xp = &opts.xsd_prefix;
    match attr {
        AttributeDecl::Local {
            name,
            type_ref,
            required,
        } => {
            let mut el = Element::new(&format!("{xp}:attribute"))
                .in_ns(ns::XSD)
                .with_attr("name", name)
                .with_attr("type", opts.type_ref(type_ref, &schema.target_ns));
            if *required {
                el.set_attr("use", "required");
            }
            el
        }
        AttributeDecl::Ref { ns_uri, local } => Element::new(&format!("{xp}:attribute"))
            .in_ns(ns::XSD)
            .with_attr("ref", opts.qname(ns_uri, local, &schema.target_ns)),
    }
}

fn simple_type_to_element(st: &SimpleType, opts: &SerOptions) -> Element {
    let xp = &opts.xsd_prefix;
    let mut restriction = Element::new(&format!("{xp}:restriction"))
        .in_ns(ns::XSD)
        .with_attr("base", format!("{xp}:{}", st.base.xsd_name()));
    for value in &st.enumeration {
        restriction.push_element(
            Element::new(&format!("{xp}:enumeration"))
                .in_ns(ns::XSD)
                .with_attr("value", value),
        );
    }
    Element::new(&format!("{xp}:simpleType"))
        .in_ns(ns::XSD)
        .with_attr("name", &st.name)
        .with_child(restriction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::BuiltIn;
    use crate::model::{AttributeDecl, ProcessContents};
    use wsinterop_xml::writer::{write_element, WriteOptions};

    fn echo_schema() -> Schema {
        let mut s = Schema::new("urn:echo");
        let req = ComplexType::anonymous().with_particle(Particle::Element(
            ElementDecl::typed("arg0", TypeRef::BuiltIn(BuiltIn::String)).min(0),
        ));
        s.elements.push(ElementDecl::with_inline("echo", req));
        s
    }

    #[test]
    fn schema_root_shape() {
        let el = schema_to_element(&echo_schema(), &SerOptions::default());
        assert!(el.is_named(ns::XSD, "schema"));
        assert_eq!(el.attr("targetNamespace"), Some("urn:echo"));
        assert_eq!(el.attr("elementFormDefault"), Some("qualified"));
        assert_eq!(el.attr("xmlns:xsd"), Some(ns::XSD));
    }

    #[test]
    fn dotnet_prefix_is_s() {
        let el = schema_to_element(&echo_schema(), &SerOptions::dotnet());
        assert_eq!(el.name().prefix(), Some("s"));
        assert_eq!(el.attr("xmlns:s"), Some(ns::XSD));
    }

    #[test]
    fn inline_complex_type_nests() {
        let el = schema_to_element(&echo_schema(), &SerOptions::default());
        let decl = el.element(ns::XSD, "element").unwrap();
        assert_eq!(decl.attr("name"), Some("echo"));
        let ct = decl.element(ns::XSD, "complexType").unwrap();
        let seq = ct.element(ns::XSD, "sequence").unwrap();
        let arg = seq.element(ns::XSD, "element").unwrap();
        assert_eq!(arg.attr("type"), Some("xsd:string"));
        assert_eq!(arg.attr("minOccurs"), Some("0"));
    }

    #[test]
    fn element_ref_serializes_with_known_prefix() {
        let mut s = Schema::new("urn:x");
        s.complex_types.push(ComplexType::named("T").with_particle(
            Particle::ElementRef {
                ns_uri: ns::XSD.to_string(),
                local: "schema".to_string(),
            },
        ));
        let el = schema_to_element(&s, &SerOptions::dotnet());
        let xml = write_element(&el, &WriteOptions::compact());
        assert!(xml.contains(r#"ref="s:schema""#), "{xml}");
    }

    #[test]
    fn any_and_occurs_attributes() {
        let mut s = Schema::new("urn:x");
        s.complex_types.push(ComplexType::named("T").with_particle(Particle::Any {
            process_contents: ProcessContents::Lax,
            min_occurs: 0,
            max_occurs: MaxOccurs::Unbounded,
        }));
        let xml = write_element(
            &schema_to_element(&s, &SerOptions::default()),
            &WriteOptions::compact(),
        );
        assert!(xml.contains(r#"<xsd:any processContents="lax" minOccurs="0" maxOccurs="unbounded"/>"#), "{xml}");
    }

    #[test]
    fn attribute_ref_serializes() {
        let mut s = Schema::new("urn:x");
        s.complex_types.push(
            ComplexType::named("T").with_attribute(AttributeDecl::Ref {
                ns_uri: ns::XSD.to_string(),
                local: "lang".to_string(),
            }),
        );
        let xml = write_element(
            &schema_to_element(&s, &SerOptions::dotnet()),
            &WriteOptions::compact(),
        );
        assert!(xml.contains(r#"<s:attribute ref="s:lang"/>"#), "{xml}");
    }

    #[test]
    fn simple_type_enumeration() {
        let mut s = Schema::new("urn:x");
        s.simple_types.push(SimpleType {
            name: "Color".into(),
            base: BuiltIn::String,
            enumeration: vec!["Red".into(), "Green".into()],
        });
        let xml = write_element(
            &schema_to_element(&s, &SerOptions::default()),
            &WriteOptions::compact(),
        );
        assert!(xml.contains(r#"<xsd:enumeration value="Red"/>"#));
        assert!(xml.contains(r#"base="xsd:string""#));
    }

    #[test]
    fn extension_wraps_in_complex_content() {
        let mut s = Schema::new("urn:x");
        s.complex_types.push(
            ComplexType::named("Derived").extending(TypeRef::named("urn:x", "Base")),
        );
        let xml = write_element(
            &schema_to_element(&s, &SerOptions::default()),
            &WriteOptions::compact(),
        );
        assert!(xml.contains("complexContent"), "{xml}");
        assert!(xml.contains(r#"base="tns:Base""#), "{xml}");
    }

    #[test]
    fn import_with_location() {
        let mut s = Schema::new("urn:x");
        s.imports.push(Import {
            namespace: "urn:other".into(),
            schema_location: Some("other.xsd".into()),
        });
        let el = schema_to_element(&s, &SerOptions::default());
        let import = el.element(ns::XSD, "import").unwrap();
        assert_eq!(import.attr("namespace"), Some("urn:other"));
        assert_eq!(import.attr("schemaLocation"), Some("other.xsd"));
    }
}
