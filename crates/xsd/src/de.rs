//! Parsing of `xsd:schema` elements back into the object model.

use std::fmt;

use wsinterop_xml::name::ns;
use wsinterop_xml::scope::NsBindings;
use wsinterop_xml::Element;

use crate::builtin::BuiltIn;
use crate::model::{
    AttributeDecl, ComplexType, Compositor, ElementDecl, Form, Group, Import, MaxOccurs,
    Particle, ProcessContents, Schema, SimpleType, TypeRef,
};

/// An error produced while reading a schema document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaReadError {
    message: String,
}

impl SchemaReadError {
    fn new(message: impl Into<String>) -> SchemaReadError {
        SchemaReadError {
            message: message.into(),
        }
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SchemaReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema read error: {}", self.message)
    }
}

impl std::error::Error for SchemaReadError {}

/// Parses an `xsd:schema` element into a [`Schema`].
///
/// `outer_scope` carries namespace bindings declared on ancestors (e.g.
/// `wsdl:definitions`); pass a fresh [`NsBindings`] for standalone
/// documents.
///
/// # Errors
///
/// Returns [`SchemaReadError`] when the element is not an `xsd:schema`,
/// when QName attribute values use undeclared prefixes, or when
/// occurrence/type attributes are malformed.
///
/// # Examples
///
/// ```
/// use wsinterop_xml::{parse_element, scope::NsBindings};
/// use wsinterop_xsd::de::schema_from_element;
/// let el = parse_element(
///     r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
///          targetNamespace="urn:t" elementFormDefault="qualified">
///          <xsd:element name="a" type="xsd:int"/>
///        </xsd:schema>"#,
/// ).unwrap();
/// let schema = schema_from_element(&el, &NsBindings::new())?;
/// assert_eq!(schema.target_ns, "urn:t");
/// assert_eq!(schema.elements.len(), 1);
/// # Ok::<(), wsinterop_xsd::de::SchemaReadError>(())
/// ```
pub fn schema_from_element(
    el: &Element,
    outer_scope: &NsBindings,
) -> Result<Schema, SchemaReadError> {
    if !el.is_named(ns::XSD, "schema") {
        return Err(SchemaReadError::new(format!(
            "expected xsd:schema, found {}",
            el.expanded_name()
        )));
    }
    let mut scope = outer_scope.clone();
    scope.push_element(el);

    let mut schema = Schema::new(el.attr("targetNamespace").unwrap_or_default());
    schema.element_form_default = match el.attr("elementFormDefault") {
        Some("qualified") => Form::Qualified,
        _ => Form::Unqualified,
    };

    for child in el.child_elements() {
        if child.ns_uri() != Some(ns::XSD) {
            continue; // foreign-namespace extension elements are skipped
        }
        match child.name().local_part() {
            "import" => schema.imports.push(Import {
                namespace: child.attr("namespace").unwrap_or_default().to_string(),
                schema_location: child.attr("schemaLocation").map(str::to_string),
            }),
            "element" => {
                let decl = read_element_decl(child, &mut scope)?;
                schema.elements.push(decl);
            }
            "complexType" => {
                let ct = read_complex_type(child, &mut scope)?;
                schema.complex_types.push(ct);
            }
            "simpleType" => {
                let st = read_simple_type(child, &mut scope)?;
                schema.simple_types.push(st);
            }
            "annotation" | "attribute" | "attributeGroup" | "group" | "notation"
            | "include" | "redefine" => {} // tolerated, not modeled
            other => {
                return Err(SchemaReadError::new(format!(
                    "unsupported top-level schema construct `xsd:{other}`"
                )))
            }
        }
    }
    Ok(schema)
}

fn resolve_type_ref(
    raw: &str,
    scope: &NsBindings,
) -> Result<TypeRef, SchemaReadError> {
    let (ns_uri, local) = scope.resolve_qname_value(raw).ok_or_else(|| {
        SchemaReadError::new(format!("cannot resolve QName `{raw}` (undeclared prefix?)"))
    })?;
    match ns_uri.as_deref() {
        Some(uri) if uri == ns::XSD => local
            .parse::<BuiltIn>()
            .map(TypeRef::BuiltIn)
            .map_err(|e| SchemaReadError::new(e.to_string())),
        Some(uri) => Ok(TypeRef::named(uri, local)),
        None => Ok(TypeRef::named("", local)),
    }
}

fn read_occurs(el: &Element) -> Result<(u32, MaxOccurs), SchemaReadError> {
    let min = match el.attr("minOccurs") {
        None => 1,
        Some(raw) => raw
            .parse::<u32>()
            .map_err(|_| SchemaReadError::new(format!("bad minOccurs `{raw}`")))?,
    };
    let max = match el.attr("maxOccurs") {
        None => MaxOccurs::Bounded(1),
        Some("unbounded") => MaxOccurs::Unbounded,
        Some(raw) => MaxOccurs::Bounded(
            raw.parse::<u32>()
                .map_err(|_| SchemaReadError::new(format!("bad maxOccurs `{raw}`")))?,
        ),
    };
    Ok((min, max))
}

fn read_element_decl(
    el: &Element,
    scope: &mut NsBindings,
) -> Result<ElementDecl, SchemaReadError> {
    scope.push_element(el);
    let result = (|| {
        let name = el
            .attr("name")
            .ok_or_else(|| SchemaReadError::new("xsd:element without name"))?
            .to_string();
        let (min_occurs, max_occurs) = read_occurs(el)?;
        let type_ref = match el.attr("type") {
            Some(raw) => Some(resolve_type_ref(raw, scope)?),
            None => None,
        };
        let inline = match el.element(ns::XSD, "complexType") {
            Some(ct_el) => Some(Box::new(read_complex_type(ct_el, scope)?)),
            None => None,
        };
        Ok(ElementDecl {
            name,
            type_ref,
            inline,
            min_occurs,
            max_occurs,
            nillable: el.attr("nillable") == Some("true"),
        })
    })();
    scope.pop();
    result
}

fn read_complex_type(
    el: &Element,
    scope: &mut NsBindings,
) -> Result<ComplexType, SchemaReadError> {
    scope.push_element(el);
    let result = (|| {
        let mut ct = ComplexType {
            name: el.attr("name").map(str::to_string),
            is_abstract: el.attr("abstract") == Some("true"),
            ..ComplexType::default()
        };

        // complexContent/extension?
        let (content_holder, extends) = match el.element(ns::XSD, "complexContent") {
            Some(cc) => match cc.element(ns::XSD, "extension") {
                Some(ext) => {
                    let base_raw = ext
                        .attr("base")
                        .ok_or_else(|| SchemaReadError::new("extension without base"))?;
                    (ext, Some(resolve_type_ref(base_raw, scope)?))
                }
                None => (cc, None),
            },
            None => (el, None),
        };
        ct.extends = extends;

        for compositor in [Compositor::Sequence, Compositor::Choice, Compositor::All] {
            if let Some(group_el) = content_holder.element(ns::XSD, compositor.xsd_name()) {
                ct.content = read_group(group_el, compositor, scope)?;
                break;
            }
        }
        for attr_el in content_holder.elements(ns::XSD, "attribute") {
            ct.attributes.push(read_attribute(attr_el, scope)?);
        }
        // Attributes may also sit on the complexType itself when content
        // came from an extension wrapper.
        if !std::ptr::eq(content_holder, el) {
            for attr_el in el.elements(ns::XSD, "attribute") {
                ct.attributes.push(read_attribute(attr_el, scope)?);
            }
        }
        Ok(ct)
    })();
    scope.pop();
    result
}

fn read_group(
    el: &Element,
    compositor: Compositor,
    scope: &mut NsBindings,
) -> Result<Group, SchemaReadError> {
    scope.push_element(el);
    let result = (|| {
        let mut group = Group {
            compositor,
            particles: Vec::new(),
        };
        for child in el.child_elements() {
            if child.ns_uri() != Some(ns::XSD) {
                continue;
            }
            match child.name().local_part() {
                "element" => {
                    if let Some(raw) = child.attr("ref") {
                        let (ns_uri, local) =
                            scope.resolve_qname_value(raw).ok_or_else(|| {
                                SchemaReadError::new(format!(
                                    "cannot resolve element ref `{raw}`"
                                ))
                            })?;
                        group.particles.push(Particle::ElementRef {
                            ns_uri: ns_uri.unwrap_or_default(),
                            local,
                        });
                    } else {
                        group
                            .particles
                            .push(Particle::Element(read_element_decl(child, scope)?));
                    }
                }
                "any" => {
                    let (min_occurs, max_occurs) = read_occurs(child)?;
                    let process_contents = match child.attr("processContents") {
                        Some("strict") => ProcessContents::Strict,
                        Some("skip") => ProcessContents::Skip,
                        _ => ProcessContents::Lax,
                    };
                    group.particles.push(Particle::Any {
                        process_contents,
                        min_occurs,
                        max_occurs,
                    });
                }
                "sequence" => group.particles.push(Particle::Group(Box::new(read_group(
                    child,
                    Compositor::Sequence,
                    scope,
                )?))),
                "choice" => group.particles.push(Particle::Group(Box::new(read_group(
                    child,
                    Compositor::Choice,
                    scope,
                )?))),
                "all" => group.particles.push(Particle::Group(Box::new(read_group(
                    child,
                    Compositor::All,
                    scope,
                )?))),
                "annotation" => {}
                other => {
                    return Err(SchemaReadError::new(format!(
                        "unsupported particle `xsd:{other}`"
                    )))
                }
            }
        }
        Ok(group)
    })();
    scope.pop();
    result
}

fn read_attribute(
    el: &Element,
    scope: &mut NsBindings,
) -> Result<AttributeDecl, SchemaReadError> {
    scope.push_element(el);
    let result = (|| {
        if let Some(raw) = el.attr("ref") {
            let (ns_uri, local) = scope.resolve_qname_value(raw).ok_or_else(|| {
                SchemaReadError::new(format!("cannot resolve attribute ref `{raw}`"))
            })?;
            return Ok(AttributeDecl::Ref {
                ns_uri: ns_uri.unwrap_or_default(),
                local,
            });
        }
        let name = el
            .attr("name")
            .ok_or_else(|| SchemaReadError::new("xsd:attribute without name or ref"))?
            .to_string();
        let type_ref = match el.attr("type") {
            Some(raw) => resolve_type_ref(raw, scope)?,
            None => TypeRef::BuiltIn(BuiltIn::AnySimpleType),
        };
        Ok(AttributeDecl::Local {
            name,
            type_ref,
            required: el.attr("use") == Some("required"),
        })
    })();
    scope.pop();
    result
}

fn read_simple_type(
    el: &Element,
    scope: &mut NsBindings,
) -> Result<SimpleType, SchemaReadError> {
    scope.push_element(el);
    let result = (|| {
        let name = el
            .attr("name")
            .ok_or_else(|| SchemaReadError::new("top-level xsd:simpleType without name"))?
            .to_string();
        let restriction = el
            .element(ns::XSD, "restriction")
            .ok_or_else(|| SchemaReadError::new("simpleType without restriction"))?;
        let base_raw = restriction
            .attr("base")
            .ok_or_else(|| SchemaReadError::new("restriction without base"))?;
        let base = match resolve_type_ref(base_raw, scope)? {
            TypeRef::BuiltIn(b) => b,
            TypeRef::Named { local, .. } => {
                return Err(SchemaReadError::new(format!(
                    "simpleType restriction of non-built-in `{local}` is not supported"
                )))
            }
        };
        let enumeration = restriction
            .elements(ns::XSD, "enumeration")
            .filter_map(|e| e.attr("value").map(str::to_string))
            .collect();
        Ok(SimpleType {
            name,
            base,
            enumeration,
        })
    })();
    scope.pop();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser::{schema_to_element, SerOptions};
    use wsinterop_xml::parse_element;

    fn parse_schema(xml: &str) -> Result<Schema, SchemaReadError> {
        let el = parse_element(xml).expect("well-formed XML");
        schema_from_element(&el, &NsBindings::new())
    }

    #[test]
    fn minimal_schema() {
        let s = parse_schema(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:t"/>"#,
        )
        .unwrap();
        assert_eq!(s.target_ns, "urn:t");
        assert_eq!(s.element_form_default, Form::Unqualified);
    }

    #[test]
    fn rejects_non_schema_element() {
        let err = parse_schema("<foo/>").unwrap_err();
        assert!(err.message().contains("expected xsd:schema"));
    }

    #[test]
    fn reads_typed_element() {
        let s = parse_schema(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:t">
                 <xsd:element name="n" type="xsd:dateTime" nillable="true" minOccurs="0"/>
               </xsd:schema>"#,
        )
        .unwrap();
        let e = &s.elements[0];
        assert_eq!(e.name, "n");
        assert_eq!(e.type_ref, Some(TypeRef::BuiltIn(BuiltIn::DateTime)));
        assert!(e.nillable);
        assert_eq!(e.min_occurs, 0);
    }

    #[test]
    fn reads_element_ref_into_xsd_namespace() {
        // The .NET DataSet shape: <s:element ref="s:schema"/><s:any/>
        let s = parse_schema(
            r#"<s:schema xmlns:s="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:t">
                 <s:element name="res">
                   <s:complexType><s:sequence>
                     <s:element ref="s:schema"/>
                     <s:any/>
                   </s:sequence></s:complexType>
                 </s:element>
               </s:schema>"#,
        )
        .unwrap();
        let inline = s.elements[0].inline.as_ref().unwrap();
        assert_eq!(inline.content.particles.len(), 2);
        assert!(matches!(
            &inline.content.particles[0],
            Particle::ElementRef { ns_uri, local } if ns_uri == ns::XSD && local == "schema"
        ));
        assert!(matches!(&inline.content.particles[1], Particle::Any { .. }));
    }

    #[test]
    fn rejects_undeclared_prefix_in_type() {
        let err = parse_schema(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:t">
                 <xsd:element name="x" type="missing:T"/>
               </xsd:schema>"#,
        )
        .unwrap_err();
        assert!(err.message().contains("missing:T"));
    }

    #[test]
    fn reads_simple_type_enumeration() {
        let s = parse_schema(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:t">
                 <xsd:simpleType name="SocketError">
                   <xsd:restriction base="xsd:string">
                     <xsd:enumeration value="Success"/>
                     <xsd:enumeration value="SocketError"/>
                   </xsd:restriction>
                 </xsd:simpleType>
               </xsd:schema>"#,
        )
        .unwrap();
        let st = s.simple_type("SocketError").unwrap();
        assert_eq!(st.base, BuiltIn::String);
        assert_eq!(st.enumeration, ["Success", "SocketError"]);
    }

    #[test]
    fn ser_de_roundtrip() {
        let mut schema = Schema::new("urn:echo");
        let req = ComplexType::anonymous().with_particle(Particle::Element(
            ElementDecl::typed("arg0", TypeRef::BuiltIn(BuiltIn::String)).min(0),
        ));
        schema.elements.push(ElementDecl::with_inline("echo", req));
        schema
            .complex_types
            .push(ComplexType::named("Wrapper").with_particle(Particle::Element(
                ElementDecl::typed("value", TypeRef::named("urn:echo", "Wrapper")),
            )));
        schema.simple_types.push(SimpleType {
            name: "Mode".into(),
            base: BuiltIn::Int,
            enumeration: vec!["0".into(), "1".into()],
        });
        schema.imports.push(Import {
            namespace: "urn:other".into(),
            schema_location: None,
        });

        for opts in [SerOptions::default(), SerOptions::dotnet()] {
            let el = schema_to_element(&schema, &opts);
            let back = schema_from_element(&el, &NsBindings::new()).unwrap();
            assert_eq!(back, schema);
        }
    }

    #[test]
    fn foreign_namespace_children_are_skipped() {
        let s = parse_schema(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
                  xmlns:f="urn:foreign" targetNamespace="urn:t">
                 <f:custom/>
                 <xsd:element name="x" type="xsd:int"/>
               </xsd:schema>"#,
        )
        .unwrap();
        assert_eq!(s.elements.len(), 1);
    }

    #[test]
    fn extension_roundtrip() {
        let mut schema = Schema::new("urn:t");
        schema.complex_types.push(
            ComplexType::named("Derived")
                .extending(TypeRef::named("urn:t", "Base"))
                .with_particle(Particle::Element(ElementDecl::typed(
                    "extra",
                    TypeRef::BuiltIn(BuiltIn::Int),
                ))),
        );
        let el = schema_to_element(&schema, &SerOptions::default());
        let back = schema_from_element(&el, &NsBindings::new()).unwrap();
        assert_eq!(back, schema);
    }
}
