//! Lexical mapping for built-in simple types: parsing and canonical
//! serialization of XSD values.
//!
//! Implements the value spaces the echo services exchange: booleans,
//! the integer ladder, floating point, `dateTime`, `base64Binary` and
//! `hexBinary` — including a self-contained base64 codec (the offline
//! crate set has none).

use std::fmt;

use crate::builtin::BuiltIn;

/// An error produced when a lexical form does not belong to a type's
/// lexical space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexicalError {
    ty: BuiltIn,
    raw: String,
    reason: &'static str,
}

impl LexicalError {
    fn new(ty: BuiltIn, raw: &str, reason: &'static str) -> LexicalError {
        LexicalError {
            ty,
            raw: raw.to_string(),
            reason,
        }
    }

    /// The type whose lexical space was violated.
    pub fn builtin(&self) -> BuiltIn {
        self.ty
    }
}

impl fmt::Display for LexicalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` is not a valid {}: {}",
            self.raw, self.ty, self.reason
        )
    }
}

impl std::error::Error for LexicalError {}

/// Validates a lexical form against a built-in's lexical space.
///
/// # Errors
///
/// Returns [`LexicalError`] when the text is outside the lexical space.
///
/// # Examples
///
/// ```
/// use wsinterop_xsd::{BuiltIn, lexical::validate};
/// assert!(validate(BuiltIn::Int, "-42").is_ok());
/// assert!(validate(BuiltIn::Int, "forty-two").is_err());
/// assert!(validate(BuiltIn::Boolean, "true").is_ok());
/// assert!(validate(BuiltIn::DateTime, "2014-06-23T10:30:00Z").is_ok());
/// assert!(validate(BuiltIn::DateTime, "yesterday").is_err());
/// ```
pub fn validate(ty: BuiltIn, raw: &str) -> Result<(), LexicalError> {
    let text = raw.trim();
    match ty {
        BuiltIn::String | BuiltIn::AnyType | BuiltIn::AnySimpleType => Ok(()),
        BuiltIn::AnyUri => {
            if text.contains(' ') {
                Err(LexicalError::new(ty, raw, "URIs must not contain spaces"))
            } else {
                Ok(())
            }
        }
        BuiltIn::QName => {
            if text.parse::<wsinterop_xml::QName>().is_ok() {
                Ok(())
            } else {
                Err(LexicalError::new(ty, raw, "not a lexical QName"))
            }
        }
        BuiltIn::Boolean => match text {
            "true" | "false" | "1" | "0" => Ok(()),
            _ => Err(LexicalError::new(ty, raw, "expected true/false/1/0")),
        },
        BuiltIn::Byte => int_in_range(ty, raw, text, i8::MIN as i128, i8::MAX as i128),
        BuiltIn::Short => int_in_range(ty, raw, text, i16::MIN as i128, i16::MAX as i128),
        BuiltIn::Int => int_in_range(ty, raw, text, i32::MIN as i128, i32::MAX as i128),
        BuiltIn::Long => int_in_range(ty, raw, text, i64::MIN as i128, i64::MAX as i128),
        BuiltIn::Integer => int_in_range(ty, raw, text, i128::MIN, i128::MAX),
        BuiltIn::UnsignedByte => int_in_range(ty, raw, text, 0, u8::MAX as i128),
        BuiltIn::UnsignedShort => int_in_range(ty, raw, text, 0, u16::MAX as i128),
        BuiltIn::UnsignedInt => int_in_range(ty, raw, text, 0, u32::MAX as i128),
        BuiltIn::UnsignedLong => int_in_range(ty, raw, text, 0, u64::MAX as i128),
        BuiltIn::Float | BuiltIn::Double => {
            if matches!(text, "NaN" | "INF" | "-INF") || text.parse::<f64>().is_ok() {
                Ok(())
            } else {
                Err(LexicalError::new(ty, raw, "not a floating-point literal"))
            }
        }
        BuiltIn::Decimal => {
            let no_exp = !text.contains(['e', 'E']);
            if no_exp && text.parse::<f64>().is_ok() {
                Ok(())
            } else {
                Err(LexicalError::new(ty, raw, "decimals take no exponent"))
            }
        }
        BuiltIn::DateTime => date_time(ty, raw, text),
        BuiltIn::Date => date_only(ty, raw, text),
        BuiltIn::Time => time_only(ty, raw, text),
        BuiltIn::Duration => {
            // P[nY][nM][nD][T[nH][nM][nS]] — at least one component.
            let body = text.strip_prefix('-').unwrap_or(text);
            if body.starts_with('P') && body.len() > 1 {
                Ok(())
            } else {
                Err(LexicalError::new(ty, raw, "expected ISO-8601 duration"))
            }
        }
        BuiltIn::GYearMonth => {
            let ok = text.len() >= 7
                && text.as_bytes()[4] == b'-'
                && text[..4].chars().all(|c| c.is_ascii_digit())
                && text[5..7].chars().all(|c| c.is_ascii_digit());
            if ok {
                Ok(())
            } else {
                Err(LexicalError::new(ty, raw, "expected CCYY-MM"))
            }
        }
        BuiltIn::GYear => {
            if text.len() >= 4 && text[..4].chars().all(|c| c.is_ascii_digit()) {
                Ok(())
            } else {
                Err(LexicalError::new(ty, raw, "expected CCYY"))
            }
        }
        BuiltIn::Base64Binary => base64_decode(text)
            .map(|_| ())
            .map_err(|reason| LexicalError::new(ty, raw, reason)),
        BuiltIn::HexBinary => {
            if text.len().is_multiple_of(2) && text.chars().all(|c| c.is_ascii_hexdigit()) {
                Ok(())
            } else {
                Err(LexicalError::new(ty, raw, "expected an even hex string"))
            }
        }
    }
}

fn int_in_range(
    ty: BuiltIn,
    raw: &str,
    text: &str,
    min: i128,
    max: i128,
) -> Result<(), LexicalError> {
    match text.parse::<i128>() {
        Ok(v) if v >= min && v <= max => Ok(()),
        Ok(_) => Err(LexicalError::new(ty, raw, "out of range")),
        Err(_) => Err(LexicalError::new(ty, raw, "not an integer")),
    }
}

fn date_only(ty: BuiltIn, raw: &str, text: &str) -> Result<(), LexicalError> {
    let b = text.as_bytes();
    let ok = b.len() >= 10
        && b[0..4].iter().all(u8::is_ascii_digit)
        && b[4] == b'-'
        && b[5..7].iter().all(u8::is_ascii_digit)
        && b[7] == b'-'
        && b[8..10].iter().all(u8::is_ascii_digit)
        && {
            let month: u8 = text[5..7].parse().unwrap_or(0);
            let day: u8 = text[8..10].parse().unwrap_or(0);
            (1..=12).contains(&month) && (1..=31).contains(&day)
        };
    if ok {
        Ok(())
    } else {
        Err(LexicalError::new(ty, raw, "expected CCYY-MM-DD"))
    }
}

fn time_only(ty: BuiltIn, raw: &str, text: &str) -> Result<(), LexicalError> {
    let b = text.as_bytes();
    let ok = b.len() >= 8
        && b[0..2].iter().all(u8::is_ascii_digit)
        && b[2] == b':'
        && b[3..5].iter().all(u8::is_ascii_digit)
        && b[5] == b':'
        && b[6..8].iter().all(u8::is_ascii_digit)
        && {
            let hh: u8 = text[0..2].parse().unwrap_or(99);
            let mm: u8 = text[3..5].parse().unwrap_or(99);
            let ss: u8 = text[6..8].parse().unwrap_or(99);
            hh <= 23 && mm <= 59 && ss <= 60
        };
    if ok {
        Ok(())
    } else {
        Err(LexicalError::new(ty, raw, "expected hh:mm:ss"))
    }
}

fn date_time(ty: BuiltIn, raw: &str, text: &str) -> Result<(), LexicalError> {
    let Some((date, time)) = text.split_once('T') else {
        return Err(LexicalError::new(ty, raw, "expected CCYY-MM-DDThh:mm:ss"));
    };
    date_only(ty, raw, date)?;
    time_only(ty, raw, time)
}

const B64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard base64 (with padding).
///
/// # Examples
///
/// ```
/// use wsinterop_xsd::lexical::base64_encode;
/// assert_eq!(base64_encode(b"interop"), "aW50ZXJvcA==");
/// assert_eq!(base64_encode(b""), "");
/// ```
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let idx = [
            (n >> 18) & 63,
            (n >> 12) & 63,
            (n >> 6) & 63,
            n & 63,
        ];
        out.push(B64_ALPHABET[idx[0] as usize] as char);
        out.push(B64_ALPHABET[idx[1] as usize] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[idx[2] as usize] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[idx[3] as usize] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard base64 (padding required, whitespace ignored).
///
/// # Errors
///
/// Returns a static reason string on malformed input.
///
/// # Examples
///
/// ```
/// use wsinterop_xsd::lexical::base64_decode;
/// assert_eq!(base64_decode("aW50ZXJvcA==").unwrap(), b"interop");
/// assert!(base64_decode("a").is_err());
/// ```
pub fn base64_decode(text: &str) -> Result<Vec<u8>, &'static str> {
    let cleaned: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if cleaned.is_empty() {
        return Ok(Vec::new());
    }
    if !cleaned.len().is_multiple_of(4) {
        return Err("length must be a multiple of 4");
    }
    let value_of = |b: u8| -> Result<u32, &'static str> {
        match b {
            b'A'..=b'Z' => Ok(u32::from(b - b'A')),
            b'a'..=b'z' => Ok(u32::from(b - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(b - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err("invalid base64 character"),
        }
    };
    let mut out = Vec::with_capacity(cleaned.len() / 4 * 3);
    for (i, quad) in cleaned.chunks(4).enumerate() {
        let last = i == cleaned.len() / 4 - 1;
        let pads = quad.iter().filter(|&&b| b == b'=').count();
        if pads > 2 || (!last && pads > 0) {
            return Err("misplaced padding");
        }
        if (quad[0] == b'=') || (quad[1] == b'=') {
            return Err("misplaced padding");
        }
        if quad[2] == b'=' && quad[3] != b'=' {
            return Err("misplaced padding");
        }
        let mut n = (value_of(quad[0])? << 18) | (value_of(quad[1])? << 12);
        if quad[2] != b'=' {
            n |= value_of(quad[2])? << 6;
        }
        if quad[3] != b'=' {
            n |= value_of(quad[3])?;
        }
        out.push((n >> 16) as u8);
        if quad[2] != b'=' {
            out.push((n >> 8) as u8);
        }
        if quad[3] != b'=' {
            out.push(n as u8);
        }
    }
    Ok(out)
}

/// A canonical sample value from the type's lexical space (used by the
/// typed exchange simulator and the examples).
pub fn sample(ty: BuiltIn) -> &'static str {
    match ty {
        BuiltIn::String | BuiltIn::AnyType | BuiltIn::AnySimpleType => "sample",
        BuiltIn::AnyUri => "http://example.org/resource",
        BuiltIn::QName => "tns:name",
        BuiltIn::Boolean => "true",
        BuiltIn::Byte | BuiltIn::Short | BuiltIn::Int | BuiltIn::Long | BuiltIn::Integer => "42",
        BuiltIn::UnsignedByte
        | BuiltIn::UnsignedShort
        | BuiltIn::UnsignedInt
        | BuiltIn::UnsignedLong => "7",
        BuiltIn::Float | BuiltIn::Double => "3.25",
        BuiltIn::Decimal => "19.90",
        BuiltIn::DateTime => "2014-06-23T10:30:00",
        BuiltIn::Date => "2014-06-23",
        BuiltIn::Time => "10:30:00",
        BuiltIn::Duration => "P1DT2H",
        BuiltIn::GYearMonth => "2014-06",
        BuiltIn::GYear => "2014",
        BuiltIn::Base64Binary => "aW50ZXJvcA==",
        BuiltIn::HexBinary => "DEADBEEF",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sample_is_valid_for_its_type() {
        for ty in BuiltIn::ALL {
            assert!(validate(ty, sample(ty)).is_ok(), "{ty}");
        }
    }

    #[test]
    fn integer_ranges_enforced() {
        assert!(validate(BuiltIn::Byte, "127").is_ok());
        assert!(validate(BuiltIn::Byte, "128").is_err());
        assert!(validate(BuiltIn::UnsignedInt, "-1").is_err());
        assert!(validate(BuiltIn::Long, "9223372036854775807").is_ok());
        assert!(validate(BuiltIn::Long, "9223372036854775808").is_err());
        assert!(validate(BuiltIn::Int, "not-int").is_err());
    }

    #[test]
    fn floats_accept_special_values_decimals_do_not() {
        assert!(validate(BuiltIn::Double, "NaN").is_ok());
        assert!(validate(BuiltIn::Double, "-INF").is_ok());
        assert!(validate(BuiltIn::Double, "1e9").is_ok());
        assert!(validate(BuiltIn::Decimal, "1e9").is_err());
        assert!(validate(BuiltIn::Decimal, "10.50").is_ok());
    }

    #[test]
    fn date_time_shapes() {
        assert!(validate(BuiltIn::DateTime, "2014-06-23T10:30:00Z").is_ok());
        assert!(validate(BuiltIn::DateTime, "2014-13-23T10:30:00").is_err());
        assert!(validate(BuiltIn::DateTime, "2014-06-23").is_err());
        assert!(validate(BuiltIn::Date, "2014-06-23").is_ok());
        assert!(validate(BuiltIn::Time, "25:00:00").is_err());
        assert!(validate(BuiltIn::GYearMonth, "2014-06").is_ok());
        assert!(validate(BuiltIn::GYearMonth, "201406").is_err());
    }

    #[test]
    fn base64_roundtrip() {
        for data in [
            &b""[..],
            b"a",
            b"ab",
            b"abc",
            b"abcd",
            b"\x00\xff\x10\x80",
            b"the quick brown fox",
        ] {
            let encoded = base64_encode(data);
            assert_eq!(base64_decode(&encoded).unwrap(), data, "{encoded}");
        }
    }

    #[test]
    fn base64_rejects_malformed() {
        assert!(base64_decode("abc").is_err());
        assert!(base64_decode("ab=c").is_err());
        assert!(base64_decode("====").is_err());
        assert!(base64_decode("a*==").is_err());
    }

    #[test]
    fn base64_ignores_whitespace() {
        assert_eq!(base64_decode("aW50\nZXJv cA==").unwrap(), b"interop");
    }

    #[test]
    fn hex_binary() {
        assert!(validate(BuiltIn::HexBinary, "00ff").is_ok());
        assert!(validate(BuiltIn::HexBinary, "0f0").is_err());
        assert!(validate(BuiltIn::HexBinary, "zz").is_err());
    }

    #[test]
    fn qname_and_uri() {
        assert!(validate(BuiltIn::QName, "a:b").is_ok());
        assert!(validate(BuiltIn::QName, "a:b:c").is_err());
        assert!(validate(BuiltIn::AnyUri, "urn:with space").is_err());
    }

    #[test]
    fn boolean_forms() {
        for ok in ["true", "false", "1", "0"] {
            assert!(validate(BuiltIn::Boolean, ok).is_ok());
        }
        assert!(validate(BuiltIn::Boolean, "TRUE").is_err());
    }

    #[test]
    fn lexical_error_reports_type_and_input() {
        let err = validate(BuiltIn::Int, "xyz").unwrap_err();
        assert_eq!(err.builtin(), BuiltIn::Int);
        assert!(err.to_string().contains("xyz"));
    }
}
