//! # wsinterop-xsd
//!
//! An XML Schema (XSD) object model covering the subset of schema
//! constructs that SOAP web-service frameworks emit into WSDL `types`
//! sections: global elements, (anonymous) complex types with
//! sequence/choice/all content, element/attribute references, wildcards,
//! enumerated simple types, imports and form defaults.
//!
//! The model intentionally includes the *irregular* shapes the study
//! depends on — `ref="s:schema"` element references into the XSD
//! namespace itself and `ref="s:lang"` attribute references — because
//! the reproduced interoperability failures hinge on them.
//!
//! * [`model`] — the object model ([`Schema`], [`ComplexType`], …)
//! * [`builtin`] — the built-in simple types ([`BuiltIn`])
//! * [`ser`] — serialization to `wsinterop-xml` elements
//! * [`de`] — parsing back from elements
//! * [`lexical`] — lexical validation and canonical values (incl. a
//!   self-contained base64 codec)
//!
//! ## Example
//!
//! ```
//! use wsinterop_xsd::{Schema, ElementDecl, TypeRef, BuiltIn};
//! use wsinterop_xsd::ser::{schema_to_element, SerOptions};
//! use wsinterop_xsd::de::schema_from_element;
//! use wsinterop_xml::scope::NsBindings;
//!
//! let mut schema = Schema::new("urn:quick");
//! schema.elements.push(ElementDecl::typed("value", TypeRef::BuiltIn(BuiltIn::Long)));
//! let el = schema_to_element(&schema, &SerOptions::default());
//! let back = schema_from_element(&el, &NsBindings::new())?;
//! assert_eq!(back, schema);
//! # Ok::<(), wsinterop_xsd::de::SchemaReadError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builtin;
pub mod de;
pub mod lexical;
pub mod model;
pub mod ser;

pub use builtin::{BuiltIn, UnknownBuiltInError};
pub use model::{
    AttributeDecl, ComplexType, Compositor, ElementDecl, Form, Group, Import, MaxOccurs,
    Particle, ProcessContents, Schema, SimpleType, TypeRef,
};
