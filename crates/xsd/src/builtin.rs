//! The XML Schema built-in datatypes used by web-service bindings.

use std::fmt;
use std::str::FromStr;

/// A built-in XML Schema simple type.
///
/// The set covers every type emitted by the simulated framework binding
/// rules (JAX-WS/JAXB and the .NET `XmlSerializer`/`DataContract`
/// mappings).
///
/// # Examples
///
/// ```
/// use wsinterop_xsd::BuiltIn;
/// assert_eq!(BuiltIn::Int.xsd_name(), "int");
/// assert_eq!("dateTime".parse::<BuiltIn>()?, BuiltIn::DateTime);
/// # Ok::<(), wsinterop_xsd::UnknownBuiltInError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum BuiltIn {
    /// `xsd:string`
    String,
    /// `xsd:boolean`
    Boolean,
    /// `xsd:byte`
    Byte,
    /// `xsd:short`
    Short,
    /// `xsd:int`
    Int,
    /// `xsd:long`
    Long,
    /// `xsd:integer`
    Integer,
    /// `xsd:unsignedByte`
    UnsignedByte,
    /// `xsd:unsignedShort`
    UnsignedShort,
    /// `xsd:unsignedInt`
    UnsignedInt,
    /// `xsd:unsignedLong`
    UnsignedLong,
    /// `xsd:float`
    Float,
    /// `xsd:double`
    Double,
    /// `xsd:decimal`
    Decimal,
    /// `xsd:dateTime`
    DateTime,
    /// `xsd:date`
    Date,
    /// `xsd:time`
    Time,
    /// `xsd:duration`
    Duration,
    /// `xsd:gYearMonth`
    GYearMonth,
    /// `xsd:gYear`
    GYear,
    /// `xsd:base64Binary`
    Base64Binary,
    /// `xsd:hexBinary`
    HexBinary,
    /// `xsd:anyURI`
    AnyUri,
    /// `xsd:QName`
    QName,
    /// `xsd:anyType` — the universal type; frameworks fall back to it for
    /// unbindable structures.
    AnyType,
    /// `xsd:anySimpleType`
    AnySimpleType,
}

impl BuiltIn {
    /// Every built-in, in a stable order.
    pub const ALL: [BuiltIn; 26] = [
        BuiltIn::String,
        BuiltIn::Boolean,
        BuiltIn::Byte,
        BuiltIn::Short,
        BuiltIn::Int,
        BuiltIn::Long,
        BuiltIn::Integer,
        BuiltIn::UnsignedByte,
        BuiltIn::UnsignedShort,
        BuiltIn::UnsignedInt,
        BuiltIn::UnsignedLong,
        BuiltIn::Float,
        BuiltIn::Double,
        BuiltIn::Decimal,
        BuiltIn::DateTime,
        BuiltIn::Date,
        BuiltIn::Time,
        BuiltIn::Duration,
        BuiltIn::GYearMonth,
        BuiltIn::GYear,
        BuiltIn::Base64Binary,
        BuiltIn::HexBinary,
        BuiltIn::AnyUri,
        BuiltIn::QName,
        BuiltIn::AnyType,
        BuiltIn::AnySimpleType,
    ];

    /// The local name within the XSD namespace.
    pub fn xsd_name(self) -> &'static str {
        match self {
            BuiltIn::String => "string",
            BuiltIn::Boolean => "boolean",
            BuiltIn::Byte => "byte",
            BuiltIn::Short => "short",
            BuiltIn::Int => "int",
            BuiltIn::Long => "long",
            BuiltIn::Integer => "integer",
            BuiltIn::UnsignedByte => "unsignedByte",
            BuiltIn::UnsignedShort => "unsignedShort",
            BuiltIn::UnsignedInt => "unsignedInt",
            BuiltIn::UnsignedLong => "unsignedLong",
            BuiltIn::Float => "float",
            BuiltIn::Double => "double",
            BuiltIn::Decimal => "decimal",
            BuiltIn::DateTime => "dateTime",
            BuiltIn::Date => "date",
            BuiltIn::Time => "time",
            BuiltIn::Duration => "duration",
            BuiltIn::GYearMonth => "gYearMonth",
            BuiltIn::GYear => "gYear",
            BuiltIn::Base64Binary => "base64Binary",
            BuiltIn::HexBinary => "hexBinary",
            BuiltIn::AnyUri => "anyURI",
            BuiltIn::QName => "QName",
            BuiltIn::AnyType => "anyType",
            BuiltIn::AnySimpleType => "anySimpleType",
        }
    }

    /// Returns `true` for numeric types (used by truncation heuristics in
    /// the WS-I business-logic advisories).
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            BuiltIn::Byte
                | BuiltIn::Short
                | BuiltIn::Int
                | BuiltIn::Long
                | BuiltIn::Integer
                | BuiltIn::UnsignedByte
                | BuiltIn::UnsignedShort
                | BuiltIn::UnsignedInt
                | BuiltIn::UnsignedLong
                | BuiltIn::Float
                | BuiltIn::Double
                | BuiltIn::Decimal
        )
    }
}

impl fmt::Display for BuiltIn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xsd:{}", self.xsd_name())
    }
}

/// Error for [`BuiltIn::from_str`] on names outside the built-in set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBuiltInError(pub(crate) String);

impl fmt::Display for UnknownBuiltInError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown XSD built-in type `{}`", self.0)
    }
}

impl std::error::Error for UnknownBuiltInError {}

impl FromStr for BuiltIn {
    type Err = UnknownBuiltInError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BuiltIn::ALL
            .iter()
            .copied()
            .find(|b| b.xsd_name() == s)
            .ok_or_else(|| UnknownBuiltInError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for b in BuiltIn::ALL {
            assert_eq!(b.xsd_name().parse::<BuiltIn>().unwrap(), b);
        }
    }

    #[test]
    fn unknown_name_errors() {
        let err = "notatype".parse::<BuiltIn>().unwrap_err();
        assert!(err.to_string().contains("notatype"));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(BuiltIn::Long.to_string(), "xsd:long");
    }

    #[test]
    fn numeric_classification() {
        assert!(BuiltIn::Decimal.is_numeric());
        assert!(!BuiltIn::String.is_numeric());
        assert!(!BuiltIn::DateTime.is_numeric());
    }

    #[test]
    fn all_has_no_duplicates() {
        let mut names: Vec<_> = BuiltIn::ALL.iter().map(|b| b.xsd_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BuiltIn::ALL.len());
    }
}
