//! The XML Schema object model used by the WSDL `types` section.

use crate::builtin::BuiltIn;

/// A reference to a type: either a built-in or a named (possibly
/// cross-namespace) type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeRef {
    /// A built-in XSD simple type.
    BuiltIn(BuiltIn),
    /// A named type: `(namespace-uri, local-name)`.
    Named {
        /// Namespace URI of the referenced type.
        ns_uri: String,
        /// Local name of the referenced type.
        local: String,
    },
}

impl TypeRef {
    /// Convenience constructor for a named reference.
    pub fn named(ns_uri: impl Into<String>, local: impl Into<String>) -> TypeRef {
        TypeRef::Named {
            ns_uri: ns_uri.into(),
            local: local.into(),
        }
    }

    /// Returns the built-in, when this reference is one.
    pub fn as_built_in(&self) -> Option<BuiltIn> {
        match self {
            TypeRef::BuiltIn(b) => Some(*b),
            TypeRef::Named { .. } => None,
        }
    }

    /// Local name of the referenced type (built-ins use their XSD name).
    pub fn local_name(&self) -> &str {
        match self {
            TypeRef::BuiltIn(b) => b.xsd_name(),
            TypeRef::Named { local, .. } => local,
        }
    }
}

/// Upper bound of an occurrence constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaxOccurs {
    /// A finite bound.
    Bounded(u32),
    /// `maxOccurs="unbounded"`.
    Unbounded,
}

impl Default for MaxOccurs {
    fn default() -> Self {
        MaxOccurs::Bounded(1)
    }
}

/// An element declaration (top-level or inside a particle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Element name.
    pub name: String,
    /// Declared type; `None` means the element carries an inline
    /// anonymous complex type (see [`ElementDecl::inline`]) or is
    /// typeless (`anyType` semantics).
    pub type_ref: Option<TypeRef>,
    /// Inline anonymous complex type, if any.
    pub inline: Option<Box<ComplexType>>,
    /// `minOccurs` (default 1).
    pub min_occurs: u32,
    /// `maxOccurs` (default 1).
    pub max_occurs: MaxOccurs,
    /// `nillable="true"`.
    pub nillable: bool,
}

impl ElementDecl {
    /// A `minOccurs=1 maxOccurs=1` element of the given type.
    pub fn typed(name: impl Into<String>, type_ref: TypeRef) -> ElementDecl {
        ElementDecl {
            name: name.into(),
            type_ref: Some(type_ref),
            inline: None,
            min_occurs: 1,
            max_occurs: MaxOccurs::default(),
            nillable: false,
        }
    }

    /// An element with an inline anonymous complex type.
    pub fn with_inline(name: impl Into<String>, inline: ComplexType) -> ElementDecl {
        ElementDecl {
            name: name.into(),
            type_ref: None,
            inline: Some(Box::new(inline)),
            min_occurs: 1,
            max_occurs: MaxOccurs::default(),
            nillable: false,
        }
    }

    /// Builder: sets `minOccurs`.
    #[must_use]
    pub fn min(mut self, min_occurs: u32) -> ElementDecl {
        self.min_occurs = min_occurs;
        self
    }

    /// Builder: sets `maxOccurs`.
    #[must_use]
    pub fn max(mut self, max_occurs: MaxOccurs) -> ElementDecl {
        self.max_occurs = max_occurs;
        self
    }

    /// Builder: marks the element nillable.
    #[must_use]
    pub fn nillable(mut self) -> ElementDecl {
        self.nillable = true;
        self
    }
}

/// How `xsd:any` content is validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessContents {
    /// `processContents="strict"`.
    Strict,
    /// `processContents="lax"`.
    #[default]
    Lax,
    /// `processContents="skip"`.
    Skip,
}

impl ProcessContents {
    /// The attribute value for serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            ProcessContents::Strict => "strict",
            ProcessContents::Lax => "lax",
            ProcessContents::Skip => "skip",
        }
    }
}

/// A content-model particle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Particle {
    /// A local element declaration.
    Element(ElementDecl),
    /// A reference to a global element declaration (`<xsd:element ref=…>`).
    ///
    /// The infamous `.NET` DataSet binding emits `ref="s:schema"` — a
    /// reference *into the XSD namespace itself* — which several Java
    /// consumers cannot resolve. Modeling refs explicitly lets that
    /// document shape exist honestly.
    ElementRef {
        /// Namespace URI of the referenced global element.
        ns_uri: String,
        /// Local name of the referenced global element.
        local: String,
    },
    /// An `xsd:any` wildcard.
    Any {
        /// Validation mode.
        process_contents: ProcessContents,
        /// `minOccurs`.
        min_occurs: u32,
        /// `maxOccurs`.
        max_occurs: MaxOccurs,
    },
    /// A nested model group.
    Group(Box<Group>),
}

/// The compositor of a model group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compositor {
    /// `xsd:sequence`
    #[default]
    Sequence,
    /// `xsd:choice`
    Choice,
    /// `xsd:all`
    All,
}

impl Compositor {
    /// The XSD element local name.
    pub fn xsd_name(self) -> &'static str {
        match self {
            Compositor::Sequence => "sequence",
            Compositor::Choice => "choice",
            Compositor::All => "all",
        }
    }
}

/// A model group: compositor plus particles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Group {
    /// The compositor.
    pub compositor: Compositor,
    /// The contained particles, in order.
    pub particles: Vec<Particle>,
}

impl Group {
    /// An empty sequence.
    pub fn sequence() -> Group {
        Group::default()
    }

    /// Builder: appends a particle.
    #[must_use]
    pub fn with(mut self, particle: Particle) -> Group {
        self.particles.push(particle);
        self
    }
}

/// An attribute declaration on a complex type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttributeDecl {
    /// A local attribute with a name and simple type.
    Local {
        /// Attribute name.
        name: String,
        /// Attribute simple type.
        type_ref: TypeRef,
        /// `use="required"`.
        required: bool,
    },
    /// A reference to a global attribute (`<xsd:attribute ref=…>`), e.g.
    /// the `.NET`-emitted `ref="s:lang"` that Java consumers reject.
    Ref {
        /// Namespace URI of the referenced global attribute.
        ns_uri: String,
        /// Local name of the referenced global attribute.
        local: String,
    },
}

/// A (possibly named) complex type definition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ComplexType {
    /// Type name; `None` for anonymous inline types.
    pub name: Option<String>,
    /// The content model.
    pub content: Group,
    /// Attribute declarations.
    pub attributes: Vec<AttributeDecl>,
    /// `abstract="true"`.
    pub is_abstract: bool,
    /// Base type for `complexContent/extension`, if any.
    pub extends: Option<TypeRef>,
}

impl ComplexType {
    /// A named complex type with an empty sequence.
    pub fn named(name: impl Into<String>) -> ComplexType {
        ComplexType {
            name: Some(name.into()),
            ..ComplexType::default()
        }
    }

    /// An anonymous complex type with an empty sequence.
    pub fn anonymous() -> ComplexType {
        ComplexType::default()
    }

    /// Builder: appends a particle to the content group.
    #[must_use]
    pub fn with_particle(mut self, particle: Particle) -> ComplexType {
        self.content.particles.push(particle);
        self
    }

    /// Builder: appends an attribute declaration.
    #[must_use]
    pub fn with_attribute(mut self, attr: AttributeDecl) -> ComplexType {
        self.attributes.push(attr);
        self
    }

    /// Builder: sets the extension base.
    #[must_use]
    pub fn extending(mut self, base: TypeRef) -> ComplexType {
        self.extends = Some(base);
        self
    }
}

/// A named simple type (restriction of a built-in, optionally an
/// enumeration — the shape used for C# `enum` bindings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleType {
    /// Type name.
    pub name: String,
    /// Restriction base.
    pub base: BuiltIn,
    /// Enumeration facet values (empty = plain restriction).
    pub enumeration: Vec<String>,
}

/// An `xsd:import`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// The imported namespace.
    pub namespace: String,
    /// Optional `schemaLocation`.
    pub schema_location: Option<String>,
}

/// Element/attribute form defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Form {
    /// `unqualified` (XSD default).
    #[default]
    Unqualified,
    /// `qualified`.
    Qualified,
}

impl Form {
    /// The attribute value for serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            Form::Unqualified => "unqualified",
            Form::Qualified => "qualified",
        }
    }
}

/// A complete schema document (one `<xsd:schema>` element).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// `targetNamespace`.
    pub target_ns: String,
    /// `elementFormDefault`.
    pub element_form_default: Form,
    /// Imports.
    pub imports: Vec<Import>,
    /// Global element declarations.
    pub elements: Vec<ElementDecl>,
    /// Named complex types.
    pub complex_types: Vec<ComplexType>,
    /// Named simple types.
    pub simple_types: Vec<SimpleType>,
}

impl Schema {
    /// An empty schema for the given target namespace.
    pub fn new(target_ns: impl Into<String>) -> Schema {
        Schema {
            target_ns: target_ns.into(),
            element_form_default: Form::Qualified,
            imports: Vec::new(),
            elements: Vec::new(),
            complex_types: Vec::new(),
            simple_types: Vec::new(),
        }
    }

    /// Looks up a global element by name.
    pub fn element(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// Looks up a named complex type.
    pub fn complex_type(&self, name: &str) -> Option<&ComplexType> {
        self.complex_types.iter().find(|t| t.name.as_deref() == Some(name))
    }

    /// Looks up a named simple type.
    pub fn simple_type(&self, name: &str) -> Option<&SimpleType> {
        self.simple_types.iter().find(|t| t.name == name)
    }

    /// Counts every element declaration in the schema, including nested
    /// inline ones (used by campaign statistics).
    pub fn element_decl_count(&self) -> usize {
        fn count_group(g: &Group) -> usize {
            g.particles
                .iter()
                .map(|p| match p {
                    Particle::Element(e) => {
                        1 + e.inline.as_ref().map_or(0, |ct| count_group(&ct.content))
                    }
                    Particle::Group(inner) => count_group(inner),
                    _ => 0,
                })
                .sum()
        }
        self.elements
            .iter()
            .map(|e| 1 + e.inline.as_ref().map_or(0, |ct| count_group(&ct.content)))
            .sum::<usize>()
            + self
                .complex_types
                .iter()
                .map(|ct| count_group(&ct.content))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_builders_compose() {
        let e = ElementDecl::typed("x", TypeRef::BuiltIn(BuiltIn::Int))
            .min(0)
            .max(MaxOccurs::Unbounded)
            .nillable();
        assert_eq!(e.min_occurs, 0);
        assert_eq!(e.max_occurs, MaxOccurs::Unbounded);
        assert!(e.nillable);
    }

    #[test]
    fn schema_lookup() {
        let mut s = Schema::new("urn:t");
        s.elements.push(ElementDecl::typed("a", TypeRef::BuiltIn(BuiltIn::String)));
        s.complex_types.push(ComplexType::named("T"));
        s.simple_types.push(SimpleType {
            name: "E".into(),
            base: BuiltIn::String,
            enumeration: vec!["A".into()],
        });
        assert!(s.element("a").is_some());
        assert!(s.element("b").is_none());
        assert!(s.complex_type("T").is_some());
        assert!(s.simple_type("E").is_some());
    }

    #[test]
    fn element_decl_count_includes_inline() {
        let inline = ComplexType::anonymous().with_particle(Particle::Element(
            ElementDecl::typed("inner", TypeRef::BuiltIn(BuiltIn::Int)),
        ));
        let mut s = Schema::new("urn:t");
        s.elements.push(ElementDecl::with_inline("outer", inline));
        s.complex_types.push(
            ComplexType::named("T").with_particle(Particle::Element(ElementDecl::typed(
                "f",
                TypeRef::BuiltIn(BuiltIn::String),
            ))),
        );
        assert_eq!(s.element_decl_count(), 3);
    }

    #[test]
    fn type_ref_accessors() {
        let b = TypeRef::BuiltIn(BuiltIn::Double);
        assert_eq!(b.as_built_in(), Some(BuiltIn::Double));
        assert_eq!(b.local_name(), "double");
        let n = TypeRef::named("urn:x", "Foo");
        assert_eq!(n.as_built_in(), None);
        assert_eq!(n.local_name(), "Foo");
    }
}
