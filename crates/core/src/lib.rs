//! # wsinterop-core
//!
//! The interoperability assessment campaign — the paper's primary
//! contribution, reproduced end to end:
//!
//! 1. **Preparation** — select servers/clients, generate one echo
//!    service per platform class ([`Campaign::paper`]).
//! 2. **Testing** — Service Description Generation (deploy + WS-I
//!    check), Client Artifact Generation, Client Artifact
//!    Compilation / instantiation, with interleaved classification.
//!
//! Reports regenerate the paper's artifacts: [`report::Fig4`],
//! [`report::TableIII`] and [`report::Totals`]; the
//! [`expected`] module freezes the published numbers the full run must
//! reproduce. The [`exchange`] module implements the paper's declared
//! future work — the Communication and Execution steps — as an
//! extension. The [`faults`] module layers a deterministic, seeded
//! fault-injection plan over the campaign (the chaos campaign, E12)
//! and accounts for injected vs detected vs masked faults. The
//! [`doccache`] module is the parse-once pipeline: each published
//! description is parsed and analyzed exactly once, shared by `Arc`
//! across all consumers behind a content-addressed memo — with cached
//! and uncached runs provably bit-identical. The [`journal`] module is
//! the crash-safety layer: a write-ahead log of completed cells with a
//! corruption-tolerant reader, so an interrupted campaign resumes
//! bit-identically; the campaign supervises execution with a per-cell
//! watchdog and deterministic per-client circuit breakers
//! ([`faults::BreakerConfig`]). The [`wire`] module is the real-socket
//! transport: a hardened loopback HTTP/1.1 SOAP endpoint, a resilient
//! client, and a fault proxy that lets the chaos campaign damage real
//! wire bytes — with the loopback exchange survey provably
//! bit-identical to the in-process one (E15).
//!
//! ## Example
//!
//! ```
//! use wsinterop_core::{Campaign, report::Totals};
//! // A strided smoke run (the full campaign is `Campaign::paper()`).
//! let results = Campaign::sampled(500).run();
//! let totals = Totals::from_results(&results);
//! assert_eq!(totals.tests_executed, totals.services_deployed * 11);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod complexity;
pub mod doccache;
pub mod exchange;
pub mod expected;
pub mod export;
pub mod faults;
pub mod fuzz;
pub mod journal;
pub mod obs;
pub mod registry;
pub mod report;
pub mod results;
pub mod shard;
pub mod sync;
pub mod wire;

pub use campaign::Campaign;
pub use doccache::{DocCache, ParsedService, PipelineStats};
pub use faults::{BreakerConfig, FaultKind, FaultPlan, FaultReport, ResilienceConfig};
pub use fuzz::{FuzzConfig, FuzzOutcome, FuzzTransport};
pub use journal::{JournalCell, JournalError, JournalWriter};
pub use obs::{Clock, MetricsRegistry, MetricsSnapshot, Obs, TraceEvent, TracePhase, TraceSink};
pub use shard::{ShardSpec, Supervisor, SupervisorConfig};
pub use results::{CampaignResults, InstantiationKind, ServiceRecord, TestRecord};
