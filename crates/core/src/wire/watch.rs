//! `wsitool watch` internals (DESIGN.md §16): scrape the admin
//! plane's `/metrics` text, parse it into scalar samples, diff
//! consecutive scrapes into a deterministic rate table, and journal a
//! checksummed time-series ring for post-hoc rate analysis.
//!
//! Everything here is a pure function of its inputs: the diff table
//! and the snapshot ring depend only on the scraped sample maps and
//! the caller-supplied timestamps, never on a live clock — rates are
//! fixed-point integer math over the measured interval, so two
//! renders of the same pair of scrapes are byte-identical.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use super::http::{self, HttpLimits};

/// One `GET` against the admin plane over a fresh connection.
/// Returns `(status, body)` — a `503 degraded` health check is a
/// *answer*, not an error, so non-200 statuses come back as data.
pub fn scrape_text(
    addr: SocketAddr,
    target: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    let mut stream = stream;
    http::write_request(&mut stream, "GET", target, "127.0.0.1", None, b"", true)
        .map_err(|e| format!("write {target}: {e:?}"))?;
    // A scrape body is the full exposition text — size it generously
    // but keep the framing caps (a runaway body still errors).
    let limits = HttpLimits { max_body: 16 << 20, ..HttpLimits::default() };
    let response =
        http::read_response(&stream, &limits).map_err(|e| format!("read {target}: {e:?}"))?;
    let body = String::from_utf8(response.body)
        .map_err(|_| format!("{target}: response body is not UTF-8"))?;
    Ok((response.status, body))
}

/// Parses Prometheus text exposition into `name → value` samples.
///
/// Comment lines (`# HELP`, `# TYPE`, snapshot framing) and blanks
/// are skipped; an exemplar suffix (`… # {request_id="…"} 1600`) is
/// stripped before the value parse. The sample name keeps its label
/// set verbatim (`wire_server_responses_total{code="503"}`), so the
/// map's `BTreeMap` order is the registry's render order. Returns an
/// error naming the first malformed line — a scrape is either fully
/// parseable or rejected, never half-read.
pub fn parse_prometheus(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `value # {exemplar} exemplar_value` — everything from the
        // exemplar marker on is metadata, not the sample.
        let stripped = match line.find(" # {") {
            Some(at) => &line[..at],
            None => line,
        };
        let Some((name, value)) = stripped.rsplit_once(' ') else {
            return Err(format!("unparseable sample line: {line:?}"));
        };
        let value: u64 = value
            .parse()
            .map_err(|_| format!("non-integer sample value in: {line:?}"))?;
        samples.insert(name.trim_end().to_string(), value);
    }
    Ok(samples)
}

/// How a sample moves between scrapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Monotonic by contract — a negative delta means a counter
    /// reset (flagged, never silently clamped).
    Counter,
    /// Free to move both ways.
    Gauge,
}

/// Classifies a sample name by the registry's naming conventions:
/// `_total` / `_count` / `_sum` suffixes and `_bucket{` series are
/// counters, everything else (gauges, `_max`/`_p50`/`_p95`/`_p99`
/// quantile families) is a gauge.
pub fn sample_kind(name: &str) -> SampleKind {
    let base = name.split('{').next().unwrap_or(name);
    if base.ends_with("_total")
        || base.ends_with("_count")
        || base.ends_with("_sum")
        || base.ends_with("_bucket")
    {
        SampleKind::Counter
    } else {
        SampleKind::Gauge
    }
}

/// One row of the snapshot-diff table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapeDiff {
    /// Full sample name, labels included.
    pub name: String,
    /// Counter or gauge, per [`sample_kind`].
    pub kind: SampleKind,
    /// Value in the earlier scrape (0 when the sample is new).
    pub prev: u64,
    /// Value in the later scrape (0 when the sample vanished).
    pub next: u64,
    /// Signed movement `next - prev`.
    pub delta: i64,
    /// Counter rate in milli-units per second
    /// (`delta × 1_000_000 / interval_ms`), fixed-point so rendering
    /// is deterministic; 0 for gauges and non-positive deltas.
    pub rate_milli_per_s: u64,
}

/// Diffs two scrapes over the union of their sample names (sorted —
/// both maps are `BTreeMap`s), computing fixed-point counter rates
/// over `interval_ms`. Pure in its inputs.
pub fn diff_samples(
    prev: &BTreeMap<String, u64>,
    next: &BTreeMap<String, u64>,
    interval_ms: u64,
) -> Vec<ScrapeDiff> {
    let mut names: Vec<&String> = prev.keys().chain(next.keys()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let p = prev.get(name).copied().unwrap_or(0);
            let n = next.get(name).copied().unwrap_or(0);
            let kind = sample_kind(name);
            let delta = n as i64 - p as i64;
            let rate_milli_per_s = match (kind, delta) {
                (SampleKind::Counter, d) if d > 0 && interval_ms > 0 => {
                    (d as u64).saturating_mul(1_000_000) / interval_ms
                }
                _ => 0,
            };
            ScrapeDiff { name: name.clone(), kind, prev: p, next: n, delta, rate_milli_per_s }
        })
        .collect()
}

/// Renders the diff rows as a fixed-width table. With `only_changed`,
/// unmoved rows are elided and summarized in the trailer line. The
/// output is a pure function of the rows.
pub fn render_diff_table(rows: &[ScrapeDiff], only_changed: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<56} {:>5} {:>12} {:>12} {:>10} {:>12}\n",
        "METRIC", "KIND", "PREV", "NEXT", "DELTA", "RATE/S"
    ));
    let mut unchanged = 0usize;
    let mut resets = 0usize;
    for row in rows {
        if row.delta == 0 && only_changed {
            unchanged += 1;
            continue;
        }
        if row.kind == SampleKind::Counter && row.delta < 0 {
            resets += 1;
        }
        let kind = match row.kind {
            SampleKind::Counter => "ctr",
            SampleKind::Gauge => "gauge",
        };
        let rate = format!(
            "{}.{:03}",
            row.rate_milli_per_s / 1000,
            row.rate_milli_per_s % 1000
        );
        out.push_str(&format!(
            "{:<56} {:>5} {:>12} {:>12} {:>+10} {:>12}\n",
            row.name, kind, row.prev, row.next, row.delta, rate
        ));
    }
    out.push_str(&format!(
        "-- {} samples, {} unchanged, {} counter resets\n",
        rows.len(),
        unchanged,
        resets
    ));
    out
}

/// FNV-1a over bytes — the snapshot ring's frame checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One journaled scrape: the raw sample map plus the caller's
/// timestamp (the watch loop stamps wall-clock; tests stamp virtual
/// time so frames are reproducible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFrame {
    /// Frame ordinal within the ring's lifetime (survives eviction —
    /// a gap in sequence numbers on disk means frames were evicted).
    pub seq: u64,
    /// Caller-supplied capture timestamp, milliseconds.
    pub at_ms: u64,
    /// The parsed scrape.
    pub samples: BTreeMap<String, u64>,
}

impl SnapshotFrame {
    /// The canonical sample block the checksum covers: one
    /// `name value` line per sample in map order.
    fn sample_block(&self) -> String {
        let mut block = String::new();
        for (name, value) in &self.samples {
            block.push_str(name);
            block.push(' ');
            block.push_str(&value.to_string());
            block.push('\n');
        }
        block
    }

    /// Serializes the frame: a framing comment carrying seq,
    /// timestamp and the FNV-1a checksum of the sample block, then
    /// the block itself (valid Prometheus text — [`parse_prometheus`]
    /// reads it back), then an end marker.
    pub fn render(&self) -> String {
        let block = self.sample_block();
        format!(
            "# snapshot seq={} at_ms={} checksum={:016x}\n{block}# end snapshot {}\n",
            self.seq,
            self.at_ms,
            fnv64(block.as_bytes()),
            self.seq
        )
    }
}

/// A capacity-bounded ring of [`SnapshotFrame`]s — the `--snapshots
/// FILE` journal. Eviction is oldest-first; `seq` keeps counting so
/// the on-disk record shows what was dropped.
#[derive(Debug)]
pub struct SnapshotRing {
    capacity: usize,
    next_seq: u64,
    /// Frames evicted over the ring's lifetime.
    pub evicted: u64,
    /// Live frames, oldest first.
    pub frames: VecDeque<SnapshotFrame>,
}

impl SnapshotRing {
    /// An empty ring holding at most `capacity` frames.
    pub fn new(capacity: usize) -> SnapshotRing {
        SnapshotRing {
            capacity: capacity.max(1),
            next_seq: 0,
            evicted: 0,
            frames: VecDeque::new(),
        }
    }

    /// Appends one scrape, evicting the oldest frame when full.
    pub fn push(&mut self, at_ms: u64, samples: BTreeMap<String, u64>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.frames.len() >= self.capacity {
            self.frames.pop_front();
            self.evicted += 1;
        }
        self.frames.push_back(SnapshotFrame { seq, at_ms, samples });
        seq
    }

    /// Serializes every live frame in order — the `--snapshots`
    /// artifact body.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for frame in &self.frames {
            out.push_str(&frame.render());
        }
        out
    }

    /// Writes the rendered ring to `path` (whole-file rewrite: the
    /// ring is the source of truth, the file is its snapshot).
    pub fn persist(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.render().as_bytes())?;
        file.flush()
    }

    /// Parses a rendered ring back, verifying every frame checksum.
    /// Returns an error naming the first bad frame — a corrupted
    /// journal is rejected, not partially trusted.
    pub fn parse(text: &str) -> Result<Vec<SnapshotFrame>, String> {
        let mut frames = Vec::new();
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            let header = line
                .strip_prefix("# snapshot ")
                .ok_or_else(|| format!("expected snapshot header, got: {line:?}"))?;
            let mut seq = None;
            let mut at_ms = None;
            let mut checksum = None;
            for part in header.split_whitespace() {
                if let Some(v) = part.strip_prefix("seq=") {
                    seq = v.parse::<u64>().ok();
                } else if let Some(v) = part.strip_prefix("at_ms=") {
                    at_ms = v.parse::<u64>().ok();
                } else if let Some(v) = part.strip_prefix("checksum=") {
                    checksum = u64::from_str_radix(v, 16).ok();
                }
            }
            let (Some(seq), Some(at_ms), Some(checksum)) = (seq, at_ms, checksum) else {
                return Err(format!("malformed snapshot header: {line:?}"));
            };
            let end_marker = format!("# end snapshot {seq}");
            let mut block = String::new();
            loop {
                let Some(line) = lines.next() else {
                    return Err(format!("snapshot {seq} is truncated (no end marker)"));
                };
                if line == end_marker {
                    break;
                }
                block.push_str(line);
                block.push('\n');
            }
            let actual = fnv64(block.as_bytes());
            if actual != checksum {
                return Err(format!(
                    "snapshot {seq} checksum mismatch: header {checksum:016x}, body {actual:016x}"
                ));
            }
            let samples = parse_prometheus(&block)?;
            frames.push(SnapshotFrame { seq, at_ms, samples });
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::MetricsRegistry;

    fn scrape(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn parses_a_real_registry_render_exemplars_included() {
        let registry = MetricsRegistry::new();
        registry.counter_handle("wire_server_accepted_total").inc();
        registry.gauge_handle("wire_server_queued").set(3);
        let hist = registry.histogram_handle("wire_server_request_ns");
        hist.observe_ns_with_exemplar(1_500, 0xBEEF);
        let text = registry.render_prometheus();
        let samples = parse_prometheus(&text).expect("full render parses");
        assert_eq!(samples["wire_server_accepted_total"], 1);
        assert_eq!(samples["wire_server_queued"], 3);
        assert_eq!(samples["wire_server_request_ns_count"], 1);
        // The exemplar-annotated bucket line parses to its count.
        assert!(samples.keys().any(|k| k.starts_with("wire_server_request_ns_bucket{")));
    }

    #[test]
    fn rejects_malformed_sample_lines() {
        assert!(parse_prometheus("just_a_name\n").is_err());
        assert!(parse_prometheus("name notanumber\n").is_err());
        assert!(parse_prometheus("# any comment\n\n").expect("comments ok").is_empty());
    }

    #[test]
    fn kind_classification_follows_naming_conventions() {
        assert_eq!(sample_kind("x_total"), SampleKind::Counter);
        assert_eq!(sample_kind("x_ns_count"), SampleKind::Counter);
        assert_eq!(sample_kind("x_ns_sum"), SampleKind::Counter);
        assert_eq!(sample_kind("x_ns_bucket{le=\"+Inf\"}"), SampleKind::Counter);
        assert_eq!(sample_kind("wire_server_queued"), SampleKind::Gauge);
        assert_eq!(sample_kind("x_ns_p99"), SampleKind::Gauge);
    }

    #[test]
    fn diff_and_table_are_deterministic() {
        let prev = scrape(&[("a_total", 10), ("queued", 5)]);
        let next = scrape(&[("a_total", 30), ("queued", 2), ("b_total", 1)]);
        let rows = diff_samples(&prev, &next, 2_000);
        assert_eq!(rows.len(), 3);
        let a = rows.iter().find(|r| r.name == "a_total").unwrap();
        assert_eq!(a.delta, 20);
        // 20 over 2s = 10/s = 10_000 milli-units.
        assert_eq!(a.rate_milli_per_s, 10_000);
        let q = rows.iter().find(|r| r.name == "queued").unwrap();
        assert_eq!(q.delta, -3);
        assert_eq!(q.rate_milli_per_s, 0, "gauges have no rate");
        let table_a = render_diff_table(&rows, false);
        let table_b = render_diff_table(&diff_samples(&prev, &next, 2_000), false);
        assert_eq!(table_a, table_b);
        assert!(table_a.contains("10.000"));
    }

    #[test]
    fn snapshot_ring_round_trips_and_rejects_corruption() {
        let mut ring = SnapshotRing::new(2);
        ring.push(100, scrape(&[("a_total", 1)]));
        ring.push(200, scrape(&[("a_total", 2)]));
        ring.push(300, scrape(&[("a_total", 5), ("queued", 1)]));
        assert_eq!(ring.evicted, 1);
        assert_eq!(ring.frames.len(), 2);
        let text = ring.render();
        let frames = SnapshotRing::parse(&text).expect("round trip");
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].seq, 1, "oldest surviving frame");
        assert_eq!(frames[1].at_ms, 300);
        assert_eq!(frames[1].samples["a_total"], 5);
        // A flipped sample value no longer matches the checksum.
        let corrupted = text.replace("a_total 5", "a_total 6");
        assert!(SnapshotRing::parse(&corrupted).is_err());
        // Truncation (missing end marker) is rejected too.
        let truncated = text.rsplit_once("# end").map(|(head, _)| head).unwrap();
        assert!(SnapshotRing::parse(truncated).is_err());
    }

    #[test]
    fn ring_frames_diff_like_live_scrapes() {
        let mut ring = SnapshotRing::new(8);
        ring.push(0, scrape(&[("ops_total", 0)]));
        ring.push(1_000, scrape(&[("ops_total", 50)]));
        let frames: Vec<SnapshotFrame> = ring.frames.iter().cloned().collect();
        let rows = diff_samples(
            &frames[0].samples,
            &frames[1].samples,
            frames[1].at_ms - frames[0].at_ms,
        );
        assert_eq!(rows[0].rate_milli_per_s, 50_000);
    }
}
