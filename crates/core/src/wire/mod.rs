//! The real-socket SOAP transport (DESIGN.md §10).
//!
//! Everything below `core::exchange` used to short-circuit both
//! endpoints through in-process function calls; this module puts a
//! real kernel socket between them:
//!
//! * [`server`] — a hardened, threaded HTTP/1.1 loopback endpoint
//!   hosting every deployed echo service (bounded worker pool,
//!   accept-queue admission control with `503` shedding, slow-loris
//!   deadlines, `413` size caps, keep-alive, graceful drain).
//! * [`client`] — a resilient HTTP client (connect/read deadlines,
//!   seeded deterministic retry with exponential backoff + jitter,
//!   every socket failure normalized into the
//!   [`ExchangeOutcome`]/`ErrorClass` taxonomy).
//! * [`proxy`] — the interposed fault proxy that damages real wire
//!   bytes according to the campaign's [`FaultPlan`]
//!   (delay-past-deadline, truncate-at-byte-N, RST mid-body, garbage
//!   status line, plus the request-side wire faults).
//! * [`survey_tcp`] — the loopback twin of
//!   [`crate::exchange::survey_sites`]; experiment E15 asserts the two
//!   are bit-identical site by site.
//!
//! Std-only by construction: the transport is `std::net` + threads,
//! no external dependencies (the build is offline).
//!
//! [`FaultPlan`]: crate::faults::FaultPlan

pub mod client;
mod conn;
pub mod http;
pub mod loadgen;
pub mod proxy;
pub mod server;
pub mod watch;

use std::net::SocketAddr;

use wsinterop_wsdl::de::from_xml_str;
use wsinterop_wsdl::soap;
use wsinterop_xml::writer::{write_document, WriteOptions};

use crate::exchange::{
    classify_response, first_message_violation, first_survey_operation, ExchangeOutcome,
    SurveySite, SURVEY_PROBE,
};

pub use client::{WireClient, WireClientConfig, WireError};
pub use http::HttpLimits;
pub use loadgen::{CorpusEntry, LoadgenConfig, LoadgenCounts, LoadgenReport, OpProfile};
pub use proxy::FaultProxy;
pub use server::{
    host_survey_services, HostedService, WireServer, WireServerConfig, WireStats, SHUTDOWN_PATH,
};
pub use watch::{
    diff_samples, parse_prometheus, render_diff_table, scrape_text, SampleKind, ScrapeDiff,
    SnapshotFrame, SnapshotRing,
};

/// Runs one Communication + Execution cycle **over the socket**: build
/// the request from the client's own parse of `wsdl_xml`, POST it to
/// `addr`/`path`, classify whatever comes back.
///
/// Step order and classification mirror
/// [`crate::exchange::exchange`] exactly — both end in
/// [`classify_response`] over the same envelope bytes — which is what
/// makes the loopback survey bit-identical to the in-process one
/// (E15). Socket-level failures surface as
/// [`ExchangeOutcome::TransportError`] with the client's stable
/// reasons.
pub fn exchange_over_http(
    wire: &WireClient,
    addr: SocketAddr,
    path: &str,
    wsdl_xml: &str,
    operation: &str,
    value: &str,
) -> ExchangeOutcome {
    // Client side: independent parse of the published description.
    let client_defs = match from_xml_str(wsdl_xml) {
        Ok(defs) => defs,
        Err(e) => {
            return ExchangeOutcome::ClientCannotInvoke {
                reason: e.to_string(),
            }
        }
    };
    let request = match soap::request(&client_defs, operation, value) {
        Ok(doc) => write_document(&doc, &WriteOptions::compact()),
        Err(e) => {
            return ExchangeOutcome::ClientCannotInvoke {
                reason: e.to_string(),
            }
        }
    };
    // Wire conformance on the outgoing request — any in-transit damage
    // (the fault proxy) happens below this check, exactly like the
    // in-process path.
    if let Some(violation) = first_message_violation(&request) {
        return ExchangeOutcome::NonConformantMessage {
            side: "request",
            detail: violation,
        };
    }

    let response = match wire.post(addr, path, operation, request.as_bytes(), path) {
        Ok(response) => response,
        Err(e) => {
            return ExchangeOutcome::TransportError { reason: e.reason() };
        }
    };
    let Some(body) = response.body_str() else {
        return ExchangeOutcome::TransportError {
            reason: "response body is not UTF-8".to_string(),
        };
    };
    classify_response(&request, body, value)
}

/// The loopback twin of [`crate::exchange::survey_sites`]: enumerate
/// the same sites, but fetch each description with `GET ?wsdl` and run
/// each exchange over `addr` — normally a [`WireServer`] built from
/// [`host_survey_services`] with the same stride. A `404` marks a
/// service the endpoint (like the in-process survey) skipped as
/// undeployed.
pub fn survey_tcp(stride: usize, addr: SocketAddr, wire: &WireClient) -> Vec<SurveySite> {
    use wsinterop_frameworks::server::all_servers;

    let mut out = Vec::new();
    for server in all_servers() {
        let id = format!("{:?}", server.info().id);
        for entry in server.catalog().entries().iter().step_by(stride.max(1)) {
            let path = format!("/{id}/{}", entry.fqcn);
            let wsdl_target = format!("{path}?wsdl");
            let outcome = match wire.get(addr, &wsdl_target, &path) {
                Err(WireError::Status(404)) => continue, // not deployed
                Err(e) => ExchangeOutcome::TransportError { reason: e.reason() },
                Ok(response) => match response.body_str() {
                    None => ExchangeOutcome::TransportError {
                        reason: "description is not UTF-8".to_string(),
                    },
                    Some(wsdl_xml) => match first_survey_operation(wsdl_xml) {
                        None => ExchangeOutcome::ClientCannotInvoke {
                            reason: "no operations in the description".to_string(),
                        },
                        Some(op) => {
                            exchange_over_http(wire, addr, &path, wsdl_xml, &op, SURVEY_PROBE)
                        }
                    },
                },
            };
            out.push(SurveySite {
                server: id.clone(),
                fqcn: entry.fqcn.clone(),
                outcome,
            });
        }
    }
    out
}
