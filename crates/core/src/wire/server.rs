//! The hardened loopback SOAP endpoint: a threaded HTTP/1.1 server
//! hosting every deployed echo service.
//!
//! Hardening contract (DESIGN.md §10):
//!
//! * **Bounded concurrency** — a fixed worker pool drains a bounded
//!   accept queue; when pool *and* queue are saturated, new
//!   connections are shed immediately with `503` by the accept thread.
//!   Nothing ever queues unboundedly.
//! * **Deadlines** — every connection carries read/write timeouts; a
//!   peer that stalls mid-request (slow loris) gets `408` and the
//!   socket back.
//! * **Size limits** — request-line, header, and body caps are
//!   enforced *before* buffering; an oversized message is refused with
//!   `413` without allocating for it.
//! * **Keep-alive** — up to a bounded number of requests per
//!   connection.
//! * **Graceful shutdown** — the accept loop stops, queued and
//!   in-flight requests drain to completion, then workers exit.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use wsinterop_wsdl::de::from_xml_str;
use wsinterop_wsdl::{soap, Definitions};
use wsinterop_xml::writer::{write_document, WriteOptions};

use crate::exchange::serve_echo;
use crate::sync::lock_unpoisoned;
use crate::obs::{MetricsRegistry, Stopwatch};

use super::http::{self, HttpError, HttpLimits, Request};

/// The admin path that triggers a remote graceful shutdown.
pub const SHUTDOWN_PATH: &str = "/__admin/shutdown";

/// One hosted echo service.
pub struct HostedService {
    /// The published description, byte-for-byte what `GET ?wsdl`
    /// returns.
    pub wsdl_xml: String,
    /// The server's own parse of that description (kept pre-parsed so
    /// the hot path never re-parses), or the parse error.
    pub defs: Result<Definitions, String>,
}

impl HostedService {
    /// Hosts one description, pre-parsing it server-side.
    pub fn new(wsdl_xml: String) -> HostedService {
        let defs = from_xml_str(&wsdl_xml).map_err(|e| e.to_string());
        HostedService { wsdl_xml, defs }
    }
}

/// Deploys every `stride`-th catalog entry of every paper server and
/// returns the path → service map the loopback endpoint serves,
/// mirroring exactly the site enumeration of
/// [`crate::exchange::survey_sites`]. Paths are
/// `/{ServerId:?}/{fqcn}`.
pub fn host_survey_services(stride: usize) -> BTreeMap<String, HostedService> {
    use wsinterop_frameworks::server::{all_servers, DeployOutcome};

    let mut services = BTreeMap::new();
    for server in all_servers() {
        let id = format!("{:?}", server.info().id);
        for entry in server.catalog().entries().iter().step_by(stride.max(1)) {
            let DeployOutcome::Deployed { wsdl_xml } = server.deploy(entry) else {
                continue;
            };
            services.insert(
                format!("/{id}/{}", entry.fqcn),
                HostedService::new(wsdl_xml),
            );
        }
    }
    services
}

/// Tuning for the hardened endpoint.
#[derive(Debug, Clone)]
pub struct WireServerConfig {
    /// Worker-pool size.
    pub workers: usize,
    /// Accept-queue depth; connections beyond `workers + queue_depth`
    /// are shed with `503`.
    pub queue_depth: usize,
    /// Per-connection read deadline.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Framing limits (start line, headers, body).
    pub limits: HttpLimits,
    /// Maximum requests served per keep-alive connection.
    pub keep_alive_requests: usize,
    /// Optional shared telemetry registry. When set, the endpoint
    /// mirrors every [`WireStats`] counter into it
    /// (`wire_server_*_total`), tallies responses by status code
    /// (`wire_server_responses_total{code="..."}`) and feeds the
    /// per-request latency histogram (`wire_server_request_ns`).
    /// Observe-only: responses are byte-identical with or without it.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for WireServerConfig {
    fn default() -> WireServerConfig {
        WireServerConfig {
            workers: 4,
            queue_depth: 8,
            read_timeout: Duration::from_millis(2000),
            write_timeout: Duration::from_millis(2000),
            limits: HttpLimits::default(),
            keep_alive_requests: 64,
            metrics: None,
        }
    }
}

/// Live counters exposed for tests and the overload experiment (E15).
/// All monotonic except the two gauges.
#[derive(Debug, Default)]
pub struct WireStats {
    /// Connections accepted (including ones later shed).
    pub accepted: AtomicUsize,
    /// Connections shed with `503` at the accept gate.
    pub shed: AtomicUsize,
    /// Requests answered with a 2xx/5xx SOAP response.
    pub served: AtomicUsize,
    /// Requests refused with `413` (size caps).
    pub oversized: AtomicUsize,
    /// Connections timed out with `408` (slow loris).
    pub timeouts: AtomicUsize,
    /// Requests refused with `400` (framing).
    pub malformed: AtomicUsize,
    /// Requests answered `404`/`405`.
    pub not_found: AtomicUsize,
    /// Gauge: connections currently inside a worker.
    pub in_flight: AtomicUsize,
    /// Gauge: connections accepted but not yet claimed by a worker.
    pub queued: AtomicUsize,
}

struct Shared {
    services: BTreeMap<String, HostedService>,
    config: WireServerConfig,
    stats: WireStats,
    stop: AtomicBool,
    addr: SocketAddr,
}

/// The running loopback endpoint. Dropping it without calling
/// [`WireServer::shutdown`] detaches the threads (they exit once asked
/// to stop); tests and `wsitool serve` always shut down explicitly.
pub struct WireServer {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `127.0.0.1:port` (0 ⇒ ephemeral) and starts the accept
    /// thread and worker pool.
    pub fn start(
        port: u16,
        services: BTreeMap<String, HostedService>,
        config: WireServerConfig,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            services,
            config,
            stats: WireStats::default(),
            stop: AtomicBool::new(false),
            addr,
        });

        let (tx, rx) = sync_channel::<TcpStream>(shared.config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(shared.config.workers.max(1));
        for _ in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || {
            accept_loop(&accept_shared, &listener, tx);
            // `tx` dropped here: workers drain the queue, then exit.
        });

        Ok(WireServer {
            shared,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The bound loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live counters.
    pub fn stats(&self) -> &WireStats {
        &self.shared.stats
    }

    /// Asks the accept loop to stop without waiting for the drain —
    /// the non-blocking half of [`WireServer::shutdown`].
    pub fn request_stop(&self) {
        request_stop(&self.shared);
    }

    /// Whether a stop has been requested (locally or via the admin
    /// endpoint).
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join every thread.
    pub fn shutdown(mut self) {
        self.request_stop();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Blocks until someone requests a stop — normally a `POST` to
    /// [`SHUTDOWN_PATH`] (used by `wsitool serve`) — then drains and
    /// joins like [`WireServer::shutdown`].
    pub fn wait(self) {
        while !self.stopping() {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        self.shutdown();
    }
}

/// Bumps a registry counter when the endpoint carries one — the
/// telemetry mirror of the adjacent `WireStats` `fetch_add`.
fn inc_metric(shared: &Shared, name: &str) {
    if let Some(metrics) = &shared.config.metrics {
        metrics.inc(name);
    }
}

fn request_stop(shared: &Shared) {
    if shared.stop.swap(true, Ordering::SeqCst) {
        return;
    }
    // Unblock the accept loop with a throwaway connection; if the
    // connect fails the listener is already gone, which is fine.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(
    shared: &Shared,
    listener: &TcpListener,
    tx: std::sync::mpsc::SyncSender<TcpStream>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // Accept errors are transient (EMFILE, aborted handshake);
            // only a requested stop ends the loop below.
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client) during
            // shutdown: refuse politely and stop accepting.
            shed(shared, stream, "server is shutting down");
            return;
        }
        shared.stats.accepted.fetch_add(1, Ordering::SeqCst);
        inc_metric(shared, "wire_server_accepted_total");
        shared.stats.queued.fetch_add(1, Ordering::SeqCst);
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                // Admission control: pool and queue are saturated —
                // shed *now* rather than queue unboundedly.
                shared.stats.queued.fetch_sub(1, Ordering::SeqCst);
                shared.stats.shed.fetch_add(1, Ordering::SeqCst);
                inc_metric(shared, "wire_server_shed_total");
                shed(shared, stream, "worker pool saturated");
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Refuses one connection with `503` on the accept thread. The write
/// is bounded by the write deadline so a non-reading peer cannot stall
/// admission control.
fn shed(shared: &Shared, mut stream: TcpStream, reason: &str) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = http::write_response(
        &mut stream,
        503,
        "Service Unavailable",
        "text/plain",
        reason.as_bytes(),
        true,
    );
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // Hold the receiver lock only for the claim, never while
        // serving.
        // lock-order: L2 (wire accept queue) — leaf.
        let stream = lock_unpoisoned(rx).recv();
        let Ok(stream) = stream else {
            return; // Sender dropped: accept loop is gone, queue drained.
        };
        shared.stats.queued.fetch_sub(1, Ordering::SeqCst);
        shared.stats.in_flight.fetch_add(1, Ordering::SeqCst);
        serve_connection(shared, stream);
        shared.stats.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let config = &shared.config;
    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
        || stream.set_write_timeout(Some(config.write_timeout)).is_err()
    {
        return;
    }
    let mut stream = stream;
    for served_before in 0..config.keep_alive_requests {
        let request = match http::read_request(&stream, &config.limits) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean keep-alive close
            Err(HttpError::Timeout) => {
                // Slow loris on the first request gets a 408; an idle
                // keep-alive connection just gets closed.
                if served_before == 0 {
                    shared.stats.timeouts.fetch_add(1, Ordering::SeqCst);
                    inc_metric(shared, "wire_server_timeouts_total");
                    let _ = http::write_response(
                        &mut stream,
                        408,
                        "Request Timeout",
                        "text/plain",
                        b"read deadline exceeded",
                        true,
                    );
                }
                return;
            }
            Err(
                HttpError::BodyTooLarge { .. }
                | HttpError::StartLineTooLong
                | HttpError::HeadersTooLarge,
            ) => {
                shared.stats.oversized.fetch_add(1, Ordering::SeqCst);
                inc_metric(shared, "wire_server_oversized_total");
                let _ = http::write_response(
                    &mut stream,
                    413,
                    "Payload Too Large",
                    "text/plain",
                    b"request exceeds the configured limits",
                    true,
                );
                return;
            }
            Err(
                HttpError::BadStartLine(_)
                | HttpError::BadHeader(_)
                | HttpError::BadContentLength,
            ) => {
                shared.stats.malformed.fetch_add(1, Ordering::SeqCst);
                inc_metric(shared, "wire_server_malformed_total");
                let _ = http::write_response(
                    &mut stream,
                    400,
                    "Bad Request",
                    "text/plain",
                    b"malformed request",
                    true,
                );
                return;
            }
            Err(_) => return, // reset / closed mid-message: nothing to say
        };
        // Close after this response when the peer asked for it, the
        // budget is exhausted, or a shutdown is in progress (in-flight
        // requests drain; idle keep-alive must not pin workers).
        let close = !request.keep_alive
            || served_before + 1 == config.keep_alive_requests
            || shared.stop.load(Ordering::SeqCst);
        let span = shared.config.metrics.as_ref().map(|_| Stopwatch::real());
        let ok = respond(shared, &mut stream, &request, close);
        if let (Some(metrics), Some(span)) = (&shared.config.metrics, span) {
            metrics.observe_ns("wire_server_request_ns", span.elapsed_ns());
        }
        if !ok || close {
            return;
        }
    }
}

/// Handles one parsed request; returns `false` when the connection
/// must close.
fn respond(shared: &Shared, stream: &mut TcpStream, request: &Request, close: bool) -> bool {
    let path = request.path();
    let (status, reason, content_type, body): (u16, &str, &str, Vec<u8>) =
        match (request.method.as_str(), path) {
            ("POST", p) if p == SHUTDOWN_PATH => {
                request_stop(shared);
                (200, "OK", "text/plain", b"shutting down".to_vec())
            }
            ("GET", p) => match shared.services.get(p) {
                Some(service) if request.query() == Some("wsdl") => {
                    shared.stats.served.fetch_add(1, Ordering::SeqCst);
                    inc_metric(shared, "wire_server_served_total");
                    (200, "OK", "text/xml", service.wsdl_xml.clone().into_bytes())
                }
                Some(_) => {
                    shared.stats.malformed.fetch_add(1, Ordering::SeqCst);
                    inc_metric(shared, "wire_server_malformed_total");
                    (400, "Bad Request", "text/plain", b"expected ?wsdl".to_vec())
                }
                None => {
                    shared.stats.not_found.fetch_add(1, Ordering::SeqCst);
                    inc_metric(shared, "wire_server_not_found_total");
                    (404, "Not Found", "text/plain", b"no such service".to_vec())
                }
            },
            ("POST", p) => match shared.services.get(p) {
                Some(service) => match soap_response(service, &request.body) {
                    Ok((status, xml)) => {
                        shared.stats.served.fetch_add(1, Ordering::SeqCst);
                        inc_metric(shared, "wire_server_served_total");
                        let reason = if status == 200 { "OK" } else { "Internal Server Error" };
                        (status, reason, "text/xml", xml.into_bytes())
                    }
                    Err(detail) => {
                        shared.stats.malformed.fetch_add(1, Ordering::SeqCst);
                        inc_metric(shared, "wire_server_malformed_total");
                        (400, "Bad Request", "text/plain", detail.into_bytes())
                    }
                },
                None => {
                    shared.stats.not_found.fetch_add(1, Ordering::SeqCst);
                    inc_metric(shared, "wire_server_not_found_total");
                    (404, "Not Found", "text/plain", b"no such service".to_vec())
                }
            },
            _ => {
                shared.stats.not_found.fetch_add(1, Ordering::SeqCst);
                inc_metric(shared, "wire_server_not_found_total");
                (405, "Method Not Allowed", "text/plain", b"GET or POST only".to_vec())
            }
        };
    if shared.config.metrics.is_some() {
        inc_metric(
            shared,
            &format!("wire_server_responses_total{{code=\"{status}\"}}"),
        );
    }
    http::write_response(stream, status, reason, content_type, &body, close).is_ok()
}

/// Produces the SOAP response envelope and its HTTP status for one
/// request body. Per WS-I BP 1.1 R1126/R1111, a fault envelope rides
/// on `500`, a normal response on `200`.
fn soap_response(service: &HostedService, body: &[u8]) -> Result<(u16, String), String> {
    let Ok(request_xml) = std::str::from_utf8(body) else {
        return Err("request body is not UTF-8".to_string());
    };
    let response = match &service.defs {
        Ok(defs) => serve_echo(defs, request_xml),
        // Mirrors the in-process exchange's wording exactly — E15
        // equivalence depends on it.
        Err(e) => write_document(
            &soap::fault(
                "Server",
                &format!("server cannot re-parse its own description: {e}"),
            ),
            &WriteOptions::compact(),
        ),
    };
    let status = if soap::is_fault(&response) { 500 } else { 200 };
    Ok((status, response))
}
