//! The hardened loopback SOAP endpoint: a readiness-driven HTTP/1.1
//! server hosting every deployed echo service.
//!
//! Architecture (DESIGN.md §15): a small set of reactor threads share
//! one nonblocking listener; each accepted socket becomes a
//! per-connection state machine ([`super::conn::Conn`]) owned by
//! exactly one reactor, so connection state is thread-confined and the
//! serving path takes **no locks** (docs/CONCURRENCY.md). The only
//! cross-thread coordination is the atomic admission [`Gauges`] and
//! the handle-based [`WireStats`] counters.
//!
//! Degradation ladder (every layer answers with a well-formed,
//! deterministic HTTP response):
//!
//! 1. **Accept-gate shedding** — beyond `workers + queue_depth` open
//!    connections, a new peer gets `503` + `Retry-After` immediately.
//!    Nothing ever queues unboundedly.
//! 2. **In-flight budget with bounded queueing** — at most `workers`
//!    connections are actively served; up to `queue_depth` more wait
//!    *unread* for a slot, and the wait itself is deadline-bounded
//!    (`503` + `Retry-After` on expiry).
//! 3. **Per-connection deadlines** — read, write, and whole-connection
//!    budgets: a slow-loris peer gets `408`, a peer that stops reading
//!    its response is dropped, an idle keep-alive connection is closed
//!    silently.
//! 4. **Keep-alive demotion** — while any connection is queued, every
//!    response is demoted to `Connection: close` so slots recycle
//!    instead of being pinned by idle keep-alive sessions.
//!
//! Size limits (`413` before buffering) and graceful drain (stop
//! accepting, serve what is in flight, then exit) carry over from the
//! blocking design unchanged. Every dispatched response additionally
//! carries a deterministic `X-Request-Id` header (DESIGN.md §16) —
//! body bytes and status classification are untouched, which is what
//! the E15 loopback ≡ in-process equivalence actually compares.
//!
//! The **admin plane** (§16) rides the same reactors: `GET /metrics`
//! (Prometheus text), `GET /healthz` (readiness from the ladder
//! state) and `GET /statusz` (JSON snapshot) are served through the
//! identical state machine and `render_response` path as SOAP
//! traffic, but accounted under `wire_server_admin_*` so the
//! served-only latency histogram and its quantiles never mix scrape
//! traffic into serving numbers.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wsinterop_wsdl::de::from_xml_str;
use wsinterop_wsdl::{soap, Definitions};
use wsinterop_xml::writer::{write_document, WriteOptions};

use crate::exchange::serve_echo;
use crate::obs::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry, TraceEvent, TracePhase,
    TraceSink,
};

use super::conn::{Conn, Drive, Phase};
use super::http::{self, HttpLimits, Request};
use super::loadgen::splitmix64;

/// The admin path that triggers a remote graceful shutdown.
pub const SHUTDOWN_PATH: &str = "/__admin/shutdown";

/// Connections accepted per reactor pass before yielding to the
/// drive loop (bounds accept latency vs. serving latency).
const ACCEPT_BATCH: usize = 32;

/// Reactor idle nap when no socket made progress. Short enough that
/// deadline checks stay sharp, long enough not to spin a core.
const IDLE_NAP: Duration = Duration::from_micros(500);

/// One hosted echo service.
pub struct HostedService {
    /// The published description, byte-for-byte what `GET ?wsdl`
    /// returns.
    pub wsdl_xml: String,
    /// The server's own parse of that description (kept pre-parsed so
    /// the hot path never re-parses), or the parse error.
    pub defs: Result<Definitions, String>,
}

impl HostedService {
    /// Hosts one description, pre-parsing it server-side.
    pub fn new(wsdl_xml: String) -> HostedService {
        let defs = from_xml_str(&wsdl_xml).map_err(|e| e.to_string());
        HostedService { wsdl_xml, defs }
    }
}

/// Deploys every `stride`-th catalog entry of every paper server and
/// returns the path → service map the loopback endpoint serves,
/// mirroring exactly the site enumeration of
/// [`crate::exchange::survey_sites`]. Paths are
/// `/{ServerId:?}/{fqcn}`.
pub fn host_survey_services(stride: usize) -> BTreeMap<String, HostedService> {
    use wsinterop_frameworks::server::{all_servers, DeployOutcome};

    let mut services = BTreeMap::new();
    for server in all_servers() {
        let id = format!("{:?}", server.info().id);
        for entry in server.catalog().entries().iter().step_by(stride.max(1)) {
            let DeployOutcome::Deployed { wsdl_xml } = server.deploy(entry) else {
                continue;
            };
            services.insert(
                format!("/{id}/{}", entry.fqcn),
                HostedService::new(wsdl_xml),
            );
        }
    }
    services
}

/// Tuning for the hardened endpoint.
#[derive(Debug, Clone)]
pub struct WireServerConfig {
    /// In-flight budget: connections actively served at once.
    pub workers: usize,
    /// Bounded queue: connections admitted past the accept gate but
    /// waiting (unread) for an in-flight slot; beyond
    /// `workers + queue_depth` open connections, new peers are shed
    /// with `503`.
    pub queue_depth: usize,
    /// Reactor threads sharing the listener (each owns its accepted
    /// connections).
    pub reactors: usize,
    /// Per-request read deadline; also bounds the queue wait.
    pub read_timeout: Duration,
    /// Per-response write deadline.
    pub write_timeout: Duration,
    /// Whole-connection budget, keep-alive included.
    pub total_timeout: Duration,
    /// `Retry-After` seconds advertised on `503` sheds.
    pub retry_after_secs: u64,
    /// Framing limits (start line, headers, body).
    pub limits: HttpLimits,
    /// Maximum requests served per keep-alive connection.
    pub keep_alive_requests: usize,
    /// Optional shared telemetry registry. When set, every
    /// [`WireStats`] counter lives in it (`wire_server_*_total`),
    /// responses are tallied by status code
    /// (`wire_server_responses_total{code="..."}`) and the per-request
    /// latency histogram (`wire_server_request_ns`) is fed.
    /// Observe-only: responses are byte-identical with or without it.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Seed for the deterministic request-id stream: the id of the
    /// n-th dispatched request is `splitmix64(seed ^ mix(n))`, a
    /// bijective map, so ids are unique per request and the *set* of
    /// ids for a run depends only on the seed and the request count —
    /// not on reactor interleaving.
    pub request_seed: u64,
    /// Optional trace sink: when set, every dispatched request records
    /// one `wire`-phase exit span carrying its request id, path,
    /// status and flush-complete latency. Observe-only.
    pub trace: Option<TraceSink>,
}

impl Default for WireServerConfig {
    fn default() -> WireServerConfig {
        WireServerConfig {
            workers: 4,
            queue_depth: 8,
            reactors: 2,
            read_timeout: Duration::from_millis(2000),
            write_timeout: Duration::from_millis(2000),
            total_timeout: Duration::from_millis(30_000),
            retry_after_secs: 1,
            limits: HttpLimits::default(),
            keep_alive_requests: 64,
            metrics: None,
            request_seed: 0x5EED_1D00_C0DE_CAFE,
            trace: None,
        }
    }
}

/// Connection-lifecycle gauges. Gauges cannot ride on the monotonic
/// registry counters, so they stay atomics shared between the accept
/// gate (CAS admission) and the reactors; the registry mirrors them as
/// opened/closed and admitted/completed counter pairs.
#[derive(Debug, Default)]
pub(crate) struct Gauges {
    /// Connections currently open (admitted or queued; sheds excluded).
    pub(crate) open: AtomicUsize,
    /// Connections currently holding an in-flight slot.
    pub(crate) in_flight: AtomicUsize,
    /// Connections currently parked in the bounded queue.
    pub(crate) queued: AtomicUsize,
}

/// Pre-resolved status codes for `wire_server_responses_total` —
/// every code the degradation ladder can emit. A code outside this
/// set ticks `wire_server_responses_fallback_total` instead of taking
/// the registry lock on the serving path (docs/CONCURRENCY.md rule 5);
/// the set being exhaustive is pinned by a test, so the fallback
/// counter staying 0 is itself an invariant.
const RESPONSE_CODES: [u16; 8] = [200, 400, 404, 405, 408, 413, 500, 503];

/// Admin-plane routes, pre-resolved like the status codes so a scrape
/// never locks the registry either.
const ADMIN_ROUTES: [&str; 4] = ["metrics", "healthz", "statusz", "shutdown"];

/// Live serving-path telemetry: registry-backed counter/histogram
/// handles (pre-resolved once, per docs/CONCURRENCY.md rule 5) plus
/// the lifecycle gauges. Cloning is cheap (`Arc`s all the way down)
/// and clones observe the same live values — tests hold one across a
/// shutdown.
#[derive(Debug, Clone)]
pub struct WireStats {
    pub(crate) accepted: CounterHandle,
    pub(crate) shed: CounterHandle,
    pub(crate) served: CounterHandle,
    pub(crate) oversized: CounterHandle,
    pub(crate) timeouts: CounterHandle,
    pub(crate) malformed: CounterHandle,
    pub(crate) not_found: CounterHandle,
    pub(crate) queue_timeouts: CounterHandle,
    pub(crate) write_stalls: CounterHandle,
    pub(crate) demoted: CounterHandle,
    pub(crate) conn_opened: CounterHandle,
    pub(crate) conn_closed: CounterHandle,
    pub(crate) admitted: CounterHandle,
    pub(crate) completed: CounterHandle,
    pub(crate) request_ns: HistogramHandle,
    /// Admin-plane accounting (DESIGN.md §16): scrapes/health checks
    /// ride the serving reactors but never touch the serving-path
    /// counters or `wire_server_request_ns`.
    pub(crate) admin: CounterHandle,
    pub(crate) admin_request_ns: HistogramHandle,
    admin_responses: [(&'static str, CounterHandle); ADMIN_ROUTES.len()],
    responses: [(u16, CounterHandle); RESPONSE_CODES.len()],
    /// Responses with a status outside [`RESPONSE_CODES`] — the ladder
    /// never produces one, so this stays 0; it replaces the old
    /// by-name registry fallback that locked on the serving path.
    responses_fallback: CounterHandle,
    /// Ordinal source for the deterministic request-id stream.
    pub(crate) req_seq: Arc<AtomicU64>,
    /// Registry mirrors of the admission gauges, synced on scrape so
    /// `/metrics` and `/statusz` expose live connection state.
    open_gauge: GaugeHandle,
    in_flight_gauge: GaugeHandle,
    queued_gauge: GaugeHandle,
    pub(crate) gauges: Arc<Gauges>,
    pub(crate) registry: Arc<MetricsRegistry>,
}

impl WireStats {
    fn new(registry: Arc<MetricsRegistry>) -> WireStats {
        let counter = |name: &str| registry.counter_handle(name);
        WireStats {
            accepted: counter("wire_server_accepted_total"),
            shed: counter("wire_server_shed_total"),
            served: counter("wire_server_served_total"),
            oversized: counter("wire_server_oversized_total"),
            timeouts: counter("wire_server_timeouts_total"),
            malformed: counter("wire_server_malformed_total"),
            not_found: counter("wire_server_not_found_total"),
            queue_timeouts: counter("wire_server_queue_timeouts_total"),
            write_stalls: counter("wire_server_write_stalls_total"),
            demoted: counter("wire_server_demoted_total"),
            conn_opened: counter("wire_server_conns_opened_total"),
            conn_closed: counter("wire_server_conns_closed_total"),
            admitted: counter("wire_server_admitted_total"),
            completed: counter("wire_server_completed_total"),
            request_ns: registry.histogram_handle("wire_server_request_ns"),
            admin: counter("wire_server_admin_total"),
            admin_request_ns: registry.histogram_handle("wire_server_admin_request_ns"),
            admin_responses: ADMIN_ROUTES.map(|route| {
                (
                    route,
                    registry.counter_handle(&format!(
                        "wire_server_admin_responses_total{{route=\"{route}\"}}"
                    )),
                )
            }),
            responses: RESPONSE_CODES.map(|code| {
                (
                    code,
                    registry.counter_handle(&format!(
                        "wire_server_responses_total{{code=\"{code}\"}}"
                    )),
                )
            }),
            responses_fallback: counter("wire_server_responses_fallback_total"),
            req_seq: Arc::new(AtomicU64::new(0)),
            open_gauge: registry.gauge_handle("wire_server_open_conns"),
            in_flight_gauge: registry.gauge_handle("wire_server_in_flight"),
            queued_gauge: registry.gauge_handle("wire_server_queued"),
            gauges: Arc::new(Gauges::default()),
            registry,
        }
    }

    fn count_response(&self, status: u16) {
        match self.responses.iter().find(|(code, _)| *code == status) {
            Some((_, handle)) => handle.inc(),
            // Unreachable by construction (RESPONSE_CODES is the
            // ladder's whole vocabulary); counted, never locked on.
            None => self.responses_fallback.inc(),
        }
    }

    fn count_admin(&self, route: &str) {
        match self.admin_responses.iter().find(|(name, _)| *name == route) {
            Some((_, handle)) => handle.inc(),
            None => self.responses_fallback.inc(),
        }
    }

    /// Mirrors the live admission gauges into the registry so a render
    /// (scrape, statusz, loadgen summary) reports current connection
    /// state. Called on the admin path only — never while serving.
    pub fn sync_gauges(&self) {
        self.open_gauge.set(self.gauges.open.load(Ordering::SeqCst) as u64);
        self.in_flight_gauge.set(self.gauges.in_flight.load(Ordering::SeqCst) as u64);
        self.queued_gauge.set(self.gauges.queued.load(Ordering::SeqCst) as u64);
    }

    /// Connections accepted (including ones later shed).
    pub fn accepted(&self) -> usize {
        self.accepted.get() as usize
    }

    /// Connections shed with `503` (accept gate; queue-wait expiries
    /// are [`WireStats::queue_timeouts`]).
    pub fn shed(&self) -> usize {
        self.shed.get() as usize
    }

    /// Requests answered with a 2xx/5xx SOAP/WSDL response.
    pub fn served(&self) -> usize {
        self.served.get() as usize
    }

    /// Requests refused with `413` (size caps).
    pub fn oversized(&self) -> usize {
        self.oversized.get() as usize
    }

    /// Requests timed out with `408` (slow loris / stalled body).
    pub fn timeouts(&self) -> usize {
        self.timeouts.get() as usize
    }

    /// Requests refused with `400` (framing).
    pub fn malformed(&self) -> usize {
        self.malformed.get() as usize
    }

    /// Requests answered `404`/`405`.
    pub fn not_found(&self) -> usize {
        self.not_found.get() as usize
    }

    /// Queued connections shed with `503` when their slot wait
    /// exceeded the read deadline.
    pub fn queue_timeouts(&self) -> usize {
        self.queue_timeouts.get() as usize
    }

    /// Connections dropped because the peer stopped reading its
    /// response before the write deadline.
    pub fn write_stalls(&self) -> usize {
        self.write_stalls.get() as usize
    }

    /// Keep-alive responses demoted to `Connection: close` because
    /// connections were queued at response time.
    pub fn demoted(&self) -> usize {
        self.demoted.get() as usize
    }

    /// Gauge: connections currently open (admitted or queued).
    pub fn open(&self) -> usize {
        self.gauges.open.load(Ordering::SeqCst)
    }

    /// Gauge: connections currently holding an in-flight slot.
    pub fn in_flight(&self) -> usize {
        self.gauges.in_flight.load(Ordering::SeqCst)
    }

    /// Gauge: connections currently parked in the bounded queue.
    pub fn queued(&self) -> usize {
        self.gauges.queued.load(Ordering::SeqCst)
    }

    /// Admin-plane requests answered (`/metrics`, `/healthz`,
    /// `/statusz`, shutdown).
    pub fn admin(&self) -> usize {
        self.admin.get() as usize
    }

    /// Responses whose status fell outside the pre-resolved ladder set
    /// — 0 by construction; pinned by tests.
    pub fn responses_fallback(&self) -> usize {
        self.responses_fallback.get() as usize
    }

    /// Request ids issued so far (== dispatched requests, admin
    /// included).
    pub fn request_ids_issued(&self) -> u64 {
        self.req_seq.load(Ordering::SeqCst)
    }
}

pub(crate) struct Shared {
    services: BTreeMap<String, HostedService>,
    pub(crate) config: WireServerConfig,
    pub(crate) stats: WireStats,
    stop: AtomicBool,
    addr: SocketAddr,
    /// Server start time — `/statusz` uptime.
    started: Instant,
    /// FNV-1a over the numeric config fields — `/statusz` exposes it
    /// so a scrape can tell two differently-tuned servers apart.
    config_hash: u64,
}

/// What [`Env::respond`] hands back: the rendered bytes plus the
/// accounting facts the connection resolves when the flush completes.
pub(crate) struct Responded {
    pub(crate) bytes: Vec<u8>,
    pub(crate) status: u16,
    /// Admin-plane responses are excluded from the serving histogram
    /// and per-code counters.
    pub(crate) admin: bool,
}

/// Armed at dispatch, resolved when the response is fully flushed:
/// ties the latency observation (and the optional trace span) to the
/// request's deterministic id.
pub(crate) struct PendingResponse {
    pub(crate) started: Instant,
    pub(crate) request_id: u64,
    pub(crate) status: u16,
    pub(crate) admin: bool,
    /// Request path — captured only when a trace sink is attached, so
    /// the serving path allocates nothing for telemetry otherwise.
    pub(crate) path: Option<String>,
}

/// The reactor-side view of the server handed to every
/// [`Conn::drive`] pass.
pub(crate) struct Env<'a> {
    pub(crate) config: &'a WireServerConfig,
    pub(crate) stats: &'a WireStats,
    shared: &'a Shared,
}

impl Env<'_> {
    pub(crate) fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// The keep-alive demotion signal: any connection waiting for a
    /// slot means idle keep-alive sessions must not pin theirs.
    pub(crate) fn under_pressure(&self) -> bool {
        self.stats.queued() > 0
    }

    pub(crate) fn count_response(&self, status: u16) {
        self.stats.count_response(status);
    }

    /// Renders the deterministic overload refusal: `503` with a
    /// `Retry-After` hint, used by both the accept gate and the
    /// queue-wait deadline.
    pub(crate) fn overload_response(&self, reason: &str) -> Vec<u8> {
        self.count_response(503);
        let retry_after = self.config.retry_after_secs.to_string();
        http::render_response(
            503,
            "Service Unavailable",
            "text/plain",
            &[("Retry-After", &retry_after)],
            reason.as_bytes(),
            true,
        )
    }

    /// Draws the next deterministic request id: a bijective splitmix64
    /// over the seeded stream ordinal, so every dispatched request
    /// gets a unique id and the id *set* of a run is a pure function
    /// of `(request_seed, request count)` — reactor interleaving only
    /// permutes which request gets which id.
    pub(crate) fn next_request_id(&self) -> u64 {
        let ordinal = self.stats.req_seq.fetch_add(1, Ordering::SeqCst);
        splitmix64(self.config.request_seed ^ ordinal.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Resolves a flushed response: feeds the serving histogram (with
    /// the request id as that bucket's exemplar) or the admin-plane
    /// histogram, and records the optional trace span. Called by the
    /// connection exactly once per dispatched request.
    pub(crate) fn complete_response(&self, pending: &PendingResponse, dur_ns: u64) {
        if pending.admin {
            self.stats.admin_request_ns.observe_ns(dur_ns);
        } else {
            self.stats.request_ns.observe_ns_with_exemplar(dur_ns, pending.request_id);
        }
        if let Some(trace) = &self.config.trace {
            let path = pending.path.clone().unwrap_or_default();
            trace.record(
                TraceEvent::enter(TracePhase::Wire, "wire-server", path)
                    .exit(status_label(pending.status), dur_ns)
                    .with_request_id(pending.request_id),
            );
        }
    }

    /// Admin-plane routing (DESIGN.md §16). Returns `None` for SOAP
    /// traffic; admin responses are rendered by the caller through the
    /// same `render_response` path as everything else.
    fn admin_route(
        &self,
        request: &Request,
        path: &str,
    ) -> Option<(&'static str, u16, &'static str, &'static str, Vec<u8>)> {
        match (request.method.as_str(), path) {
            ("GET", "/metrics") => {
                self.stats.sync_gauges();
                let body = self.stats.registry.render_prometheus().into_bytes();
                Some(("metrics", 200, "OK", "text/plain; version=0.0.4", body))
            }
            ("GET", "/healthz") => Some(if self.stopping() {
                ("healthz", 503, "Service Unavailable", "text/plain", b"draining".to_vec())
            } else if self.under_pressure() {
                // Degraded exactly when the ladder is queueing — the
                // same signal that demotes keep-alive sessions.
                ("healthz", 503, "Service Unavailable", "text/plain", b"degraded".to_vec())
            } else {
                ("healthz", 200, "OK", "text/plain", b"ok".to_vec())
            }),
            ("GET", "/statusz") => {
                self.stats.sync_gauges();
                let body = self.render_statusz().into_bytes();
                Some(("statusz", 200, "OK", "application/json", body))
            }
            ("POST", p) if p == SHUTDOWN_PATH => {
                request_stop(self.shared);
                Some(("shutdown", 200, "OK", "text/plain", b"shutting down".to_vec()))
            }
            _ => None,
        }
    }

    /// The `/statusz` JSON body: gauges, ladder rung counters, uptime
    /// and build/config identity, hand-formatted with a fixed key
    /// order so two scrapes differ only where the values do.
    fn render_statusz(&self) -> String {
        let stats = self.stats;
        let shared = self.shared;
        let stopping = self.stopping();
        let healthy = !stopping && !self.under_pressure();
        format!(
            "{{\"healthy\":{healthy},\"stopping\":{stopping},\"uptime_ms\":{uptime},\
             \"build\":\"{build}\",\"config_hash\":\"{hash:016x}\",\
             \"gauges\":{{\"open\":{open},\"in_flight\":{in_flight},\"queued\":{queued}}},\
             \"ladder\":{{\"accepted\":{accepted},\"shed\":{shed},\
             \"queue_timeouts\":{queue_timeouts},\"timeouts\":{timeouts},\
             \"demoted\":{demoted},\"write_stalls\":{write_stalls}}},\
             \"requests\":{{\"served\":{served},\"oversized\":{oversized},\
             \"malformed\":{malformed},\"not_found\":{not_found},\"admin\":{admin}}}}}",
            uptime = shared.started.elapsed().as_millis(),
            build = env!("CARGO_PKG_VERSION"),
            hash = shared.config_hash,
            open = stats.open(),
            in_flight = stats.in_flight(),
            queued = stats.queued(),
            accepted = stats.accepted(),
            shed = stats.shed(),
            queue_timeouts = stats.queue_timeouts(),
            timeouts = stats.timeouts(),
            demoted = stats.demoted(),
            write_stalls = stats.write_stalls(),
            served = stats.served(),
            oversized = stats.oversized(),
            malformed = stats.malformed(),
            not_found = stats.not_found(),
            admin = stats.admin(),
        )
    }

    /// Handles one parsed request and renders the full response. The
    /// id is stamped into the `X-Request-Id` header of every
    /// dispatched response, admin or served.
    pub(crate) fn respond(&self, request: &Request, close: bool, request_id: u64) -> Responded {
        let shared = self.shared;
        let stats = self.stats;
        let path = request.path();
        let id_hex = format!("{request_id:016x}");
        if let Some((route, status, reason, content_type, body)) =
            self.admin_route(request, path)
        {
            stats.admin.inc();
            stats.count_admin(route);
            let bytes = http::render_response(
                status,
                reason,
                content_type,
                &[("X-Request-Id", &id_hex)],
                &body,
                close,
            );
            return Responded { bytes, status, admin: true };
        }
        let (status, reason, content_type, body): (u16, &str, &str, Vec<u8>) =
            match (request.method.as_str(), path) {
                ("GET", p) => match shared.services.get(p) {
                    Some(service) if request.query() == Some("wsdl") => {
                        stats.served.inc();
                        (200, "OK", "text/xml", service.wsdl_xml.clone().into_bytes())
                    }
                    Some(_) => {
                        stats.malformed.inc();
                        (400, "Bad Request", "text/plain", b"expected ?wsdl".to_vec())
                    }
                    None => {
                        stats.not_found.inc();
                        (404, "Not Found", "text/plain", b"no such service".to_vec())
                    }
                },
                ("POST", p) => match shared.services.get(p) {
                    Some(service) => match soap_response(service, &request.body) {
                        Ok((status, xml)) => {
                            stats.served.inc();
                            let reason =
                                if status == 200 { "OK" } else { "Internal Server Error" };
                            (status, reason, "text/xml", xml.into_bytes())
                        }
                        Err(detail) => {
                            stats.malformed.inc();
                            (400, "Bad Request", "text/plain", detail.into_bytes())
                        }
                    },
                    None => {
                        stats.not_found.inc();
                        (404, "Not Found", "text/plain", b"no such service".to_vec())
                    }
                },
                _ => {
                    stats.not_found.inc();
                    (405, "Method Not Allowed", "text/plain", b"GET or POST only".to_vec())
                }
            };
        self.count_response(status);
        let bytes = http::render_response(
            status,
            reason,
            content_type,
            &[("X-Request-Id", &id_hex)],
            &body,
            close,
        );
        Responded { bytes, status, admin: false }
    }
}

/// Status → trace-outcome label without allocating for the ladder's
/// own vocabulary.
fn status_label(status: u16) -> std::borrow::Cow<'static, str> {
    match status {
        200 => "200".into(),
        400 => "400".into(),
        404 => "404".into(),
        405 => "405".into(),
        408 => "408".into(),
        413 => "413".into(),
        500 => "500".into(),
        503 => "503".into(),
        other => other.to_string().into(),
    }
}

/// FNV-1a over the numeric config fields — stable across runs of the
/// same build + tuning, different for any retune.
fn config_hash(config: &WireServerConfig) -> u64 {
    fn mix(h: &mut u64, v: u64) {
        for b in v.to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    mix(&mut h, config.workers as u64);
    mix(&mut h, config.queue_depth as u64);
    mix(&mut h, config.reactors as u64);
    mix(&mut h, config.read_timeout.as_millis() as u64);
    mix(&mut h, config.write_timeout.as_millis() as u64);
    mix(&mut h, config.total_timeout.as_millis() as u64);
    mix(&mut h, config.retry_after_secs);
    mix(&mut h, config.keep_alive_requests as u64);
    mix(&mut h, config.request_seed);
    h
}

/// The running loopback endpoint. Dropping it without calling
/// [`WireServer::shutdown`] detaches the reactors (they exit once
/// asked to stop); tests and `wsitool serve` always shut down
/// explicitly.
pub struct WireServer {
    shared: Arc<Shared>,
    reactors: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `127.0.0.1:port` (0 ⇒ ephemeral) and starts the reactor
    /// threads over a shared nonblocking listener.
    pub fn start(
        port: u16,
        services: BTreeMap<String, HostedService>,
        config: WireServerConfig,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let registry = config
            .metrics
            .clone()
            .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        let shared = Arc::new(Shared {
            services,
            stats: WireStats::new(registry),
            config_hash: config_hash(&config),
            config,
            stop: AtomicBool::new(false),
            addr,
            started: Instant::now(),
        });

        let mut reactors = Vec::new();
        for _ in 0..shared.config.reactors.max(1) {
            let shared = Arc::clone(&shared);
            let listener = listener.try_clone()?;
            reactors.push(std::thread::spawn(move || reactor_loop(&shared, &listener)));
        }

        Ok(WireServer { shared, reactors })
    }

    /// The bound loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A live view of the serving-path counters and gauges (clones
    /// share the underlying atomics, so it stays valid across
    /// [`WireServer::shutdown`]).
    pub fn stats(&self) -> WireStats {
        self.shared.stats.clone()
    }

    /// Asks the reactors to stop accepting without waiting for the
    /// drain — the non-blocking half of [`WireServer::shutdown`].
    pub fn request_stop(&self) {
        request_stop(&self.shared);
    }

    /// Whether a stop has been requested (locally or via the admin
    /// endpoint).
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join every reactor.
    pub fn shutdown(mut self) {
        self.request_stop();
        for handle in self.reactors.drain(..) {
            let _ = handle.join();
        }
    }

    /// Blocks until someone requests a stop — normally a `POST` to
    /// [`SHUTDOWN_PATH`] (used by `wsitool serve`) — then drains and
    /// joins like [`WireServer::shutdown`].
    pub fn wait(self) {
        while !self.stopping() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.shutdown();
    }
}

/// The reactors poll the stop flag every pass, so no wake-up
/// connection is needed — flipping the flag is enough.
fn request_stop(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
}

/// Claims one in-flight slot if the budget allows (CAS so concurrent
/// reactors never overshoot `workers`).
fn try_claim(gauge: &AtomicUsize, budget: usize) -> bool {
    let mut current = gauge.load(Ordering::SeqCst);
    while current < budget {
        match gauge.compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(seen) => current = seen,
        }
    }
    false
}

/// One reactor: accept a batch, promote queued connections into freed
/// slots, drive every owned state machine, nap only when nothing
/// moved. Exits when a stop is requested and its connections have
/// drained.
fn reactor_loop(shared: &Shared, listener: &TcpListener) {
    let env = Env { config: &shared.config, stats: &shared.stats, shared };
    let workers = shared.config.workers.max(1);
    let gauges = &shared.stats.gauges;
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        let mut progressed = false;

        if !stopping {
            for _ in 0..ACCEPT_BATCH {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progressed = true;
                        admit(&env, &mut conns, stream);
                    }
                    // WouldBlock: no pending handshake. Anything else
                    // (EMFILE, aborted handshake) is transient — yield
                    // and retry next pass.
                    Err(_) => break,
                }
            }
        }

        let now = Instant::now();
        // Promotion: queued connections claim freed in-flight slots in
        // arrival order within this reactor.
        for conn in conns.iter_mut() {
            if matches!(conn.phase, Phase::Queued) && try_claim(&gauges.in_flight, workers) {
                gauges.queued.fetch_sub(1, Ordering::SeqCst);
                env.stats.admitted.inc();
                conn.queued = false;
                conn.promote(&env, now);
                progressed = true;
            }
        }

        conns.retain_mut(|conn| match conn.drive(&env, now) {
            Drive::Progress => {
                progressed = true;
                true
            }
            Drive::Idle => true,
            Drive::Close => {
                conn.release(&env);
                progressed = true;
                false
            }
        });

        if stopping && conns.is_empty() {
            return;
        }
        if !progressed {
            std::thread::sleep(IDLE_NAP);
        }
    }
}

/// Walks one new connection down the admission ladder: in-flight slot,
/// bounded queue, or `503` shed.
fn admit(env: &Env<'_>, conns: &mut Vec<Conn>, stream: TcpStream) {
    let shared = env.shared;
    let gauges = &shared.stats.gauges;
    shared.stats.accepted.inc();
    if stream.set_nonblocking(true).is_err() {
        // Socket already dead; nothing to refuse.
        return;
    }
    let now = Instant::now();
    if try_claim(&gauges.in_flight, shared.config.workers.max(1)) {
        gauges.open.fetch_add(1, Ordering::SeqCst);
        shared.stats.conn_opened.inc();
        shared.stats.admitted.inc();
        conns.push(Conn::admitted(stream, env, now));
    } else if try_claim(&gauges.queued, shared.config.queue_depth) {
        gauges.open.fetch_add(1, Ordering::SeqCst);
        shared.stats.conn_opened.inc();
        conns.push(Conn::parked(stream, env, now));
    } else {
        shared.stats.shed.inc();
        let response = env.overload_response("worker pool saturated");
        conns.push(Conn::shed(stream, env, now, response));
    }
}

/// Produces the SOAP response envelope and its HTTP status for one
/// request body. Per WS-I BP 1.1 R1126/R1111, a fault envelope rides
/// on `500`, a normal response on `200`.
fn soap_response(service: &HostedService, body: &[u8]) -> Result<(u16, String), String> {
    let Ok(request_xml) = std::str::from_utf8(body) else {
        return Err("request body is not UTF-8".to_string());
    };
    let response = match &service.defs {
        Ok(defs) => serve_echo(defs, request_xml),
        // Mirrors the in-process exchange's wording exactly — E15
        // equivalence depends on it.
        Err(e) => write_document(
            &soap::fault(
                "Server",
                &format!("server cannot re-parse its own description: {e}"),
            ),
            &WriteOptions::compact(),
        ),
    };
    let status = if soap::is_fault(&response) { 500 } else { 200 };
    Ok((status, response))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_codes_are_all_preresolved_never_fall_back() {
        let registry = Arc::new(MetricsRegistry::new());
        let stats = WireStats::new(Arc::clone(&registry));
        for code in RESPONSE_CODES {
            stats.count_response(code);
        }
        for route in ADMIN_ROUTES {
            stats.count_admin(route);
        }
        assert_eq!(stats.responses_fallback(), 0, "ladder set must be exhaustive");
        for code in RESPONSE_CODES {
            assert_eq!(
                registry.counter(&format!("wire_server_responses_total{{code=\"{code}\"}}")),
                1
            );
        }
        // A code outside the vocabulary ticks the fallback counter
        // rather than taking the registry lock by name.
        stats.count_response(418);
        assert_eq!(stats.responses_fallback(), 1);
        assert_eq!(registry.counter("wire_server_responses_fallback_total"), 1);
    }

    #[test]
    fn request_ids_are_unique_and_seed_determined() {
        let seed = 0xABCD_EF01_2345_6789u64;
        let ids: Vec<u64> = (0..10_000u64)
            .map(|n| splitmix64(seed ^ n.wrapping_mul(0xA076_1D64_78BD_642F)))
            .collect();
        let unique: std::collections::BTreeSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "bijective stream never collides");
        let again: Vec<u64> = (0..10_000u64)
            .map(|n| splitmix64(seed ^ n.wrapping_mul(0xA076_1D64_78BD_642F)))
            .collect();
        assert_eq!(ids, again);
    }

    #[test]
    fn config_hash_tracks_tuning() {
        let a = WireServerConfig::default();
        let mut b = WireServerConfig::default();
        assert_eq!(config_hash(&a), config_hash(&b));
        b.workers += 1;
        assert_ne!(config_hash(&a), config_hash(&b));
        let mut c = WireServerConfig::default();
        c.request_seed ^= 1;
        assert_ne!(config_hash(&a), config_hash(&c));
    }
}
