//! The interposed fault proxy: sits between the probe client and the
//! loopback endpoint and damages *real wire bytes* according to the
//! seeded [`FaultPlan`] — the socket-level half of the chaos campaign.
//!
//! Fault decisions are pure functions of the request path, so the
//! proxy and the campaign's accounting (which derives the same site
//! keys from the same path grammar) always agree on what was injected
//! where:
//!
//! * `wire{path}` — the request-side [`WireFault`]s
//!   (truncate-envelope, wrong-namespace, drop-response), now applied
//!   to real bytes in transit;
//! * `sock{path}` — the [`SocketFault`]s (delay past the client's
//!   read deadline, truncate-at-byte-N, RST mid-body, garbage status
//!   line).
//!
//! The RST fault needs no unsafe `setsockopt`: the proxy deliberately
//! reads only the request *head*, leaves the body bytes unread in the
//! kernel receive buffer, writes a partial response, and drops the
//! socket — Linux answers a close-with-unread-data with a genuine RST.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::faults::{FaultPlan, SocketFault, WireFault};
use crate::obs::MetricsRegistry;

use super::http;

/// Hard cap on anything the proxy buffers (a chaos tool must not be
/// its own memory bomb).
const MAX_RELAY: usize = 4 << 20;

/// The running proxy.
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    handle: Option<JoinHandle<()>>,
}

struct ProxyShared {
    upstream: SocketAddr,
    plan: FaultPlan,
    /// The probe client's read deadline in milliseconds; injected
    /// delays are sized past it.
    client_deadline_ms: u64,
    stop: AtomicBool,
    /// Connections on which at least one fault was applied.
    faulted: AtomicUsize,
    /// Optional telemetry registry: relayed-connection and
    /// injected-fault counters (`wire_proxy_*_total`).
    metrics: Option<Arc<MetricsRegistry>>,
}

impl FaultProxy {
    /// Binds an ephemeral loopback port and starts relaying to
    /// `upstream`. Connections are handled sequentially — the chaos
    /// probe pass is sequential by design (determinism), so a
    /// single-lane proxy adds no bottleneck.
    pub fn start(
        upstream: SocketAddr,
        plan: FaultPlan,
        client_deadline_ms: u64,
    ) -> io::Result<FaultProxy> {
        FaultProxy::start_with_metrics(upstream, plan, client_deadline_ms, None)
    }

    /// [`FaultProxy::start`] with a telemetry registry attached:
    /// `wire_proxy_connections_total` counts every relayed connection,
    /// `wire_proxy_faults_injected_total` those carrying at least one
    /// applied fault. Observe-only — relay behaviour is unchanged.
    pub fn start_with_metrics(
        upstream: SocketAddr,
        plan: FaultPlan,
        client_deadline_ms: u64,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream,
            plan,
            client_deadline_ms,
            stop: AtomicBool::new(false),
            faulted: AtomicUsize::new(0),
            metrics,
        });
        let loop_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                if loop_shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                relay_connection(&loop_shared, stream);
            }
        });
        Ok(FaultProxy {
            addr,
            shared,
            handle: Some(handle),
        })
    }

    /// The proxy's listening address (point the probe client here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections on which at least one fault was applied so far.
    pub fn faulted_connections(&self) -> usize {
        self.shared.faulted.load(Ordering::SeqCst)
    }

    /// Stops the accept loop and joins the relay thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The request head as the proxy needs it: raw start line, raw header
/// block, the path, and the declared body length.
struct Head {
    method: String,
    target: String,
    soap_action: Option<String>,
    content_length: usize,
}

/// Reads the request head byte-by-byte directly off the socket —
/// deliberately unbuffered, so the body stays in the kernel receive
/// buffer (the RST fault depends on that).
fn read_head(stream: &mut TcpStream) -> Option<Head> {
    let mut raw = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        if raw.len() > 16 * 1024 {
            return None;
        }
        match stream.read(&mut byte) {
            Ok(1) => raw.push(byte[0]),
            _ => return None,
        }
    }
    let text = String::from_utf8_lossy(&raw);
    let mut lines = text.split("\r\n");
    let mut start = lines.next()?.split_whitespace();
    let method = start.next()?.to_string();
    let target = start.next()?.to_string();
    let mut content_length = 0;
    let mut soap_action = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        if name == "content-length" {
            content_length = value.trim().parse().unwrap_or(0);
        } else if name == "soapaction" {
            soap_action = Some(value.trim().trim_matches('"').to_string());
        }
    }
    Some(Head {
        method,
        target,
        soap_action,
        content_length,
    })
}

fn read_exact_body(stream: &mut TcpStream, len: usize) -> Option<Vec<u8>> {
    if len > MAX_RELAY {
        return None;
    }
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match stream.read(&mut body[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(_) => return None,
        }
    }
    Some(body)
}

/// Applies a request-side wire fault to the real body bytes.
fn damage_request(body: Vec<u8>, fault: WireFault) -> Vec<u8> {
    let Ok(text) = String::from_utf8(body) else {
        return Vec::new();
    };
    match fault {
        WireFault::TruncateEnvelope => {
            let mut cut = text.len() * 3 / 5;
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text[..cut].to_string().into_bytes()
        }
        WireFault::WrongNamespace => text
            .replace(
                "http://schemas.xmlsoap.org/soap/envelope/",
                "http://schemas.xmlsoap.org/soap/envelope-tampered/",
            )
            .into_bytes(),
        // Handled after the upstream exchange; the request is clean.
        WireFault::DropResponse => text.into_bytes(),
    }
}

fn relay_connection(shared: &ProxyShared, mut downstream: TcpStream) {
    let _ = downstream.set_read_timeout(Some(Duration::from_millis(2000)));
    let _ = downstream.set_write_timeout(Some(Duration::from_millis(2000)));
    let Some(head) = read_head(&mut downstream) else {
        return;
    };
    let path = head.target.split('?').next().unwrap_or(&head.target);
    let wire = shared.plan.wire_fault(&format!("wire{path}"));
    let sock = shared
        .plan
        .socket_fault(&format!("sock{path}"), shared.client_deadline_ms);
    if let Some(metrics) = &shared.metrics {
        metrics.inc("wire_proxy_connections_total");
    }
    if wire.is_some() || sock.is_some() {
        shared.faulted.fetch_add(1, Ordering::SeqCst);
        if let Some(metrics) = &shared.metrics {
            metrics.inc("wire_proxy_faults_injected_total");
        }
    }

    // Faults that never touch the upstream.
    match sock {
        Some(SocketFault::ResetMidBody) if head.content_length > 0 => {
            // The body is still unread in the kernel buffer: write a
            // partial response, then drop the socket — the close with
            // unread data makes the kernel answer with a genuine RST.
            let _ = downstream.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Length: 4096\r\n\r\npartial-body-then-reset",
            );
            let _ = downstream.flush();
            std::thread::sleep(Duration::from_millis(5));
            return;
        }
        Some(SocketFault::GarbageStatus) => {
            // Drain the body first (an unread body would turn the
            // close into a RST and mask the framing fault).
            let _ = read_exact_body(&mut downstream, head.content_length);
            let _ = downstream.write_all(b"ZZTP/0.9 999 @@garbage@@\r\n\r\n");
            let _ = downstream.flush();
            return;
        }
        _ => {}
    }

    let Some(body) = read_exact_body(&mut downstream, head.content_length) else {
        return;
    };
    let body = match wire {
        Some(fault) => damage_request(body, fault),
        None => body,
    };

    // Forward to the real endpoint on a fresh, close-delimited
    // connection and slurp the whole raw response.
    let Ok(mut upstream) =
        TcpStream::connect_timeout(&shared.upstream, Duration::from_millis(1000))
    else {
        return;
    };
    let _ = upstream.set_read_timeout(Some(Duration::from_millis(2000)));
    let _ = upstream.set_write_timeout(Some(Duration::from_millis(2000)));
    if http::write_request(
        &mut upstream,
        &head.method,
        &head.target,
        "127.0.0.1",
        head.soap_action.as_deref(),
        &body,
        true,
    )
    .is_err()
    {
        return;
    }
    let mut response = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match upstream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                response.extend_from_slice(&chunk[..n]);
                if response.len() > MAX_RELAY {
                    return;
                }
            }
            Err(_) => break,
        }
    }

    if wire == Some(WireFault::DropResponse) {
        // Forwarded, served, then lost in transit: close without
        // writing a byte back.
        return;
    }
    match sock {
        Some(SocketFault::DelayPastDeadline { ms }) => {
            // Past the client's read deadline: it observes a timeout
            // long before this write happens.
            std::thread::sleep(Duration::from_millis(ms));
            let _ = downstream.write_all(&response);
        }
        Some(SocketFault::TruncateBody { at }) => {
            let cut = at.min(response.len());
            let _ = downstream.write_all(&response[..cut]);
        }
        _ => {
            let _ = downstream.write_all(&response);
        }
    }
    let _ = downstream.flush();
}
