//! Minimal, hardened HTTP/1.1 framing for the loopback SOAP transport.
//!
//! This is deliberately not a general HTTP implementation: it supports
//! exactly what a WS-I Basic Profile SOAP 1.1 binding needs — `POST`
//! with a `Content-Length` body, `GET` for `?wsdl` retrieval,
//! keep-alive — and enforces the limits the hardened server relies on:
//! request-line and header caps (read *before* buffering anything
//! else) and a body-size cap checked against the declared
//! `Content-Length` before a single body byte is read, so an oversized
//! request is rejected with `413` without allocating for it.
//!
//! All reads honour the socket deadlines the caller configured; a
//! timed-out read surfaces as [`HttpError::Timeout`], which the server
//! maps to `408` (the slow-loris defense) and the client maps to a
//! retryable transport error.

use std::fmt;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Size limits enforced while reading a message off the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Maximum request/status line length in bytes.
    pub max_start_line: usize,
    /// Maximum size of one header line in bytes.
    pub max_header_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Maximum declared body size in bytes; larger declarations are
    /// rejected before any body byte is read.
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_start_line: 4096,
            max_header_line: 8192,
            max_headers: 64,
            max_body: 1 << 20,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` or `POST` (anything else is rejected upstream).
    pub method: String,
    /// Request target as sent (path plus optional `?query`).
    pub target: String,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Message body (empty for bodyless requests).
    pub body: Vec<u8>,
    /// Whether the peer asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// The target's path component (query stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's query component, if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase as sent.
    pub reason: String,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// The body decoded as UTF-8, if it is valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Framing-level failures while reading a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before sending anything — the
    /// clean end of a keep-alive session, not a protocol error.
    ConnectionClosed,
    /// A socket deadline expired mid-message.
    Timeout,
    /// The peer reset the connection.
    Reset,
    /// Any other socket-level failure (stable, OS-independent text).
    Io(String),
    /// The start line exceeded [`HttpLimits::max_start_line`].
    StartLineTooLong,
    /// A header line exceeded [`HttpLimits::max_header_line`] or the
    /// header count exceeded [`HttpLimits::max_headers`].
    HeadersTooLarge,
    /// The request/status line was not parseable.
    BadStartLine(String),
    /// A header line was not parseable.
    BadHeader(String),
    /// The declared `Content-Length` exceeds [`HttpLimits::max_body`].
    BodyTooLarge {
        /// Declared length.
        declared: usize,
        /// Configured cap.
        limit: usize,
    },
    /// The `Content-Length` header was missing or unreadable on a
    /// message that requires one.
    BadContentLength,
    /// The connection ended before the declared body arrived.
    TruncatedBody {
        /// Bytes received.
        got: usize,
        /// Bytes declared.
        want: usize,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Timeout => write!(f, "read timeout"),
            HttpError::Reset => write!(f, "connection reset"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::StartLineTooLong => write!(f, "start line too long"),
            HttpError::HeadersTooLarge => write!(f, "headers too large"),
            HttpError::BadStartLine(line) => write!(f, "malformed start line: {line:?}"),
            HttpError::BadHeader(line) => write!(f, "malformed header: {line:?}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds the {limit}-byte cap")
            }
            HttpError::BadContentLength => write!(f, "missing or unreadable Content-Length"),
            HttpError::TruncatedBody { got, want } => {
                write!(f, "truncated body: got {got} of {want} bytes")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Maps an I/O failure to a stable, OS-independent [`HttpError`].
///
/// Socket error text varies by platform and locale; classification
/// (and therefore campaign determinism) must not, so everything is
/// collapsed to a closed set here.
pub fn io_error(e: &std::io::Error) -> HttpError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted | ErrorKind::BrokenPipe => {
            HttpError::Reset
        }
        ErrorKind::UnexpectedEof => HttpError::ConnectionClosed,
        kind => HttpError::Io(format!("{kind:?}")),
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, capped at `max`
/// bytes. Returns `Ok(None)` on clean EOF before the first byte.
fn read_line(
    reader: &mut BufReader<&TcpStream>,
    max: usize,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::TruncatedBody { got: line.len(), want: line.len() + 1 });
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return match String::from_utf8(line) {
                        Ok(s) => Ok(Some(s)),
                        Err(_) => Err(HttpError::BadHeader("non-UTF-8 line".to_string())),
                    };
                }
                line.push(byte[0]);
                if line.len() > max {
                    return Err(HttpError::StartLineTooLong);
                }
            }
            Err(e) => return Err(io_error(&e)),
        }
    }
}

/// Reads the header block (after the start line) under the limits.
fn read_headers(
    reader: &mut BufReader<&TcpStream>,
    limits: &HttpLimits,
) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, limits.max_header_line) {
            Ok(Some(line)) => line,
            Ok(None) => return Err(HttpError::ConnectionClosed),
            Err(HttpError::StartLineTooLong) => return Err(HttpError::HeadersTooLarge),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(truncate_for_display(&line)));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

/// Reads the declared body, enforcing [`HttpLimits::max_body`]
/// *before* the first body byte is buffered.
fn read_body(
    reader: &mut BufReader<&TcpStream>,
    headers: &[(String, String)],
    limits: &HttpLimits,
    required: bool,
) -> Result<Vec<u8>, HttpError> {
    let declared = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| HttpError::BadContentLength));
    let declared = match declared {
        Some(Ok(n)) => n,
        Some(Err(e)) => return Err(e),
        None if required => return Err(HttpError::BadContentLength),
        None => return Ok(Vec::new()),
    };
    if declared > limits.max_body {
        return Err(HttpError::BodyTooLarge { declared, limit: limits.max_body });
    }
    let mut body = vec![0u8; declared];
    let mut got = 0;
    while got < declared {
        match reader.read(&mut body[got..]) {
            Ok(0) => return Err(HttpError::TruncatedBody { got, want: declared }),
            Ok(n) => got += n,
            Err(e) => return Err(io_error(&e)),
        }
    }
    Ok(body)
}

fn truncate_for_display(line: &str) -> String {
    let mut cut = line.len().min(80);
    while cut > 0 && !line.is_char_boundary(cut) {
        cut -= 1;
    }
    line[..cut].to_string()
}

/// Reads one request off the stream. `Ok(None)` means the peer closed
/// cleanly between requests (the keep-alive end state).
pub fn read_request(
    stream: &TcpStream,
    limits: &HttpLimits,
) -> Result<Option<Request>, HttpError> {
    let mut reader = BufReader::new(stream);
    let Some(start) = read_line(&mut reader, limits.max_start_line)? else {
        return Ok(None);
    };
    let mut parts = start.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), t.to_string(), v.to_string())
        }
        _ => return Err(HttpError::BadStartLine(truncate_for_display(&start))),
    };
    let headers = read_headers(&mut reader, limits)?;
    let body = read_body(&mut reader, &headers, limits, method == "POST")?;
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        // HTTP/1.1 defaults to keep-alive; 1.0 to close.
        _ => version == "HTTP/1.1",
    };
    Ok(Some(Request { method, target, headers, body, keep_alive }))
}

/// Reads one response off the stream.
pub fn read_response(stream: &TcpStream, limits: &HttpLimits) -> Result<Response, HttpError> {
    let mut reader = BufReader::new(stream);
    let Some(start) = read_line(&mut reader, limits.max_start_line)? else {
        return Err(HttpError::ConnectionClosed);
    };
    let mut parts = start.splitn(3, ' ');
    let (version, status, reason) = (parts.next(), parts.next(), parts.next());
    let status = match (version, status) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| HttpError::BadStartLine(truncate_for_display(&start)))?,
        _ => return Err(HttpError::BadStartLine(truncate_for_display(&start))),
    };
    let headers = read_headers(&mut reader, limits)?;
    let body = read_body(&mut reader, &headers, limits, false)?;
    Ok(Response {
        status,
        reason: reason.unwrap_or("").to_string(),
        headers,
        body,
    })
}

/// A request head parsed from a complete in-memory head block — the
/// incremental (nonblocking) server's parser. Where the blocking
/// [`read_request`] pulls bytes off the socket itself, the event loop
/// accumulates them into a buffer and hands the finished block here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// `GET` or `POST` (anything else is rejected upstream).
    pub method: String,
    /// Request target as sent (path plus optional `?query`).
    pub target: String,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Whether the peer asked to keep the connection open.
    pub keep_alive: bool,
}

/// Finds the end of the head block in an accumulation buffer: the
/// index one past the blank line, accepting both CRLF and bare-LF
/// line endings (mirroring [`read_line`]'s tolerance).
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf[i + 1..].first() == Some(&b'\n') {
                return Some(i + 2);
            }
            if buf[i + 1..].starts_with(b"\r\n") {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Parses a complete head block (start line + headers + blank line)
/// under the same limits and error taxonomy as the blocking reader:
/// an over-long start line is [`HttpError::StartLineTooLong`], header
/// floods are [`HttpError::HeadersTooLarge`], unparseable lines are
/// `BadStartLine`/`BadHeader`.
pub fn parse_request_head(head: &[u8], limits: &HttpLimits) -> Result<RequestHead, HttpError> {
    let mut lines = head.split(|&b| b == b'\n').map(|line| {
        let line = if line.last() == Some(&b'\r') { &line[..line.len() - 1] } else { line };
        std::str::from_utf8(line).map_err(|_| HttpError::BadHeader("non-UTF-8 line".to_string()))
    });
    let start = match lines.next() {
        Some(Ok(s)) => s,
        Some(Err(e)) => return Err(e),
        None => return Err(HttpError::BadStartLine(String::new())),
    };
    if start.len() > limits.max_start_line {
        return Err(HttpError::StartLineTooLong);
    }
    let mut parts = start.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), t.to_string(), v.to_string())
        }
        _ => return Err(HttpError::BadStartLine(truncate_for_display(start))),
    };
    let mut headers = Vec::new();
    for line in lines {
        let line = line?;
        if line.is_empty() {
            break;
        }
        if line.len() > limits.max_header_line || headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(truncate_for_display(line)));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        // HTTP/1.1 defaults to keep-alive; 1.0 to close.
        _ => version == "HTTP/1.1",
    };
    Ok(RequestHead { method, target, headers, keep_alive })
}

/// The declared `Content-Length` of a parsed head, under the same
/// rules as the blocking [`read_body`]: over-cap declarations are
/// rejected *before* any body byte is buffered, a `POST` without a
/// parseable length is [`HttpError::BadContentLength`].
pub fn declared_body_len(
    headers: &[(String, String)],
    limits: &HttpLimits,
    required: bool,
) -> Result<usize, HttpError> {
    let declared = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| HttpError::BadContentLength));
    let declared = match declared {
        Some(Ok(n)) => n,
        Some(Err(e)) => return Err(e),
        None if required => return Err(HttpError::BadContentLength),
        None => return Ok(0),
    };
    if declared > limits.max_body {
        return Err(HttpError::BodyTooLarge { declared, limit: limits.max_body });
    }
    Ok(declared)
}

/// Renders one complete response (head + body) into a buffer — the
/// nonblocking server's write path. `extra` headers (e.g.
/// `Retry-After` on a `503` shed) are appended after the standard
/// trio; with an empty `extra` slice the bytes are identical to what
/// [`write_response`] puts on the wire, which is what keeps the E15
/// loopback survey bit-identical across the server rewrite.
pub fn render_response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
    close: bool,
) -> Vec<u8> {
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Serializes and writes one response. `close` adds
/// `Connection: close`; keep-alive is otherwise implied by HTTP/1.1.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> Result<(), HttpError> {
    let bytes = render_response(status, reason, content_type, &[], body, close);
    stream.write_all(&bytes).map_err(|e| io_error(&e))?;
    stream.flush().map_err(|e| io_error(&e))
}

/// Serializes and writes one request.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    target: &str,
    host: &str,
    soap_action: Option<&str>,
    body: &[u8],
    close: bool,
) -> Result<(), HttpError> {
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {host}\r\nConnection: {connection}\r\n"
    );
    if let Some(action) = soap_action {
        head.push_str(&format!(
            "Content-Type: text/xml; charset=utf-8\r\nSOAPAction: \"{action}\"\r\n"
        ));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).map_err(|e| io_error(&e))?;
    stream.write_all(body).map_err(|e| io_error(&e))?;
    stream.flush().map_err(|e| io_error(&e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn request_roundtrip_with_body() {
        let (mut client, server) = pair();
        write_request(
            &mut client,
            "POST",
            "/svc",
            "127.0.0.1",
            Some("echo"),
            b"<x/>",
            false,
        )
        .unwrap();
        let req = read_request(&server, &HttpLimits::default())
            .unwrap()
            .expect("one request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/svc");
        assert_eq!(req.body, b"<x/>");
        assert!(req.keep_alive);
        assert_eq!(req.header("soapaction"), Some("\"echo\""));
    }

    #[test]
    fn query_is_split_from_the_path() {
        let (mut client, server) = pair();
        write_request(&mut client, "GET", "/svc?wsdl", "h", None, b"", true).unwrap();
        let req = read_request(&server, &HttpLimits::default()).unwrap().unwrap();
        assert_eq!(req.path(), "/svc");
        assert_eq!(req.query(), Some("wsdl"));
        assert!(!req.keep_alive);
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_reading_it() {
        let (mut client, server) = pair();
        use std::io::Write;
        // Declare a huge body but send none of it: the limit check must
        // fire from the headers alone.
        client
            .write_all(b"POST /svc HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
            .unwrap();
        let limits = HttpLimits { max_body: 1024, ..HttpLimits::default() };
        let err = read_request(&server, &limits).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { declared: 99999999, limit: 1024 }));
    }

    #[test]
    fn overlong_request_line_is_rejected() {
        let (mut client, server) = pair();
        use std::io::Write;
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        client.write_all(long.as_bytes()).unwrap();
        let err = read_request(&server, &HttpLimits::default()).unwrap_err();
        assert_eq!(err, HttpError::StartLineTooLong);
    }

    #[test]
    fn header_flood_is_rejected() {
        let (mut client, server) = pair();
        use std::io::Write;
        let mut msg = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            msg.push_str(&format!("X-H{i}: v\r\n"));
        }
        msg.push_str("\r\n");
        client.write_all(msg.as_bytes()).unwrap();
        let err = read_request(&server, &HttpLimits::default()).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
    }

    #[test]
    fn missing_content_length_on_post_is_rejected() {
        let (mut client, server) = pair();
        use std::io::Write;
        client.write_all(b"POST /svc HTTP/1.1\r\n\r\n").unwrap();
        let err = read_request(&server, &HttpLimits::default()).unwrap_err();
        assert_eq!(err, HttpError::BadContentLength);
    }

    #[test]
    fn clean_close_before_any_byte_is_not_an_error() {
        let (client, server) = pair();
        drop(client);
        assert_eq!(read_request(&server, &HttpLimits::default()).unwrap(), None);
    }

    #[test]
    fn response_roundtrip() {
        let (client, mut server) = pair();
        write_response(&mut server, 200, "OK", "text/xml", b"<ok/>", true).unwrap();
        let resp = read_response(&client, &HttpLimits::default()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"<ok/>");
        assert_eq!(resp.body_str(), Some("<ok/>"));
    }

    #[test]
    fn garbage_status_line_is_a_framing_error() {
        let (client, mut server) = pair();
        use std::io::Write;
        server.write_all(b"ZZTP?! nonsense\r\n\r\n").unwrap();
        let err = read_response(&client, &HttpLimits::default()).unwrap_err();
        assert!(matches!(err, HttpError::BadStartLine(_)), "{err:?}");
    }

    #[test]
    fn truncated_body_is_detected() {
        let (client, mut server) = pair();
        use std::io::Write;
        server
            .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc")
            .unwrap();
        drop(server);
        let err = read_response(&client, &HttpLimits::default()).unwrap_err();
        assert_eq!(err, HttpError::TruncatedBody { got: 3, want: 10 });
    }
}
