//! Per-connection state machine for the readiness-driven server.
//!
//! Each accepted socket becomes one [`Conn`] owned by exactly one
//! reactor thread — connection state is **thread-confined by
//! construction** (see docs/CONCURRENCY.md), so the machine needs no
//! locks: the only cross-thread state it touches is the shared
//! admission [`Gauges`] (atomics) and the handle-based [`WireStats`]
//! counters.
//!
//! The machine walks the degradation ladder of DESIGN.md §15:
//!
//! * `Queued` — admitted past the accept gate but waiting for an
//!   in-flight slot; not a single byte is read while queued, and the
//!   wait is bounded (`503` + `Retry-After` at the read deadline).
//! * `ReadHead`/`ReadBody` — nonblocking incremental parsing under the
//!   framing caps (`413` before buffering, `400` on malformed bytes)
//!   and the read/total deadlines (`408` mid-request, silent close for
//!   idle keep-alive).
//! * `Write` — nonblocking response flush under the write deadline; a
//!   peer that stops reading is dropped, never waited on.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use super::http::{self, HttpError, Request, RequestHead};
use super::server::{Env, PendingResponse};

/// Bytes read per `read()` call; reads per conn per reactor pass are
/// capped so one fast peer cannot starve the rest of the loop.
const READ_CHUNK: usize = 4096;
const MAX_IO_ROUNDS: usize = 16;

/// Where a connection is in its lifecycle.
pub(crate) enum Phase {
    /// Past the accept gate, waiting for an in-flight slot.
    Queued,
    /// Accumulating the request head.
    ReadHead,
    /// Accumulating the declared body.
    ReadBody { head: RequestHead, want: usize },
    /// Flushing the response buffer.
    Write,
}

/// One `drive()` verdict.
#[derive(PartialEq, Eq)]
pub(crate) enum Drive {
    /// Bytes moved or state advanced this pass.
    Progress,
    /// Nothing to do until the socket or a deadline wakes us.
    Idle,
    /// The connection is finished; the reactor reclaims it.
    Close,
}

/// One live connection.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) phase: Phase,
    /// Unconsumed bytes read off the socket (head accumulation and
    /// keep-alive pipelining).
    inbuf: Vec<u8>,
    /// The body being assembled for the current request.
    body: Vec<u8>,
    /// The rendered response being flushed.
    outbuf: Vec<u8>,
    written: usize,
    /// Requests fully served on this connection.
    pub(crate) served: usize,
    /// Holds one of the `workers` in-flight slots.
    pub(crate) admitted: bool,
    /// Counted in the queued gauge.
    pub(crate) queued: bool,
    /// Accept-gate shed: never admitted, only flushes its `503`.
    pub(crate) shedding: bool,
    close_after_write: bool,
    read_deadline: Instant,
    write_deadline: Instant,
    total_deadline: Instant,
    /// Armed when a request is dispatched; resolved when its response
    /// is fully flushed (feeds `wire_server_request_ns` — or the
    /// admin-plane histogram — plus the optional trace span, keyed by
    /// the request's deterministic id).
    pending: Option<PendingResponse>,
}

impl Conn {
    /// A connection that just won an in-flight slot.
    pub(crate) fn admitted(stream: TcpStream, env: &Env<'_>, now: Instant) -> Conn {
        Conn::new(stream, Phase::ReadHead, env, now, true, false)
    }

    /// A connection parked in the bounded queue.
    pub(crate) fn parked(stream: TcpStream, env: &Env<'_>, now: Instant) -> Conn {
        Conn::new(stream, Phase::Queued, env, now, false, true)
    }

    /// An accept-gate shed: the pre-rendered `503` is all it writes.
    pub(crate) fn shed(stream: TcpStream, env: &Env<'_>, now: Instant, response: Vec<u8>) -> Conn {
        let mut conn = Conn::new(stream, Phase::Write, env, now, false, false);
        conn.shedding = true;
        conn.close_after_write = true;
        conn.outbuf = response;
        conn
    }

    fn new(
        stream: TcpStream,
        phase: Phase,
        env: &Env<'_>,
        now: Instant,
        admitted: bool,
        queued: bool,
    ) -> Conn {
        Conn {
            stream,
            phase,
            inbuf: Vec::new(),
            body: Vec::new(),
            outbuf: Vec::new(),
            written: 0,
            served: 0,
            admitted,
            queued,
            shedding: false,
            close_after_write: false,
            read_deadline: now + env.config.read_timeout,
            write_deadline: now + env.config.write_timeout,
            total_deadline: now + env.config.total_timeout,
            pending: None,
        }
    }

    /// Promotes a queued connection into a just-acquired in-flight
    /// slot (the caller already moved the gauges).
    pub(crate) fn promote(&mut self, env: &Env<'_>, now: Instant) {
        debug_assert!(matches!(self.phase, Phase::Queued));
        self.queued = false;
        self.admitted = true;
        self.phase = Phase::ReadHead;
        self.read_deadline = now + env.config.read_timeout;
    }

    /// Whether the current request is partially on the wire (a
    /// deadline hit now is a mid-request `408`, not an idle close).
    fn mid_request(&self) -> bool {
        match self.phase {
            Phase::ReadHead => !self.inbuf.is_empty(),
            Phase::ReadBody { .. } => true,
            _ => false,
        }
    }

    /// Switches to flushing a rendered response.
    fn start_write(&mut self, response: Vec<u8>, now: Instant, env: &Env<'_>) {
        self.outbuf = response;
        self.written = 0;
        self.close_after_write = true;
        self.write_deadline = now + env.config.write_timeout;
        self.phase = Phase::Write;
    }

    /// Advances the state machine one pass. Never blocks.
    pub(crate) fn drive(&mut self, env: &Env<'_>, now: Instant) -> Drive {
        match self.phase {
            Phase::Queued => self.drive_queued(env, now),
            Phase::ReadHead | Phase::ReadBody { .. } => self.drive_read(env, now),
            Phase::Write => self.drive_write(env, now),
        }
    }

    fn drive_queued(&mut self, env: &Env<'_>, now: Instant) -> Drive {
        if now >= self.read_deadline || now >= self.total_deadline {
            // Bounded queueing: a connection never waits unboundedly
            // for a slot — it is shed with the same well-formed 503
            // the accept gate uses.
            env.stats.queue_timeouts.inc();
            self.start_write(env.overload_response("queue wait exceeded"), now, env);
            return Drive::Progress;
        }
        Drive::Idle
    }

    fn drive_read(&mut self, env: &Env<'_>, now: Instant) -> Drive {
        if now >= self.read_deadline || now >= self.total_deadline {
            // Slow loris / stalled body: answer 408 when the peer owes
            // us bytes (or never sent any request at all); an idle
            // keep-alive connection is closed without ceremony.
            if self.served == 0 || self.mid_request() {
                env.stats.timeouts.inc();
                env.count_response(408);
                let response = http::render_response(
                    408,
                    "Request Timeout",
                    "text/plain",
                    &[],
                    b"read deadline exceeded",
                    true,
                );
                self.start_write(response, now, env);
                return Drive::Progress;
            }
            return Drive::Close;
        }

        let mut progressed = false;
        for _ in 0..MAX_IO_ROUNDS {
            // Consume already-buffered bytes before touching the
            // socket (keep-alive pipelining).
            match self.step_parse(env, now) {
                Step::Advanced => {
                    progressed = true;
                    if !matches!(self.phase, Phase::ReadHead | Phase::ReadBody { .. }) {
                        return Drive::Progress;
                    }
                    continue;
                }
                Step::NeedBytes => {}
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed. Between requests this is the clean
                    // keep-alive end state; mid-request there is no
                    // one left to answer.
                    return Drive::Close;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Drive::Close, // reset / fatal: nothing to say
            }
        }
        if progressed {
            Drive::Progress
        } else {
            Drive::Idle
        }
    }

    /// One parse step over the buffered bytes (no socket I/O).
    fn step_parse(&mut self, env: &Env<'_>, now: Instant) -> Step {
        match &self.phase {
            Phase::ReadHead => {
                let Some(end) = http::find_head_end(&self.inbuf) else {
                    return self.check_head_caps(env, now);
                };
                let head = http::parse_request_head(&self.inbuf[..end], &env.config.limits);
                self.inbuf.drain(..end);
                let head = match head {
                    Ok(head) => head,
                    Err(e) => {
                        self.refuse(env, now, &e);
                        return Step::Advanced;
                    }
                };
                let want = match http::declared_body_len(
                    &head.headers,
                    &env.config.limits,
                    head.method == "POST",
                ) {
                    Ok(want) => want,
                    Err(e) => {
                        self.refuse(env, now, &e);
                        return Step::Advanced;
                    }
                };
                self.body.clear();
                self.phase = Phase::ReadBody { head, want };
                Step::Advanced
            }
            Phase::ReadBody { want, .. } => {
                let want = *want;
                if self.body.len() < want && !self.inbuf.is_empty() {
                    let take = (want - self.body.len()).min(self.inbuf.len());
                    self.body.extend_from_slice(&self.inbuf[..take]);
                    self.inbuf.drain(..take);
                }
                if self.body.len() < want {
                    return Step::NeedBytes;
                }
                self.dispatch(env, now);
                Step::Advanced
            }
            _ => Step::NeedBytes,
        }
    }

    /// Head caps while the head is still incomplete: an over-long
    /// start line or header flood is refused *before* buffering more.
    fn check_head_caps(&mut self, env: &Env<'_>, now: Instant) -> Step {
        let limits = &env.config.limits;
        let no_line_yet = !self.inbuf.contains(&b'\n');
        if no_line_yet && self.inbuf.len() > limits.max_start_line {
            self.refuse(env, now, &HttpError::StartLineTooLong);
            return Step::Advanced;
        }
        let head_cap = limits.max_start_line + (limits.max_headers + 1) * limits.max_header_line;
        if self.inbuf.len() > head_cap {
            self.refuse(env, now, &HttpError::HeadersTooLarge);
            return Step::Advanced;
        }
        Step::NeedBytes
    }

    /// Maps a framing error onto the refusal ladder (the same status
    /// mapping the blocking server used) and starts the response.
    fn refuse(&mut self, env: &Env<'_>, now: Instant, error: &HttpError) {
        let (status, reason, body) = match error {
            HttpError::BodyTooLarge { .. }
            | HttpError::StartLineTooLong
            | HttpError::HeadersTooLarge => {
                env.stats.oversized.inc();
                (413, "Payload Too Large", "request exceeds the configured limits")
            }
            _ => {
                env.stats.malformed.inc();
                (400, "Bad Request", "malformed request")
            }
        };
        env.count_response(status);
        let response =
            http::render_response(status, reason, "text/plain", &[], body.as_bytes(), true);
        self.start_write(response, now, env);
    }

    /// A complete request: decide keep-alive vs close (budget,
    /// shutdown drain, pressure demotion), dispatch, start the flush.
    fn dispatch(&mut self, env: &Env<'_>, now: Instant) {
        let Phase::ReadBody { head, .. } = std::mem::replace(&mut self.phase, Phase::ReadHead)
        else {
            unreachable!("dispatch outside ReadBody");
        };
        let request = Request {
            method: head.method,
            target: head.target,
            headers: head.headers,
            body: std::mem::take(&mut self.body),
            keep_alive: head.keep_alive,
        };
        let mut close = !request.keep_alive
            || self.served + 1 == env.config.keep_alive_requests
            || env.stopping();
        if !close && env.under_pressure() {
            // Keep-alive demotion: while connections are queued, every
            // response hands its slot back instead of pinning it.
            env.stats.demoted.inc();
            close = true;
        }
        let request_id = env.next_request_id();
        // The path is only captured for the trace span — the serving
        // path never allocates for telemetry that is switched off.
        let path = env.config.trace.is_some().then(|| request.path().to_string());
        let responded = env.respond(&request, close, request_id);
        self.pending = Some(PendingResponse {
            started: now,
            request_id,
            status: responded.status,
            admin: responded.admin,
            path,
        });
        self.outbuf = responded.bytes;
        self.written = 0;
        self.close_after_write = close;
        self.write_deadline = now + env.config.write_timeout;
        self.phase = Phase::Write;
    }

    fn drive_write(&mut self, env: &Env<'_>, now: Instant) -> Drive {
        if now >= self.write_deadline {
            // A peer that stops reading its response is dropped — it
            // cannot pin a connection slot.
            env.stats.write_stalls.inc();
            return Drive::Close;
        }
        let mut progressed = false;
        for _ in 0..MAX_IO_ROUNDS {
            if self.written == self.outbuf.len() {
                if let Some(pending) = self.pending.take() {
                    let dur_ns = now.duration_since(pending.started).as_nanos() as u64;
                    env.complete_response(&pending, dur_ns);
                }
                if self.close_after_write {
                    return Drive::Close;
                }
                // Keep-alive: recycle for the next request.
                self.served += 1;
                self.outbuf.clear();
                self.written = 0;
                self.phase = Phase::ReadHead;
                self.read_deadline = now + env.config.read_timeout;
                return Drive::Progress;
            }
            match self.stream.write(&self.outbuf[self.written..]) {
                Ok(0) => return Drive::Close,
                Ok(n) => {
                    self.written += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Drive::Close, // reset while writing
            }
        }
        if progressed {
            Drive::Progress
        } else {
            Drive::Idle
        }
    }

    /// Close-time gauge restitution, called by the reactor exactly
    /// once per connection.
    pub(crate) fn release(&mut self, env: &Env<'_>) {
        use std::sync::atomic::Ordering;
        let gauges = &env.stats.gauges;
        if self.admitted {
            self.admitted = false;
            gauges.in_flight.fetch_sub(1, Ordering::SeqCst);
            env.stats.completed.inc();
        }
        if self.queued {
            self.queued = false;
            gauges.queued.fetch_sub(1, Ordering::SeqCst);
        }
        if !self.shedding {
            gauges.open.fetch_sub(1, Ordering::SeqCst);
        }
        env.stats.conn_closed.inc();
    }
}

enum Step {
    /// State advanced using buffered bytes only.
    Advanced,
    /// Parsing needs more bytes off the socket.
    NeedBytes,
}
