//! Seeded deterministic load generator for the readiness-driven
//! endpoint (DESIGN.md §15).
//!
//! The *plan* — which of the `ops` operations is a well-behaved
//! request, a slow-loris body, a mid-request abort, or an oversized
//! post, which corpus entry it replays, and whether it asks for
//! keep-alive — is a pure function of `(seed, op index)` via
//! splitmix64, so two runs with the same config plan byte-identically
//! no matter how many client threads execute them or how the scheduler
//! interleaves. Timing (req/s, latency quantiles) is measured, not
//! planned, and is reported separately from the deterministic summary.
//!
//! Outcome accounting is a *closed* classification: every response a
//! client reads must be one the degradation ladder is allowed to give
//! for that profile (`200`/`500` served, `503` shed, `408` deadline,
//! `413` cap, or a clean transport-level close). Anything else counts
//! as `malformed`, and the overload property test pins `malformed ==
//! 0` at 4× overload.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::obs::Histogram;

use super::http::{self, HttpLimits};

/// One replayable request from the surveyed corpus.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Service path (`/{ServerId}/{fqcn}`).
    pub path: String,
    /// Operation name (becomes the `SOAPAction`).
    pub operation: String,
    /// Serialized SOAP request envelope.
    pub body: Vec<u8>,
}

/// Load-mix tuning. Percentages are rolled per op, in the order
/// slow → abort → oversized → normal, each against an independent
/// seeded byte, so a profile's share is stable as the others change.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total operations across all clients.
    pub ops: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Plan seed.
    pub seed: u64,
    /// Percent of ops that stall mid-body past the server's read
    /// deadline (slow loris).
    pub slow_pct: u8,
    /// Percent of ops that abort mid-request (half a body, then
    /// close).
    pub abort_pct: u8,
    /// Percent of ops that declare a body over the server's cap.
    pub oversized_pct: u8,
    /// Percent of ops that scrape the admin plane instead of posting
    /// SOAP: `GET /metrics` + `GET /healthz`, each on a fresh
    /// connection, classified into the scrape closed set.
    pub scrape_pct: u8,
    /// Percent of *normal* ops that request keep-alive (connection
    /// churn is the complement).
    pub keep_alive_pct: u8,
    /// How long a slow-loris op dawdles before expecting its `408`
    /// (must exceed the server's read deadline to trigger it).
    pub dawdle: Duration,
    /// Declared length for oversized posts (must exceed the server's
    /// body cap).
    pub oversized_declared: usize,
    /// Client-side socket deadline for reads/writes; bounds how long a
    /// misbehaving server could stall the harness, and must comfortably
    /// exceed the server's own deadlines.
    pub client_timeout: Duration,
    /// Client-side framing limits (body cap must admit the largest
    /// WSDL/SOAP response in the corpus).
    pub limits: HttpLimits,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            ops: 200,
            clients: 8,
            seed: 42,
            slow_pct: 5,
            abort_pct: 5,
            oversized_pct: 5,
            scrape_pct: 0,
            keep_alive_pct: 50,
            dawdle: Duration::from_millis(400),
            oversized_declared: (1 << 20) + 1,
            client_timeout: Duration::from_millis(5000),
            limits: HttpLimits::default(),
        }
    }
}

/// What one planned op does on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpProfile {
    /// Complete request, read the response; `keep_alive` asks to
    /// reuse the connection for the next op this client runs.
    Normal {
        /// Whether the request asks for keep-alive.
        keep_alive: bool,
    },
    /// Send the head and half the body, dawdle past the server's read
    /// deadline, then expect `408` (or a clean close).
    SlowLoris,
    /// Send the head and half the body, then close without finishing.
    Abort,
    /// Declare a body over the server's cap; expect `413` before any
    /// body byte is sent.
    Oversized,
    /// Scrape the admin plane mid-load: `GET /metrics` then
    /// `GET /healthz`, each on its own connection so the scrape rides
    /// the same admission ladder as SOAP traffic.
    Scrape,
}

/// The deterministic half of a run: what was planned (pure function
/// of the config) and how every wire interaction classified.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadgenCounts {
    /// Planned ops per profile.
    pub planned_normal: usize,
    /// Planned slow-loris ops.
    pub planned_slow: usize,
    /// Planned mid-request aborts.
    pub planned_abort: usize,
    /// Planned oversized posts.
    pub planned_oversized: usize,
    /// Planned admin scrape ops.
    pub planned_scrape: usize,
    /// Planned keep-alive requests among the normal ops.
    pub planned_keep_alive: usize,
    /// `200` SOAP/WSDL responses.
    pub ok: usize,
    /// `500` fault-envelope responses (still a served request).
    pub fault: usize,
    /// `503` sheds (accept gate or queue-wait deadline).
    pub shed: usize,
    /// `408` read-deadline responses.
    pub timeout_408: usize,
    /// `413` size-cap responses.
    pub too_large: usize,
    /// Aborted ops (nothing read back, by design).
    pub aborted: usize,
    /// Transport-level closes/resets/timeouts where the ladder allows
    /// silence (e.g. a slow-loris socket dropped instead of answered).
    pub closed: usize,
    /// Responses outside the closed set for their profile — the
    /// degradation ladder never produces these; pinned to 0.
    pub malformed: usize,
    /// Responses carrying `Connection: close` against a keep-alive
    /// request (the demotion layer, or budget/drain closes).
    pub demoted: usize,
    /// `/metrics` scrapes answered `200`.
    pub scrape_ok: usize,
    /// `/healthz` checks answered `200 ok`.
    pub scrape_healthy: usize,
    /// `/healthz` checks answered `503 degraded`/`503 draining` by the
    /// route itself (the ladder is queueing or the server is
    /// stopping).
    pub scrape_degraded: usize,
    /// Admin requests shed `503` by the accept gate or queue deadline
    /// before reaching the route.
    pub scrape_shed: usize,
    /// Admin requests that ended in a transport-level close.
    pub scrape_closed: usize,
    /// Admin responses outside the scrape closed set — pinned to 0
    /// like `malformed`.
    pub scrape_malformed: usize,
}

/// The measured half of a run (excluded from byte-stable output).
#[derive(Debug, Clone)]
pub struct LoadgenTiming {
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Completed ops per second (all profiles).
    pub req_per_s: f64,
    /// Latency over *served* requests only (`200`/`500`), measured
    /// request-start → response-read.
    pub latency: Histogram,
    /// Latency over answered admin scrapes, kept out of the serving
    /// histogram for the same reason the server splits
    /// `wire_server_admin_request_ns` from `wire_server_request_ns`.
    pub scrape_latency: Histogram,
}

/// One finished run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Deterministic plan + outcome counts.
    pub counts: LoadgenCounts,
    /// Wall-clock measurements.
    pub timing: LoadgenTiming,
}

/// Shared with the server's request-id stream (`server::Env`): both
/// sides derive deterministic values from `(seed, ordinal)` with the
/// same bijective mixer.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The planned profile of op `index` — pure in `(seed, index)`.
pub fn plan_op(config: &LoadgenConfig, index: usize) -> OpProfile {
    let bits = splitmix64(config.seed ^ (index as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    let roll = (bits % 100) as u8;
    let slow = config.slow_pct;
    let abort = slow.saturating_add(config.abort_pct);
    let oversized = abort.saturating_add(config.oversized_pct);
    let scrape = oversized.saturating_add(config.scrape_pct);
    if roll < slow {
        OpProfile::SlowLoris
    } else if roll < abort {
        OpProfile::Abort
    } else if roll < oversized {
        OpProfile::Oversized
    } else if roll < scrape {
        OpProfile::Scrape
    } else {
        let ka_roll = ((bits >> 32) % 100) as u8;
        OpProfile::Normal { keep_alive: ka_roll < config.keep_alive_pct }
    }
}

/// The corpus entry op `index` replays — pure in `(seed, index)`.
pub fn plan_corpus_index(config: &LoadgenConfig, index: usize, corpus_len: usize) -> usize {
    let bits = splitmix64(config.seed ^ 0xD6E8_FEB8_6659_FD93 ^ (index as u64));
    (bits % corpus_len.max(1) as u64) as usize
}

/// Tallies the plan without touching the network — the byte-stable
/// half of the summary, asserted identical across runs in CI.
pub fn plan_counts(config: &LoadgenConfig) -> LoadgenCounts {
    let mut counts = LoadgenCounts::default();
    for index in 0..config.ops {
        match plan_op(config, index) {
            OpProfile::Normal { keep_alive } => {
                counts.planned_normal += 1;
                if keep_alive {
                    counts.planned_keep_alive += 1;
                }
            }
            OpProfile::SlowLoris => counts.planned_slow += 1,
            OpProfile::Abort => counts.planned_abort += 1,
            OpProfile::Oversized => counts.planned_oversized += 1,
            OpProfile::Scrape => counts.planned_scrape += 1,
        }
    }
    counts
}

/// Per-thread tallies merged after the join (no contended atomics on
/// the measurement path).
#[derive(Default)]
struct ThreadTally {
    counts: LoadgenCounts,
    latency: Histogram,
    scrape_latency: Histogram,
}

/// Runs the full mix against `addr` and classifies every outcome.
///
/// Clients claim op indices from a shared cursor, so *which* thread
/// executes an op is scheduler-dependent but *what* every op does is
/// not; the outcome counts depend only on the server's deterministic
/// degradation ladder.
pub fn run(addr: SocketAddr, corpus: &[CorpusEntry], config: &LoadgenConfig) -> LoadgenReport {
    assert!(!corpus.is_empty(), "loadgen needs a non-empty corpus");
    let cursor = AtomicUsize::new(0);
    let started = Instant::now();
    let mut tallies: Vec<ThreadTally> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..config.clients.max(1) {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut tally = ThreadTally::default();
                // The connection a keep-alive op left open for reuse.
                let mut kept: Option<TcpStream> = None;
                loop {
                    let index = cursor.fetch_add(1, Ordering::SeqCst);
                    if index >= config.ops {
                        break;
                    }
                    let profile = plan_op(config, index);
                    let entry = &corpus[plan_corpus_index(config, index, corpus.len())];
                    run_op(addr, entry, profile, config, &mut kept, &mut tally);
                }
                tally
            }));
        }
        for handle in handles {
            if let Ok(tally) = handle.join() {
                tallies.push(tally);
            }
        }
    });
    let elapsed = started.elapsed();

    let mut counts = plan_counts(config);
    let mut latency = Histogram::default();
    let mut scrape_latency = Histogram::default();
    for tally in &tallies {
        merge_counts(&mut counts, &tally.counts);
        latency.merge(&tally.latency);
        scrape_latency.merge(&tally.scrape_latency);
    }
    let req_per_s = if elapsed.as_secs_f64() > 0.0 {
        config.ops as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    LoadgenReport {
        counts,
        timing: LoadgenTiming { elapsed, req_per_s, latency, scrape_latency },
    }
}

fn merge_counts(into: &mut LoadgenCounts, from: &LoadgenCounts) {
    into.ok += from.ok;
    into.fault += from.fault;
    into.shed += from.shed;
    into.timeout_408 += from.timeout_408;
    into.too_large += from.too_large;
    into.aborted += from.aborted;
    into.closed += from.closed;
    into.malformed += from.malformed;
    into.demoted += from.demoted;
    into.scrape_ok += from.scrape_ok;
    into.scrape_healthy += from.scrape_healthy;
    into.scrape_degraded += from.scrape_degraded;
    into.scrape_shed += from.scrape_shed;
    into.scrape_closed += from.scrape_closed;
    into.scrape_malformed += from.scrape_malformed;
}

fn connect(addr: SocketAddr, config: &LoadgenConfig) -> Option<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, config.client_timeout).ok()?;
    let _ = stream.set_read_timeout(Some(config.client_timeout));
    let _ = stream.set_write_timeout(Some(config.client_timeout));
    Some(stream)
}

fn run_op(
    addr: SocketAddr,
    entry: &CorpusEntry,
    profile: OpProfile,
    config: &LoadgenConfig,
    kept: &mut Option<TcpStream>,
    tally: &mut ThreadTally,
) {
    match profile {
        OpProfile::Normal { keep_alive } => {
            // Reuse the kept connection when the plan asks for
            // keep-alive; otherwise churn a fresh one.
            let mut stream = match (keep_alive, kept.take()) {
                (true, Some(stream)) => stream,
                _ => match connect(addr, config) {
                    Some(stream) => stream,
                    None => {
                        tally.counts.closed += 1;
                        return;
                    }
                },
            };
            let started = Instant::now();
            if http::write_request(
                &mut stream,
                "POST",
                &entry.path,
                "127.0.0.1",
                Some(&entry.operation),
                &entry.body,
                !keep_alive,
            )
            .is_err()
            {
                tally.counts.closed += 1;
                return;
            }
            match http::read_response(&stream, &config.limits) {
                Ok(response) => {
                    let served = matches!(response.status, 200 | 500);
                    if served {
                        tally
                            .latency
                            .observe(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                    }
                    let closing = response
                        .headers
                        .iter()
                        .any(|(n, v)| n == "connection" && v.eq_ignore_ascii_case("close"));
                    if keep_alive && closing {
                        tally.counts.demoted += 1;
                    }
                    match response.status {
                        200 => tally.counts.ok += 1,
                        500 => tally.counts.fault += 1,
                        503 => tally.counts.shed += 1,
                        408 => tally.counts.timeout_408 += 1,
                        413 => tally.counts.too_large += 1,
                        _ => tally.counts.malformed += 1,
                    }
                    if keep_alive && !closing {
                        *kept = Some(stream);
                    }
                }
                Err(
                    http::HttpError::ConnectionClosed
                    | http::HttpError::Reset
                    | http::HttpError::Timeout
                    | http::HttpError::TruncatedBody { .. },
                ) => tally.counts.closed += 1,
                Err(_) => tally.counts.malformed += 1,
            }
        }
        OpProfile::SlowLoris => {
            let Some(mut stream) = connect(addr, config) else {
                tally.counts.closed += 1;
                return;
            };
            if write_partial(&mut stream, entry).is_err() {
                tally.counts.closed += 1;
                return;
            }
            std::thread::sleep(config.dawdle);
            match http::read_response(&stream, &config.limits) {
                Ok(response) => match response.status {
                    408 => tally.counts.timeout_408 += 1,
                    503 => tally.counts.shed += 1,
                    _ => tally.counts.malformed += 1,
                },
                Err(
                    http::HttpError::ConnectionClosed
                    | http::HttpError::Reset
                    | http::HttpError::Timeout
                    | http::HttpError::TruncatedBody { .. },
                ) => tally.counts.closed += 1,
                Err(_) => tally.counts.malformed += 1,
            }
        }
        OpProfile::Abort => {
            let Some(mut stream) = connect(addr, config) else {
                tally.counts.closed += 1;
                return;
            };
            let _ = write_partial(&mut stream, entry);
            drop(stream); // mid-request close; the server must absorb it
            tally.counts.aborted += 1;
        }
        OpProfile::Scrape => {
            // Each admin request rides its own connection so the
            // scrape walks the same admission ladder as SOAP traffic;
            // both classify independently into the scrape closed set.
            for target in ["/metrics", "/healthz"] {
                let Some(mut stream) = connect(addr, config) else {
                    tally.counts.scrape_closed += 1;
                    continue;
                };
                let started = Instant::now();
                if http::write_request(&mut stream, "GET", target, "127.0.0.1", None, b"", true)
                    .is_err()
                {
                    tally.counts.scrape_closed += 1;
                    continue;
                }
                match http::read_response(&stream, &config.limits) {
                    Ok(response) => {
                        tally.scrape_latency.observe(
                            started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                        );
                        classify_scrape(target, &response, &mut tally.counts);
                    }
                    Err(
                        http::HttpError::ConnectionClosed
                        | http::HttpError::Reset
                        | http::HttpError::Timeout
                        | http::HttpError::TruncatedBody { .. },
                    ) => tally.counts.scrape_closed += 1,
                    Err(_) => tally.counts.scrape_malformed += 1,
                }
            }
        }
        OpProfile::Oversized => {
            let Some(mut stream) = connect(addr, config) else {
                tally.counts.closed += 1;
                return;
            };
            use std::io::Write;
            let head = format!(
                "POST {} HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\
                 Content-Type: text/xml; charset=utf-8\r\nContent-Length: {}\r\n\r\n",
                entry.path, config.oversized_declared
            );
            if stream.write_all(head.as_bytes()).is_err() {
                tally.counts.closed += 1;
                return;
            }
            match http::read_response(&stream, &config.limits) {
                Ok(response) => match response.status {
                    413 => tally.counts.too_large += 1,
                    503 => tally.counts.shed += 1,
                    _ => tally.counts.malformed += 1,
                },
                Err(
                    http::HttpError::ConnectionClosed
                    | http::HttpError::Reset
                    | http::HttpError::Timeout
                    | http::HttpError::TruncatedBody { .. },
                ) => tally.counts.closed += 1,
                Err(_) => tally.counts.malformed += 1,
            }
        }
    }
}

/// Classifies one admin response into the scrape closed set. The
/// route's own `503 degraded`/`503 draining` is distinguished from an
/// accept-gate shed by the body the healthz route writes — the ladder
/// sheds with its overload reason text instead.
fn classify_scrape(target: &str, response: &http::Response, counts: &mut LoadgenCounts) {
    match (target, response.status) {
        ("/metrics", 200) => counts.scrape_ok += 1,
        ("/healthz", 200) => counts.scrape_healthy += 1,
        ("/healthz", 503)
            if response.body == b"degraded".as_slice()
                || response.body == b"draining".as_slice() =>
        {
            counts.scrape_degraded += 1;
        }
        (_, 503) => counts.scrape_shed += 1,
        _ => counts.scrape_malformed += 1,
    }
}

/// Writes a request head declaring the full body, then only half the
/// body bytes — the shared setup for slow-loris and abort profiles.
fn write_partial(stream: &mut TcpStream, entry: &CorpusEntry) -> std::io::Result<()> {
    use std::io::Write;
    let head = format!(
        "POST {} HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\
         Content-Type: text/xml; charset=utf-8\r\nSOAPAction: \"{}\"\r\nContent-Length: {}\r\n\r\n",
        entry.path,
        entry.operation,
        entry.body.len().max(2)
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&entry.body[..entry.body.len() / 2])?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_pure_function_of_seed_and_index() {
        let config = LoadgenConfig { ops: 500, seed: 7, ..LoadgenConfig::default() };
        let a: Vec<OpProfile> = (0..config.ops).map(|i| plan_op(&config, i)).collect();
        let b: Vec<OpProfile> = (0..config.ops).map(|i| plan_op(&config, i)).collect();
        assert_eq!(a, b);
        assert_eq!(plan_counts(&config), plan_counts(&config));
    }

    #[test]
    fn plan_counts_cover_every_op_exactly_once() {
        let config = LoadgenConfig {
            ops: 1000,
            seed: 99,
            slow_pct: 10,
            abort_pct: 10,
            oversized_pct: 10,
            scrape_pct: 10,
            ..LoadgenConfig::default()
        };
        let counts = plan_counts(&config);
        assert_eq!(
            counts.planned_normal
                + counts.planned_slow
                + counts.planned_abort
                + counts.planned_oversized
                + counts.planned_scrape,
            config.ops
        );
        // Each non-normal profile gets a nonzero share at 10%.
        assert!(counts.planned_slow > 0);
        assert!(counts.planned_abort > 0);
        assert!(counts.planned_oversized > 0);
        assert!(counts.planned_scrape > 0);
        assert!(counts.planned_keep_alive <= counts.planned_normal);
    }

    #[test]
    fn scrape_share_is_opt_in_and_leaves_default_plans_unchanged() {
        // scrape_pct defaults to 0, so a pre-scrape plan is
        // byte-identical to one computed by this build.
        let config = LoadgenConfig { ops: 400, seed: 7, ..LoadgenConfig::default() };
        let counts = plan_counts(&config);
        assert_eq!(counts.planned_scrape, 0);
        let scraping =
            LoadgenConfig { ops: 400, seed: 7, scrape_pct: 15, ..LoadgenConfig::default() };
        assert!(plan_counts(&scraping).planned_scrape > 0);
    }

    #[test]
    fn different_seeds_plan_different_mixes() {
        let a = LoadgenConfig { ops: 300, seed: 1, ..LoadgenConfig::default() };
        let b = LoadgenConfig { ops: 300, seed: 2, ..LoadgenConfig::default() };
        let plan_a: Vec<OpProfile> = (0..300).map(|i| plan_op(&a, i)).collect();
        let plan_b: Vec<OpProfile> = (0..300).map(|i| plan_op(&b, i)).collect();
        assert_ne!(plan_a, plan_b);
    }
}
