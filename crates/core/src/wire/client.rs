//! The resilient loopback HTTP client.
//!
//! Every socket-level failure is collapsed into a small closed set of
//! stable reasons ([`WireError::reason`]) so that campaign
//! classification never depends on OS error text, and retries are
//! driven by the *seeded* fault-plan RNG
//! ([`crate::faults::FaultPlan::retry_jitter_ms`]) — `-j1` and `-j8`
//! runs retry, back off, and therefore classify identically.

use std::fmt;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::faults::{FaultPlan, ResilienceConfig};
use crate::obs::{MetricsRegistry, Stopwatch};

use super::http::{self, HttpError, HttpLimits, Response};

/// Socket-level failure, already normalized to a stable taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Nobody listening (or the listener's backlog rejected us).
    Refused,
    /// The connect attempt timed out.
    ConnectTimeout,
    /// A read or write deadline expired mid-exchange.
    Timeout,
    /// The peer reset the connection.
    Reset,
    /// The peer closed the connection before a complete response.
    Closed,
    /// The response body ended short of its declared length.
    Truncated,
    /// The response could not be framed (garbage status line, bad
    /// headers, over-limit message).
    BadFraming(String),
    /// A well-framed response with an HTTP status the exchange cannot
    /// use (anything but 200/500).
    Status(u16),
    /// Any other socket error (stable `ErrorKind` text, not OS text).
    Io(String),
}

impl WireError {
    /// The stable reason string recorded in
    /// [`crate::exchange::ExchangeOutcome::TransportError`]. These
    /// strings are part of the classification contract
    /// (`frameworks::client::classify_error` keys off them), so they
    /// must never carry OS-specific text.
    pub fn reason(&self) -> String {
        match self {
            WireError::Refused => "connection refused".to_string(),
            WireError::ConnectTimeout => "connect timeout".to_string(),
            WireError::Timeout => "read timeout".to_string(),
            WireError::Reset => "connection reset".to_string(),
            WireError::Closed => "connection closed before a full response".to_string(),
            WireError::Truncated => "truncated response".to_string(),
            WireError::BadFraming(detail) => format!("malformed response framing: {detail}"),
            WireError::Status(code) => format!("http status {code}"),
            WireError::Io(kind) => format!("socket error: {kind}"),
        }
    }

    /// Whether a retry can plausibly help: transient transport
    /// conditions plus the server's two *load*-shaped refusals —
    /// `503` shedding and the `408` read deadline (the request may
    /// simply have queued too long; a backed-off retry meets a
    /// less-loaded server). Deterministic refusals (`413` caps, `400`
    /// framing, `404`/`405` routing) are never retried: the same
    /// request would fail the same way.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            WireError::Refused
                | WireError::ConnectTimeout
                | WireError::Timeout
                | WireError::Reset
                | WireError::Closed
                | WireError::Truncated
                | WireError::Status(503)
                | WireError::Status(408)
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason())
    }
}

impl std::error::Error for WireError {}

/// A stable low-cardinality label for the error-counter family — the
/// taxonomy variant name, never free-form detail text.
fn error_label(e: &WireError) -> &'static str {
    match e {
        WireError::Refused => "refused",
        WireError::ConnectTimeout => "connect-timeout",
        WireError::Timeout => "timeout",
        WireError::Reset => "reset",
        WireError::Closed => "closed",
        WireError::Truncated => "truncated",
        WireError::BadFraming(_) => "bad-framing",
        WireError::Status(_) => "status",
        WireError::Io(_) => "io",
    }
}

fn from_http(e: HttpError) -> WireError {
    match e {
        HttpError::Timeout => WireError::Timeout,
        HttpError::Reset => WireError::Reset,
        HttpError::ConnectionClosed => WireError::Closed,
        HttpError::TruncatedBody { .. } => WireError::Truncated,
        HttpError::Io(kind) => WireError::Io(kind),
        other => WireError::BadFraming(other.to_string()),
    }
}

fn from_connect(e: &std::io::Error) -> WireError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::ConnectionRefused => WireError::Refused,
        ErrorKind::TimedOut | ErrorKind::WouldBlock => WireError::ConnectTimeout,
        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => WireError::Reset,
        kind => WireError::Io(format!("{kind:?}")),
    }
}

/// Client tuning.
#[derive(Debug, Clone)]
pub struct WireClientConfig {
    /// Connect deadline.
    pub connect_timeout: Duration,
    /// Read deadline (also the bound a proxy-injected delay must beat).
    pub read_timeout: Duration,
    /// Write deadline.
    pub write_timeout: Duration,
    /// Response framing limits.
    pub limits: HttpLimits,
    /// Retry budget for [`WireError::retryable`] failures.
    pub max_retries: u32,
    /// Exponential backoff schedule, real milliseconds (last entry
    /// repeats) — deliberately tiny: determinism comes from the
    /// schedule, liveness from the deadlines.
    pub backoff_ms: Vec<u64>,
    /// Cap on the seeded jitter added to each backoff.
    pub jitter_cap_ms: u64,
    /// Optional shared telemetry registry. When set, the client counts
    /// requests, retries, and terminal errors by stable reason
    /// (`wire_client_*_total`), tallies usable responses by status
    /// code, and feeds the whole-request latency histogram
    /// (`wire_client_request_ns`, retries included). Observe-only.
    pub metrics: Option<std::sync::Arc<MetricsRegistry>>,
}

impl Default for WireClientConfig {
    fn default() -> WireClientConfig {
        WireClientConfig {
            connect_timeout: Duration::from_millis(1000),
            read_timeout: Duration::from_millis(2000),
            write_timeout: Duration::from_millis(2000),
            limits: HttpLimits::default(),
            max_retries: 2,
            backoff_ms: vec![1, 2, 4],
            jitter_cap_ms: 3,
            metrics: None,
        }
    }
}

impl WireClientConfig {
    /// Derives the retry budget and backoff schedule from the
    /// campaign's [`ResilienceConfig`], so the socket client and the
    /// static pipeline cope with transients under one policy.
    pub fn from_resilience(resilience: &ResilienceConfig) -> WireClientConfig {
        WireClientConfig {
            max_retries: resilience.max_retries,
            backoff_ms: resilience.backoff_ms.clone(),
            ..WireClientConfig::default()
        }
    }
}

/// The resilient HTTP client. One connection per request (the server's
/// keep-alive is exercised by peers that want it; probes prefer the
/// isolation of a fresh connection per attempt).
pub struct WireClient {
    config: WireClientConfig,
    /// Seeded jitter source; `None` means zero jitter.
    plan: Option<FaultPlan>,
}

impl WireClient {
    /// A client with the given tuning and no seeded jitter.
    pub fn new(config: WireClientConfig) -> WireClient {
        WireClient { config, plan: None }
    }

    /// Adds the seeded jitter source (the campaign's fault plan).
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> WireClient {
        self.plan = Some(plan);
        self
    }

    /// The client's tuning.
    pub fn config(&self) -> &WireClientConfig {
        &self.config
    }

    /// `GET target` with retries; `site` keys the deterministic jitter.
    pub fn get(&self, addr: SocketAddr, target: &str, site: &str) -> Result<Response, WireError> {
        self.request(addr, "GET", target, None, b"", site)
    }

    /// `POST target` with a SOAP body and retries.
    pub fn post(
        &self,
        addr: SocketAddr,
        target: &str,
        soap_action: &str,
        body: &[u8],
        site: &str,
    ) -> Result<Response, WireError> {
        self.request(addr, "POST", target, Some(soap_action), body, site)
    }

    fn request(
        &self,
        addr: SocketAddr,
        method: &str,
        target: &str,
        soap_action: Option<&str>,
        body: &[u8],
        site: &str,
    ) -> Result<Response, WireError> {
        let metrics = self.config.metrics.as_deref();
        if let Some(m) = metrics {
            m.inc("wire_client_requests_total");
        }
        let span = metrics.map(|_| Stopwatch::real());
        let mut attempt = 0u32;
        let result = loop {
            match self.request_once(addr, method, target, soap_action, body) {
                Ok(response) => break Ok(response),
                Err(e) if e.retryable() && attempt < self.config.max_retries => {
                    if let Some(m) = metrics {
                        m.inc("wire_client_retries_total");
                    }
                    let backoff = self.backoff_for(attempt);
                    let jitter = self
                        .plan
                        .as_ref()
                        .map(|p| p.retry_jitter_ms(site, attempt, self.config.jitter_cap_ms))
                        .unwrap_or(0);
                    std::thread::sleep(Duration::from_millis(backoff + jitter));
                    attempt += 1;
                }
                Err(e) => break Err(e),
            }
        };
        if let (Some(m), Some(span)) = (metrics, span) {
            m.observe_ns("wire_client_request_ns", span.elapsed_ns());
            match &result {
                Ok(response) => m.inc(&format!(
                    "wire_client_status_total{{code=\"{}\"}}",
                    response.status
                )),
                Err(e) => m.inc(&format!(
                    "wire_client_errors_total{{reason=\"{}\"}}",
                    error_label(e)
                )),
            }
        }
        result
    }

    fn backoff_for(&self, attempt: u32) -> u64 {
        let schedule = &self.config.backoff_ms;
        if schedule.is_empty() {
            return 0;
        }
        schedule[(attempt as usize).min(schedule.len() - 1)]
    }

    fn request_once(
        &self,
        addr: SocketAddr,
        method: &str,
        target: &str,
        soap_action: Option<&str>,
        body: &[u8],
    ) -> Result<Response, WireError> {
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
            .map_err(|e| from_connect(&e))?;
        stream
            .set_read_timeout(Some(self.config.read_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.config.write_timeout)))
            .map_err(|e| WireError::Io(format!("{:?}", e.kind())))?;
        let mut stream = stream;
        http::write_request(&mut stream, method, target, "127.0.0.1", soap_action, body, true)
            .map_err(from_http)?;
        let response = http::read_response(&stream, &self.config.limits).map_err(from_http)?;
        match response.status {
            // 200 carries the echo, 500 the fault envelope (WS-I BP
            // R1126); both are meaningful SOAP answers for the caller.
            200 | 500 => Ok(response),
            other => Err(WireError::Status(other)),
        }
    }
}
