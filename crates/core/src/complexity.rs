//! The complexity extension: "services with a higher level of
//! complexity to cover more elaborate patterns of inter-operation" —
//! the paper's second declared future-work item.
//!
//! The base study uses single-parameter echo services. This extension
//! synthesizes service families along two axes the base study holds
//! constant —
//!
//! * **nesting depth**: bean parameters whose fields are themselves
//!   beans, `depth` levels down,
//! * **operation fan-out**: multi-operation port types, including
//!   rpc/literal signatures with several parameters —
//!
//! and drives every client subsystem over them, producing a
//! success-rate matrix by complexity tier.

use std::fmt;

use wsinterop_compilers::{compiler_for, instantiate};
use wsinterop_frameworks::client::{all_clients, ClientId, CompilationMode};
use wsinterop_wsdl::builder::{DocLiteralBuilder, RpcLiteralBuilder};
use wsinterop_wsdl::ser::to_xml_string;
use wsinterop_wsdl::Definitions;
use wsinterop_xsd::{BuiltIn, ComplexType, ElementDecl, Particle, TypeRef};

/// One synthesized complexity tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tier {
    /// Bean nesting depth (0 = built-in parameter).
    pub depth: usize,
    /// Operations per service.
    pub operations: usize,
    /// rpc/literal instead of document/literal.
    pub rpc: bool,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "depth={} ops={} style={}",
            self.depth,
            self.operations,
            if self.rpc { "rpc" } else { "document" }
        )
    }
}

/// The default tier ladder exercised by the extension experiment.
pub fn default_tiers() -> Vec<Tier> {
    let mut tiers = Vec::new();
    for depth in [0usize, 1, 3, 6] {
        for operations in [1usize, 4] {
            tiers.push(Tier {
                depth,
                operations,
                rpc: false,
            });
        }
    }
    tiers.push(Tier {
        depth: 1,
        operations: 2,
        rpc: true,
    });
    tiers
}

/// Builds the nested bean chain `Level0 → Level1 → …` and returns the
/// complex types plus the root type reference.
fn nested_types(tns: &str, depth: usize) -> (Vec<ComplexType>, TypeRef) {
    if depth == 0 {
        return (Vec::new(), TypeRef::BuiltIn(BuiltIn::String));
    }
    let mut types = Vec::new();
    for level in 0..depth {
        let mut ct = ComplexType::named(format!("Level{level}"))
            .with_particle(Particle::Element(
                ElementDecl::typed("label", TypeRef::BuiltIn(BuiltIn::String)).min(0),
            ))
            .with_particle(Particle::Element(
                ElementDecl::typed("weight", TypeRef::BuiltIn(BuiltIn::Double)).min(0),
            ));
        if level + 1 < depth {
            ct = ct.with_particle(Particle::Element(
                ElementDecl::typed("child", TypeRef::named(tns, format!("Level{}", level + 1)))
                    .min(0),
            ));
        }
        types.push(ct);
    }
    (types, TypeRef::named(tns, "Level0"))
}

/// Synthesizes the service description for one tier.
pub fn service_for(tier: Tier) -> Definitions {
    let tns = format!(
        "urn:complexity:d{}o{}{}",
        tier.depth,
        tier.operations,
        if tier.rpc { "r" } else { "d" }
    );
    let (types, root) = nested_types(&tns, tier.depth);
    if tier.rpc {
        let mut builder = RpcLiteralBuilder::new("ComplexService", &tns);
        for ct in types {
            builder = builder.with_type(ct);
        }
        for i in 0..tier.operations {
            builder = builder.operation(
                format!("op{i}"),
                vec![
                    ("first".to_string(), root.clone()),
                    ("second".to_string(), TypeRef::BuiltIn(BuiltIn::Int)),
                ],
                root.clone(),
            );
        }
        builder.build()
    } else {
        let mut builder = DocLiteralBuilder::new("ComplexService", &tns);
        for (i, _) in (0..tier.operations).enumerate() {
            let extra = if i == 0 { types.clone() } else { Vec::new() };
            builder = builder.operation_with_types(
                format!("op{i}"),
                root.clone(),
                root.clone(),
                extra,
            );
        }
        builder.build()
    }
}

/// Outcome of one tier × client cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOutcome {
    /// Generated (and compiled / instantiated) successfully.
    Ok,
    /// Generation succeeded with warnings only.
    Warnings,
    /// Generation failed.
    GenerationError,
    /// Artifacts failed to compile.
    CompilationError,
}

impl CellOutcome {
    /// Success (with or without warnings).
    pub fn succeeded(self) -> bool {
        matches!(self, CellOutcome::Ok | CellOutcome::Warnings)
    }
}

/// The extension experiment's result matrix.
#[derive(Debug, Clone)]
pub struct ComplexityMatrix {
    /// `(tier, client, outcome)` rows.
    pub rows: Vec<(Tier, ClientId, CellOutcome)>,
}

impl ComplexityMatrix {
    /// Runs the experiment over the given tiers with all eleven
    /// clients.
    pub fn run(tiers: &[Tier]) -> ComplexityMatrix {
        let clients = all_clients();
        let mut rows = Vec::new();
        for &tier in tiers {
            let wsdl = to_xml_string(&service_for(tier));
            for client in &clients {
                let info = client.info();
                let outcome = client.generate(&wsdl);
                let cell = if outcome.error.is_some() {
                    CellOutcome::GenerationError
                } else if let Some(bundle) = &outcome.artifacts {
                    let failed = match info.compilation {
                        CompilationMode::Dynamic => !instantiate(bundle).usable(),
                        _ => compiler_for(bundle.language)
                            .map(|c| !c.compile(bundle).success())
                            .unwrap_or(false),
                    };
                    if failed {
                        CellOutcome::CompilationError
                    } else if outcome.warnings.is_empty() {
                        CellOutcome::Ok
                    } else {
                        CellOutcome::Warnings
                    }
                } else {
                    CellOutcome::GenerationError
                };
                rows.push((tier, info.id, cell));
            }
        }
        ComplexityMatrix { rows }
    }

    /// Success rate for one tier across all clients.
    pub fn success_rate(&self, tier: Tier) -> f64 {
        let cells: Vec<_> = self.rows.iter().filter(|(t, _, _)| *t == tier).collect();
        if cells.is_empty() {
            return 0.0;
        }
        let ok = cells.iter().filter(|(_, _, c)| c.succeeded()).count();
        ok as f64 / cells.len() as f64
    }
}

impl fmt::Display for ComplexityMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Complexity extension — success matrix")?;
        let mut tiers: Vec<Tier> = Vec::new();
        for (tier, _, _) in &self.rows {
            if !tiers.contains(tier) {
                tiers.push(*tier);
            }
        }
        for tier in tiers {
            writeln!(
                f,
                "  {:<28} success rate {:>5.1}%",
                tier.to_string(),
                self.success_rate(tier) * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_wsi::Analyzer;

    #[test]
    fn all_tiers_produce_wsi_conformant_documents() {
        for tier in default_tiers() {
            let defs = service_for(tier);
            let report = Analyzer::basic_profile_1_1().analyze(&defs);
            assert!(report.conformant(), "{tier}: {report}");
            // Roundtrip through XML too.
            let xml = to_xml_string(&defs);
            let back = wsinterop_wsdl::de::from_xml_str(&xml).unwrap();
            assert_eq!(back, defs);
        }
    }

    #[test]
    fn doc_literal_tiers_succeed_for_every_client() {
        let tiers: Vec<Tier> = default_tiers().into_iter().filter(|t| !t.rpc).collect();
        let matrix = ComplexityMatrix::run(&tiers);
        for (tier, client, cell) in &matrix.rows {
            assert!(
                cell.succeeded(),
                "{client} failed doc-literal tier {tier}: {cell:?}"
            );
        }
    }

    #[test]
    fn rpc_tier_splits_the_field() {
        // The rpc/literal tier uses type= parts, which the wsdl.exe
        // family and gSOAP reject even under rpc style — exactly the
        // "elaborate patterns" divergence the future work anticipates.
        let tiers = vec![Tier {
            depth: 1,
            operations: 2,
            rpc: true,
        }];
        let matrix = ComplexityMatrix::run(&tiers);
        let failed: Vec<ClientId> = matrix
            .rows
            .iter()
            .filter(|(_, _, c)| !c.succeeded())
            .map(|(_, id, _)| *id)
            .collect();
        assert!(failed.contains(&ClientId::DotnetCs), "{failed:?}");
        assert!(failed.contains(&ClientId::Gsoap), "{failed:?}");
        // The Java stacks cope.
        assert!(!failed.contains(&ClientId::Metro), "{failed:?}");
        assert!(!failed.contains(&ClientId::Axis1), "{failed:?}");
    }

    #[test]
    fn success_rate_is_monotone_in_failure_count() {
        let tiers = default_tiers();
        let matrix = ComplexityMatrix::run(&tiers);
        for tier in tiers {
            let rate = matrix.success_rate(tier);
            assert!((0.0..=1.0).contains(&rate));
            if !tier.rpc {
                assert!((rate - 1.0).abs() < f64::EPSILON, "{tier}: {rate}");
            } else {
                assert!(rate < 1.0, "{tier} should not be universally supported");
            }
        }
    }

    #[test]
    fn matrix_renders() {
        let matrix = ComplexityMatrix::run(&[Tier {
            depth: 1,
            operations: 1,
            rpc: false,
        }]);
        let text = matrix.to_string();
        assert!(text.contains("success rate"));
    }
}
