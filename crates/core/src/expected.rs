//! The paper's published numbers, as reconstructed for this
//! reproduction (see `EXPERIMENTS.md` for the derivation and the two
//! documented deviations from the scanned Table III).
//!
//! These constants are the contract between the campaign engine and
//! the test/bench suite: `tests/` asserts the full run reproduces them
//! exactly.

use wsinterop_frameworks::client::ClientId;
use wsinterop_frameworks::server::ServerId;

/// Candidate services per server (classes in the platform catalog).
pub const CREATED: [(ServerId, usize); 3] = [
    (ServerId::Metro, 3971),
    (ServerId::JBossWs, 3971),
    (ServerId::WcfDotNet, 14_082),
];

/// Deployed services per server (Section IV).
pub const DEPLOYED: [(ServerId, usize); 3] = [
    (ServerId::Metro, 2489),
    (ServerId::JBossWs, 2248),
    (ServerId::WcfDotNet, 2502),
];

/// Total candidate services: 22 024.
pub const TOTAL_CREATED: usize = 22_024;
/// Services the platforms could not deploy: 14 785.
pub const TOTAL_EXCLUDED: usize = 14_785;
/// Deployed services: 7 239.
pub const TOTAL_DEPLOYED: usize = 7_239;
/// Executed tests: 79 629 (= 7 239 × 11 clients).
pub const TOTAL_TESTS: usize = 79_629;

/// Service-description warnings per server (Fig. 4 / Table III top
/// row): WS-I failures plus the operation-less advisories.
pub const DESCRIPTION_WARNINGS: [(ServerId, usize); 3] = [
    (ServerId::Metro, 2),
    (ServerId::JBossWs, 4),
    (ServerId::WcfDotNet, 80),
];

/// Total description warnings: 86.
pub const TOTAL_DESCRIPTION_WARNINGS: usize = 86;

/// Fig. 4 per server: (CAG warnings, CAG errors, CAC warnings, CAC
/// errors).
///
/// Column totals match the paper's stated aggregates exactly
/// (4 763 / 287 / 14 478 / 1 301); the per-column split is this
/// reproduction's canonical reconstruction (EXPERIMENTS.md §Fig4).
pub const FIG4: [(ServerId, [usize; 4]); 3] = [
    (ServerId::Metro, [2489, 13, 4978, 529]),
    (ServerId::JBossWs, [2253, 23, 4496, 464]),
    (ServerId::WcfDotNet, [21, 251, 5004, 308]),
];

/// Total artifact-generation warnings: 4 763.
pub const TOTAL_GENERATION_WARNINGS: usize = 4_763;
/// Total artifact-generation errors: 287.
pub const TOTAL_GENERATION_ERRORS: usize = 287;
/// Total compilation warnings: 14 478.
pub const TOTAL_COMPILATION_WARNINGS: usize = 14_478;
/// Total compilation errors: 1 301.
pub const TOTAL_COMPILATION_ERRORS: usize = 1_301;
/// Tests where any step errored: 287 + 1 301 (the paper rounds this
/// story to "1 583 situations"; see EXPERIMENTS.md §Deviations).
pub const TOTAL_INTEROP_ERRORS: usize = 1_588;
/// Same-framework error tests: 307 (Section V).
pub const SAME_FRAMEWORK_ERRORS: usize = 307;

/// Table III cells: `(client, server, [genW, genE, compW, compE])`;
/// compile columns use `usize::MAX` to mean "no compilation step".
pub const NO_COMPILE: usize = usize::MAX;

/// The canonical Table III matrix (see EXPERIMENTS.md for the
/// cell-level derivation).
pub const TABLE3: [(ClientId, ServerId, [usize; 4]); 33] = {
    use ClientId as C;
    use ServerId as S;
    [
        (C::Metro, S::Metro, [0, 1, 0, 0]),
        (C::Metro, S::JBossWs, [1, 3, 0, 0]),
        (C::Metro, S::WcfDotNet, [0, 78, 0, 0]),
        (C::Axis1, S::Metro, [0, 1, 2489, 477]),
        (C::Axis1, S::JBossWs, [0, 1, 2248, 412]),
        (C::Axis1, S::WcfDotNet, [0, 3, 2502, 0]),
        (C::Axis2, S::Metro, [0, 1, 2489, 1]),
        (C::Axis2, S::JBossWs, [0, 2, 2248, 1]),
        (C::Axis2, S::WcfDotNet, [0, 0, 2502, 3]),
        (C::Cxf, S::Metro, [0, 1, 0, 0]),
        (C::Cxf, S::JBossWs, [0, 1, 0, 0]),
        (C::Cxf, S::WcfDotNet, [0, 78, 0, 0]),
        (C::JBossWs, S::Metro, [0, 1, 0, 0]),
        (C::JBossWs, S::JBossWs, [0, 1, 0, 0]),
        (C::JBossWs, S::WcfDotNet, [0, 78, 0, 0]),
        (C::DotnetCs, S::Metro, [0, 2, 0, 0]),
        (C::DotnetCs, S::JBossWs, [0, 4, 0, 0]),
        (C::DotnetCs, S::WcfDotNet, [7, 0, 0, 0]),
        (C::DotnetVb, S::Metro, [0, 2, 0, 1]),
        (C::DotnetVb, S::JBossWs, [0, 4, 0, 1]),
        (C::DotnetVb, S::WcfDotNet, [7, 0, 0, 4]),
        (C::DotnetJs, S::Metro, [2489, 2, 0, 50]),
        (C::DotnetJs, S::JBossWs, [2248, 4, 0, 50]),
        (C::DotnetJs, S::WcfDotNet, [7, 0, 0, 301]),
        (C::Gsoap, S::Metro, [0, 1, 0, 0]),
        (C::Gsoap, S::JBossWs, [0, 2, 0, 0]),
        (C::Gsoap, S::WcfDotNet, [0, 13, 0, 0]),
        (C::Zend, S::Metro, [0, 0, NO_COMPILE, NO_COMPILE]),
        (C::Zend, S::JBossWs, [2, 0, NO_COMPILE, NO_COMPILE]),
        (C::Zend, S::WcfDotNet, [0, 0, NO_COMPILE, NO_COMPILE]),
        (C::Suds, S::Metro, [0, 1, NO_COMPILE, NO_COMPILE]),
        (C::Suds, S::JBossWs, [2, 1, NO_COMPILE, NO_COMPILE]),
        (C::Suds, S::WcfDotNet, [0, 1, NO_COMPILE, NO_COMPILE]),
    ]
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_are_internally_consistent() {
        assert_eq!(
            CREATED.iter().map(|(_, n)| n).sum::<usize>(),
            TOTAL_CREATED
        );
        assert_eq!(
            DEPLOYED.iter().map(|(_, n)| n).sum::<usize>(),
            TOTAL_DEPLOYED
        );
        assert_eq!(TOTAL_CREATED - TOTAL_DEPLOYED, TOTAL_EXCLUDED);
        assert_eq!(TOTAL_DEPLOYED * 11, TOTAL_TESTS);
        assert_eq!(
            DESCRIPTION_WARNINGS.iter().map(|(_, n)| n).sum::<usize>(),
            TOTAL_DESCRIPTION_WARNINGS
        );
        let sums = FIG4.iter().fold([0usize; 4], |mut acc, (_, row)| {
            for i in 0..4 {
                acc[i] += row[i];
            }
            acc
        });
        assert_eq!(sums[0], TOTAL_GENERATION_WARNINGS);
        assert_eq!(sums[1], TOTAL_GENERATION_ERRORS);
        assert_eq!(sums[2], TOTAL_COMPILATION_WARNINGS);
        assert_eq!(sums[3], TOTAL_COMPILATION_ERRORS);
        assert_eq!(
            TOTAL_GENERATION_ERRORS + TOTAL_COMPILATION_ERRORS,
            TOTAL_INTEROP_ERRORS
        );
    }

    #[test]
    fn table3_columns_sum_to_fig4() {
        for (server, fig_row) in FIG4 {
            let mut sums = [0usize; 4];
            for (_, s, cell) in TABLE3 {
                if s != server {
                    continue;
                }
                sums[0] += cell[0];
                sums[1] += cell[1];
                if cell[2] != NO_COMPILE {
                    sums[2] += cell[2];
                }
                if cell[3] != NO_COMPILE {
                    sums[3] += cell[3];
                }
            }
            assert_eq!(sums, fig_row, "{server}");
        }
    }

    #[test]
    fn same_framework_errors_derive_from_table3() {
        // Metro↔Metro genE 1 + JBossWS↔JBossWS genE 1 + VB/JScript on
        // WCF compile errors 4 + 301 = 307.
        use ClientId as C;
        use ServerId as S;
        let mut sum = 0;
        for (client, server, cell) in TABLE3 {
            let same = matches!(
                (client, server),
                (C::Metro, S::Metro)
                    | (C::JBossWs, S::JBossWs)
                    | (C::DotnetCs | C::DotnetVb | C::DotnetJs, S::WcfDotNet)
            );
            if same {
                sum += cell[1];
                if cell[3] != NO_COMPILE {
                    sum += cell[3];
                }
            }
        }
        assert_eq!(sum, SAME_FRAMEWORK_ERRORS);
    }

    #[test]
    fn table3_has_all_33_cells() {
        assert_eq!(TABLE3.len(), 33);
    }
}
