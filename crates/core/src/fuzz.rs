//! WSDL-guided property-based exchange fuzzing with shrinking and
//! journaled reproducers.
//!
//! The paper only measures whether generated stubs describe, compile
//! and exchange under **nominal** inputs; real interoperability
//! failures surface when valid-but-adversarial payloads hit the type
//! mapping. This module derives seeded payload generators directly
//! from each deployed service's XSD types (the approach of
//! "WSDL-guided Test Case Generation for PropEr Testing of Web
//! Services") and drives them through the same exchange machinery the
//! campaign uses:
//!
//! * **Choice-tape generation** ([`ChoiceStream`]): every random
//!   decision the generator makes (cardinalities, choice branches,
//!   text edge cases) is one bounded `choose(n)` call, recorded on a
//!   tape of `u32`s. Replaying the tape under the same seed rebuilds
//!   the payload bit-identically, which makes every failing input
//!   replayable from `(seed, tape)` alone.
//! * **XSD-driven walkers**: recursion depth caps, element
//!   cardinality (`minOccurs`/`maxOccurs`/unbounded), `choice`
//!   branches, enumeration facets, and per-built-in text pools with
//!   boundary numerics (`i32::MIN`/`MAX`, overflow, `NaN`, `INF`),
//!   XML-meaningful characters, non-ASCII and whitespace/empty values.
//! * **Dual-path execution**: the in-process path
//!   ([`crate::exchange::exchange_generated`]) and the real-socket
//!   path ([`crate::wire`]) run the *same* request bytes, with an
//!   E15-style equivalence check (`divergences`, pinned zero) and a
//!   deliberate 413 size-cap boundary (`cap_hits`).
//! * **Shrinking** ([`shrink_tape`]): failing inputs delta-debug over
//!   the choice tape (chunk removal, then pointwise reduction toward
//!   choice 0 — generators order options simplest-first) until no
//!   smaller tape reproduces the same [`FuzzOutcome`].
//! * **Journaled reproducers**: each fuzzed `server × service` unit
//!   appends one atomic batch of checksummed records to the campaign
//!   journal ([`crate::journal::FuzzReproRecord`] /
//!   [`crate::journal::FuzzUnitRecord`]), surviving crash/resume and
//!   shard merge bit-identically.
//! * **Graceful degradation**: a panicking cell is isolated by
//!   `catch_unwind` and classified [`FuzzOutcome::Crash`]; an armed
//!   hang is classified [`FuzzOutcome::HangDeadline`] by the virtual
//!   watchdog verdict — a cell never aborts the run. Injected
//!   failures come from the existing fault layer
//!   ([`crate::faults::FaultPlan`]) gated on a *property of the
//!   generated payload* ([`PayloadProperty`]), so they are pure
//!   functions of the input and therefore shrink meaningfully.
//!
//! See DESIGN.md §14 for the full design and EXPERIMENTS.md E19 for
//! the findings table across the 11×3 framework matrix.

use std::collections::BTreeMap;
use std::fmt;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use wsinterop_frameworks::client::{ClientId, ErrorClass};
use wsinterop_frameworks::server::{all_servers, extension_servers, DeployOutcome, ServerId};
use wsinterop_wsdl::de::from_xml_str;
use wsinterop_wsdl::{soap, Definitions};
use wsinterop_xml::writer::{write_document, WriteOptions};
use wsinterop_xml::Element;
use wsinterop_xsd::{BuiltIn, ElementDecl, Group, MaxOccurs, Particle, SimpleType, TypeRef};

use crate::doccache::content_hash;
use crate::exchange::{classify_response, exchange_generated, ExchangeOutcome};
use crate::faults::{fuzz_site, FaultKind, FaultPlan};
use crate::journal::{FuzzReproRecord, FuzzUnitRecord, JournalWriter};
use crate::obs::{Obs, TracePhase};
use crate::shard::ShardSpec;
use crate::sync::lock_unpoisoned;
use crate::wire::{
    HostedService, WireClient, WireClientConfig, WireServer, WireServerConfig,
};

// --- choice tape ----------------------------------------------------

/// splitmix64: the tape's PRNG. Tiny, seedable, and with full 64-bit
/// avalanche — successive case seeds (which differ in one counter)
/// still decorrelate completely.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

enum ChoiceMode {
    /// Draw fresh choices from the seeded PRNG.
    Fresh(u64),
    /// Replay a recorded tape; exhausted positions yield 0 (the
    /// simplest option), which is what lets shrinking *remove* tape.
    Replay { tape: Vec<u32>, cursor: usize },
}

/// The generator's source of randomness: a stream of bounded choices,
/// recorded on a tape so any generation is replayable and shrinkable.
///
/// Convention: **choice 0 is the simplest option** at every decision
/// point (fewest repeats, plainest text, first branch), so reducing
/// tape entries toward zero shrinks the payload meaningfully.
pub struct ChoiceStream {
    mode: ChoiceMode,
    recorded: Vec<u32>,
}

impl ChoiceStream {
    /// A fresh stream seeded with `seed`.
    pub fn fresh(seed: u64) -> ChoiceStream {
        ChoiceStream {
            mode: ChoiceMode::Fresh(seed),
            recorded: Vec::new(),
        }
    }

    /// A replay stream over a recorded (possibly shrunk) tape.
    pub fn replay(tape: &[u32]) -> ChoiceStream {
        ChoiceStream {
            mode: ChoiceMode::Replay {
                tape: tape.to_vec(),
                cursor: 0,
            },
            recorded: Vec::new(),
        }
    }

    /// Draws one choice in `0..bound` (`bound` is clamped to ≥ 1) and
    /// records it. Replay streams reduce the tape entry modulo the
    /// bound, so an edited tape can never index out of range.
    pub fn choose(&mut self, bound: usize) -> usize {
        let bound = bound.max(1) as u64;
        let pick = match &mut self.mode {
            ChoiceMode::Fresh(state) => splitmix64(state) % bound,
            ChoiceMode::Replay { tape, cursor } => {
                let raw = tape.get(*cursor).copied().unwrap_or(0);
                *cursor += 1;
                u64::from(raw) % bound
            }
        };
        self.recorded.push(pick as u32);
        pick as usize
    }

    /// The choices recorded so far (post-modulo, so a recorded tape
    /// replays to itself exactly).
    pub fn into_tape(self) -> Vec<u32> {
        self.recorded
    }
}

// --- generation limits and text pools -------------------------------

/// Structural caps on one generated payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenLimits {
    /// Maximum nesting depth of generated complex content.
    pub max_depth: usize,
    /// Extra repeats granted to `maxOccurs="unbounded"` particles.
    pub max_repeat: usize,
    /// Length of the long-string edge case.
    pub max_text_len: usize,
    /// Element budget per payload; once spent, every structural choice
    /// collapses to option 0 (the smallest). The budget is a pure
    /// function of prior choices, so replay stays tape-aligned.
    pub payload_budget: usize,
}

impl Default for GenLimits {
    fn default() -> GenLimits {
        GenLimits {
            max_depth: 3,
            max_repeat: 3,
            max_text_len: 64,
            payload_budget: 256,
        }
    }
}

/// The per-built-in text edge-case pool. Index 0 is always the
/// simplest lexical value, per the shrinking convention.
fn builtin_pool(builtin: BuiltIn) -> &'static [&'static str] {
    match builtin {
        BuiltIn::Boolean => &["true", "false", "1", "0", " true"],
        BuiltIn::Byte => &["0", "1", "-1", "127", "-128", "128"],
        BuiltIn::Short => &["0", "1", "-1", "32767", "-32768", "32768"],
        BuiltIn::Int => &["0", "1", "-1", "2147483647", "-2147483648", "2147483648", "+7", "007"],
        BuiltIn::Long | BuiltIn::Integer => &[
            "0",
            "1",
            "-1",
            "9223372036854775807",
            "-9223372036854775808",
            "9223372036854775808",
        ],
        BuiltIn::UnsignedByte => &["0", "1", "255", "256", "-1"],
        BuiltIn::UnsignedShort => &["0", "1", "65535", "65536", "-1"],
        BuiltIn::UnsignedInt => &["0", "1", "4294967295", "4294967296", "-1"],
        BuiltIn::UnsignedLong => &[
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "-1",
        ],
        BuiltIn::Float | BuiltIn::Double => &[
            "0",
            "1.5",
            "-0.0",
            "NaN",
            "INF",
            "-INF",
            "1e308",
            "-1e-308",
            "0.30000000000000004",
        ],
        BuiltIn::Decimal => &[
            "0",
            "0.1",
            "-1",
            "99999999999999999999.99999999999999999999",
            ".5",
            "1.",
        ],
        BuiltIn::DateTime => &[
            "2014-01-01T00:00:00Z",
            "9999-12-31T23:59:59.999Z",
            "2014-02-30T12:00:00Z",
            "2014-01-01T00:00:00+14:00",
        ],
        BuiltIn::Date => &["2014-01-01", "0001-01-01", "2014-13-01"],
        BuiltIn::Time => &["00:00:00", "23:59:60", "12:00:00.000000001Z"],
        BuiltIn::Duration => &["PT0S", "P1Y2M3DT4H5M6S", "-P1D", "P"],
        BuiltIn::GYearMonth => &["2014-01", "0000-01"],
        BuiltIn::GYear => &["2014", "-0001"],
        BuiltIn::Base64Binary => &["", "QQ==", "QUJD", "not base64!"],
        BuiltIn::HexBinary => &["", "00", "ff", "0g"],
        BuiltIn::AnyUri => &["urn:a", "http://example.com/?q=a b", "%%%"],
        BuiltIn::QName => &["a", "p:b", "soapenv:Envelope"],
        _ => &[
            "",
            "v",
            " leading and trailing ",
            "a<b&c]]>",
            "quote\"apos'",
            "héllo wörld — ✓ 🦀",
            "\u{0627}\u{0644}\u{0633}\u{0644}\u{0627}\u{0645}",
            "\ttab\tand\nnewline",
            "<![CDATA[not-a-cdata]]>",
        ],
    }
}

/// `true` for types whose pool gets the extra long-string slot.
fn has_long_slot(builtin: BuiltIn) -> bool {
    matches!(
        builtin,
        BuiltIn::String | BuiltIn::AnyType | BuiltIn::AnySimpleType
    )
}

// --- the generator walker -------------------------------------------

/// One generated fuzz case: the serialized request envelope, the value
/// the echo must return, and the choice tape that rebuilds it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedCase {
    /// The compact-serialized SOAP request.
    pub request_xml: String,
    /// Text content of the first top-level argument — what
    /// [`classify_response`] expects the echo to return.
    pub expected: String,
    /// The operation invoked.
    pub operation: String,
    /// The recorded choice tape.
    pub tape: Vec<u32>,
}

struct Gen<'a> {
    defs: &'a Definitions,
    cs: ChoiceStream,
    limits: &'a GenLimits,
    budget: i64,
}

impl<'a> Gen<'a> {
    /// One bounded choice, collapsed to option 0 once the element
    /// budget is spent. `choose(1)` yields 0 in both modes and still
    /// consumes one tape slot, so fresh and replay streams stay
    /// aligned no matter where the budget runs out.
    fn pick(&mut self, bound: usize) -> usize {
        if self.budget <= 0 {
            self.cs.choose(1)
        } else {
            self.cs.choose(bound)
        }
    }

    fn occurs(&mut self, min: u32, max: MaxOccurs) -> usize {
        let min = min as usize;
        let hi = match max {
            MaxOccurs::Bounded(n) => (n as usize).max(min),
            MaxOccurs::Unbounded => min + self.limits.max_repeat,
        };
        min + self.pick(hi - min + 1)
    }

    fn find_simple(&self, ns_uri: &str, local: &str) -> Option<&'a SimpleType> {
        self.defs
            .schemas
            .iter()
            .filter(|s| s.target_ns == ns_uri)
            .find_map(|s| s.simple_type(local))
    }

    fn find_complex(&self, ns_uri: &str, local: &str) -> Option<&'a wsinterop_xsd::ComplexType> {
        self.defs
            .schemas
            .iter()
            .filter(|s| s.target_ns == ns_uri)
            .find_map(|s| s.complex_type(local))
    }

    fn find_global_element(&self, ns_uri: &str, local: &str) -> Option<&'a ElementDecl> {
        self.defs
            .schemas
            .iter()
            .filter(|s| s.target_ns == ns_uri)
            .find_map(|s| s.element(local))
    }

    fn text_value(&mut self, builtin: BuiltIn) -> String {
        let pool = builtin_pool(builtin);
        let extra = usize::from(has_long_slot(builtin));
        let idx = self.pick(pool.len() + extra);
        match pool.get(idx) {
            Some(text) => (*text).to_string(),
            None => "x".repeat(self.limits.max_text_len),
        }
    }

    fn simple_value(&mut self, st: &SimpleType) -> String {
        if st.enumeration.is_empty() {
            return self.text_value(st.base);
        }
        // One extra slot deliberately violates the enumeration facet.
        let idx = self.pick(st.enumeration.len() + 1);
        match st.enumeration.get(idx) {
            Some(value) => value.clone(),
            None => "not-in-enumeration".to_string(),
        }
    }

    fn gen_element(&mut self, name: &str, decl: &ElementDecl, depth: usize) -> Element {
        self.budget -= 1;
        let el = Element::new(name);
        if let Some(inline) = &decl.inline {
            return self.with_children(el, &inline.content, depth);
        }
        match &decl.type_ref {
            Some(TypeRef::BuiltIn(b)) => {
                let text = self.text_value(*b);
                el.with_text(text)
            }
            Some(TypeRef::Named { ns_uri, local }) => {
                if let Some(st) = self.find_simple(ns_uri, local) {
                    let text = self.simple_value(st);
                    el.with_text(text)
                } else if let Some(ct) = self.find_complex(ns_uri, local) {
                    self.with_children(el, &ct.content, depth)
                } else {
                    // Unresolvable named type (e.g. a cross-namespace
                    // import the document never inlines): emit empty
                    // content — the adversarial case *is* the gap.
                    el
                }
            }
            None => {
                let text = self.text_value(BuiltIn::AnyType);
                el.with_text(text)
            }
        }
    }

    fn with_children(&mut self, mut el: Element, group: &Group, depth: usize) -> Element {
        if depth >= self.limits.max_depth {
            return el;
        }
        let mut kids = Vec::new();
        self.gen_group(group, depth + 1, &mut kids);
        for kid in kids {
            el.push_element(kid);
        }
        el
    }

    fn gen_group(&mut self, group: &Group, depth: usize, out: &mut Vec<Element>) {
        match group.compositor {
            wsinterop_xsd::Compositor::Choice => {
                if !group.particles.is_empty() {
                    let branch = self.pick(group.particles.len());
                    if let Some(p) = group.particles.get(branch) {
                        self.gen_particle(p, depth, out);
                    }
                }
            }
            _ => {
                for p in &group.particles {
                    self.gen_particle(p, depth, out);
                }
            }
        }
    }

    fn gen_particle(&mut self, particle: &Particle, depth: usize, out: &mut Vec<Element>) {
        match particle {
            Particle::Element(decl) => {
                let n = self.occurs(decl.min_occurs, decl.max_occurs);
                for _ in 0..n {
                    out.push(self.gen_element(&decl.name, decl, depth));
                }
            }
            Particle::ElementRef { ns_uri, local } => {
                if let Some(decl) = self.find_global_element(ns_uri, local) {
                    let n = self.occurs(decl.min_occurs, decl.max_occurs);
                    for _ in 0..n {
                        out.push(self.gen_element(&decl.name, decl, depth));
                    }
                }
                // Unresolvable refs (the `.NET` `ref="s:schema"` shape)
                // contribute nothing — exactly what a stub would emit.
            }
            Particle::Any { .. } => {}
            Particle::Group(inner) => self.gen_group(inner, depth, out),
        }
    }

    /// The doc/literal wrapper's argument elements, named `m:{arg}` in
    /// the wrapper namespace exactly as [`soap::request`] names its
    /// single argument. The first argument particle is clamped to at
    /// least one instance so the echoed value is well-defined.
    fn wrapper_args(&mut self, wrapper: &'a ElementDecl, ns_uri: &str) -> Vec<Element> {
        let mut args = Vec::new();
        let Some(inline) = &wrapper.inline else {
            return args;
        };
        for (i, particle) in inline.content.particles.iter().enumerate() {
            match particle {
                Particle::Element(decl) => {
                    let mut n = self.occurs(decl.min_occurs, decl.max_occurs);
                    if i == 0 {
                        n = n.max(1);
                    }
                    for _ in 0..n {
                        let el = self
                            .gen_element(&format!("m:{}", decl.name), decl, 0)
                            .in_ns(ns_uri.to_string());
                        args.push(el);
                    }
                }
                other => self.gen_particle(other, 0, &mut args),
            }
        }
        args
    }
}

/// Generates one fuzz case for `op_name` of `defs`. `tape == None`
/// draws fresh choices under `seed`; `Some(tape)` replays a recorded
/// (possibly shrunk) tape — the same seed replays the same case
/// bit-identically.
///
/// # Errors
///
/// Fails with the same resolution errors as [`soap::input_wrapper`] —
/// the generator cannot build a request the stub couldn't either.
pub fn generate_case(
    defs: &Definitions,
    op_name: &str,
    seed: u64,
    tape: Option<&[u32]>,
    limits: &GenLimits,
) -> Result<GeneratedCase, soap::SoapError> {
    let (wrapper, ns_uri) = soap::input_wrapper(defs, op_name)?;
    let cs = match tape {
        None => ChoiceStream::fresh(seed),
        Some(tape) => ChoiceStream::replay(tape),
    };
    let mut gen = Gen {
        defs,
        cs,
        limits,
        budget: limits.payload_budget as i64,
    };
    let args = gen.wrapper_args(wrapper, ns_uri);
    let expected = args.first().map(Element::text_content).unwrap_or_default();
    let doc = soap::request_with_args(defs, op_name, args)?;
    Ok(GeneratedCase {
        request_xml: write_document(&doc, &WriteOptions::compact()),
        expected,
        operation: op_name.to_string(),
        tape: gen.cs.into_tape(),
    })
}

/// The deterministic per-case generator seed: a pure function of the
/// run seed and the case's coordinates, so any case regenerates in
/// isolation — on any thread, any shard, or from a journaled
/// reproducer.
pub fn case_seed(run_seed: u64, server: ServerId, fqcn: &str, case_index: usize) -> u64 {
    content_hash(
        format!("wsitool-fuzz-case-v1;seed={run_seed};server={server:?};service={fqcn};case={case_index}")
            .as_bytes(),
    )
}

// --- outcome taxonomy -----------------------------------------------

/// The closed fuzz outcome taxonomy. Codes are frozen (journaled);
/// [`FuzzOutcome::error_class`] folds the taxonomy into the existing
/// [`ErrorClass`] machinery without a catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuzzOutcome {
    /// The exchange completed and the echo matched.
    Accept,
    /// The payload was rejected through an orderly channel: the stub
    /// could not serialize it, the server faulted, the echo
    /// mismatched, or a message failed the WS-I profile.
    RejectClean,
    /// The cell hit its deadline (an armed hang, or a wire timeout).
    HangDeadline,
    /// The cell panicked and was isolated by `catch_unwind`.
    Crash,
    /// The socket transport failed below SOAP (reset, framing, 413).
    WireError,
}

impl FuzzOutcome {
    /// Every outcome, in code order.
    pub const ALL: [FuzzOutcome; 5] = [
        FuzzOutcome::Accept,
        FuzzOutcome::RejectClean,
        FuzzOutcome::HangDeadline,
        FuzzOutcome::Crash,
        FuzzOutcome::WireError,
    ];

    /// The frozen journal code.
    pub fn code(self) -> u8 {
        match self {
            FuzzOutcome::Accept => 0,
            FuzzOutcome::RejectClean => 1,
            FuzzOutcome::HangDeadline => 2,
            FuzzOutcome::Crash => 3,
            FuzzOutcome::WireError => 4,
        }
    }

    /// Decodes a journal code.
    pub fn from_code(code: u8) -> Option<FuzzOutcome> {
        FuzzOutcome::ALL.into_iter().find(|o| o.code() == code)
    }

    /// Stable display name (also the metrics label).
    pub fn name(self) -> &'static str {
        match self {
            FuzzOutcome::Accept => "accept",
            FuzzOutcome::RejectClean => "reject-clean",
            FuzzOutcome::HangDeadline => "hang-deadline",
            FuzzOutcome::Crash => "crash",
            FuzzOutcome::WireError => "wire-error",
        }
    }

    /// Maps an exchange outcome into the fuzz taxonomy. Every
    /// [`ExchangeOutcome`] variant lands in exactly one class — the
    /// exhaustive table test lives in `tests/fuzz_taxonomy.rs`.
    pub fn from_exchange(outcome: &ExchangeOutcome) -> FuzzOutcome {
        match outcome {
            ExchangeOutcome::Completed { .. } => FuzzOutcome::Accept,
            ExchangeOutcome::ClientCannotInvoke { .. }
            | ExchangeOutcome::ServerFault { .. }
            | ExchangeOutcome::EchoMismatch { .. }
            | ExchangeOutcome::NonConformantMessage { .. } => FuzzOutcome::RejectClean,
            ExchangeOutcome::TransportError { reason } => {
                if reason.contains("timeout") {
                    FuzzOutcome::HangDeadline
                } else {
                    FuzzOutcome::WireError
                }
            }
        }
    }

    /// Folds the fuzz taxonomy into the campaign's process-health
    /// classes: an accept is no error, a clean reject is an orderly
    /// [`ErrorClass::Diagnostic`], everything else means the cell
    /// itself misbehaved — [`ErrorClass::Disruptive`], the breaker
    /// trigger class.
    pub fn error_class(self) -> Option<ErrorClass> {
        match self {
            FuzzOutcome::Accept => None,
            FuzzOutcome::RejectClean => Some(ErrorClass::Diagnostic),
            FuzzOutcome::HangDeadline | FuzzOutcome::Crash | FuzzOutcome::WireError => {
                Some(ErrorClass::Disruptive)
            }
        }
    }
}

impl fmt::Display for FuzzOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// --- injected failure triggers --------------------------------------

/// A property of the generated payload that arms an injected failure.
/// Evaluated on the generated case alone (`request_xml` + the
/// pre-serialization `expected` text), so the trigger is a pure
/// function of the input — which is what makes an injected crash or
/// hang *shrinkable*: the minimal tape is the smallest input still
/// exhibiting the property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadProperty {
    /// Any non-ASCII byte in the echoed value.
    NonAscii,
    /// An XML-meaningful character (`<` or `&`) in the echoed value.
    XmlMeta,
    /// The serialized request nests elements
    /// [`DEEP_NESTING_THRESHOLD`] levels or deeper — the structural
    /// stressor real stacks mishandle (stack-recursive parsers,
    /// fixed-depth binders).
    DeepNesting,
    /// The echoed value is a boundary numeric: IEEE-754 specials
    /// (`NaN`/`INF`/`-INF`) or an integer whose magnitude overflows
    /// `xsd:int` — the 32-/64-bit seam the paper's frameworks disagree
    /// on.
    BoundaryNumeric,
}

/// Element depth at which [`PayloadProperty::DeepNesting`] holds. The
/// SOAP scaffolding (`Envelope > Body > operation > part`) is 4
/// levels, so 6 requires genuinely nested payload structure, which
/// the generator only produces for nested complex types.
pub const DEEP_NESTING_THRESHOLD: usize = 6;

/// Maximum element nesting depth of a serialized XML document
/// (self-closing elements count at their own level; declarations,
/// comments and text add nothing).
fn xml_element_depth(xml: &str) -> usize {
    let bytes = xml.as_bytes();
    let mut depth = 0usize;
    let mut deepest = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        match bytes.get(i + 1) {
            Some(b'/') => {
                depth = depth.saturating_sub(1);
                i += 2;
            }
            Some(b'?') | Some(b'!') => i += 2,
            Some(_) => {
                let end = xml[i..].find('>').map_or(bytes.len(), |e| i + e);
                depth += 1;
                deepest = deepest.max(depth);
                if bytes.get(end.wrapping_sub(1)) == Some(&b'/') {
                    depth -= 1;
                }
                i = end + 1;
            }
            None => break,
        }
    }
    deepest
}

/// Whether `text` is a boundary numeric: an IEEE-754 special or an
/// integer past the `xsd:int` range (either sign). Decimal-notation
/// only, mirroring the generator's pools — scientific notation like
/// `1e308` is a float edge the `NonAscii`/`XmlMeta` side never claims,
/// not an integer overflow.
fn is_boundary_numeric(text: &str) -> bool {
    if matches!(text, "NaN" | "INF" | "-INF") {
        return true;
    }
    text.parse::<i128>()
        .map(|v| v > i128::from(i32::MAX) || v < i128::from(i32::MIN))
        .unwrap_or(false)
}

impl PayloadProperty {
    /// Whether the generated case exhibits the property. `request_xml`
    /// is the serialized request, `expected` the pre-serialization
    /// echoed value.
    pub fn holds(self, request_xml: &str, expected: &str) -> bool {
        match self {
            PayloadProperty::NonAscii => expected.bytes().any(|b| b >= 0x80),
            PayloadProperty::XmlMeta => expected.contains('<') || expected.contains('&'),
            PayloadProperty::DeepNesting => {
                xml_element_depth(request_xml) >= DEEP_NESTING_THRESHOLD
            }
            PayloadProperty::BoundaryNumeric => is_boundary_numeric(expected),
        }
    }
}

/// The armed failure injections for one fuzz unit, derived from the
/// campaign fault plan: [`FaultKind::ClientGenPanic`] at the unit's
/// [`fuzz_site`] arms a crash, [`FaultPlan::slow_virtual_ms`] arms a
/// virtual hang; both fire only on payloads exhibiting the unit's
/// [`PayloadProperty`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzTrigger {
    crash_armed: bool,
    hang_armed: bool,
    property: PayloadProperty,
}

impl FuzzTrigger {
    /// Derives the unit's trigger from the fault plan.
    pub fn from_plan(plan: &FaultPlan, server: ServerId, fqcn: &str) -> FuzzTrigger {
        let site = fuzz_site(server, fqcn);
        let property_hash =
            content_hash(format!("{site};fuzz-trigger;seed={}", plan.seed()).as_bytes());
        FuzzTrigger {
            crash_armed: plan.decide(FaultKind::ClientGenPanic, &site),
            hang_armed: plan.slow_virtual_ms(&site).is_some(),
            property: match property_hash % 4 {
                0 => PayloadProperty::NonAscii,
                1 => PayloadProperty::XmlMeta,
                2 => PayloadProperty::DeepNesting,
                _ => PayloadProperty::BoundaryNumeric,
            },
        }
    }

    /// A trigger that never fires (the silent plan's shape).
    pub fn none() -> FuzzTrigger {
        FuzzTrigger {
            crash_armed: false,
            hang_armed: false,
            property: PayloadProperty::XmlMeta,
        }
    }

    fn hang_fires(&self, case: &GeneratedCase) -> bool {
        self.hang_armed && self.property.holds(&case.request_xml, &case.expected)
    }

    fn crash_fires(&self, case: &GeneratedCase) -> bool {
        self.crash_armed && self.property.holds(&case.request_xml, &case.expected)
    }
}

// --- case execution -------------------------------------------------

/// Runs one generated case through the in-process exchange path with
/// full isolation: an armed hang returns the virtual watchdog verdict
/// before any work, an armed crash panics *inside* `catch_unwind`
/// (exercising the same isolation a genuine panic would hit), and any
/// genuine panic in the stack is likewise caught and classified.
pub fn evaluate_in_process(
    defs: &Definitions,
    case: &GeneratedCase,
    trigger: &FuzzTrigger,
) -> FuzzOutcome {
    if trigger.hang_fires(case) {
        return FuzzOutcome::HangDeadline;
    }
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if trigger.crash_fires(case) {
            panic!("injected fuzz client panic");
        }
        FuzzOutcome::from_exchange(&exchange_generated(defs, &case.request_xml, &case.expected))
    }));
    run.unwrap_or(FuzzOutcome::Crash)
}

/// Replays a `(seed, tape)` pair in-process and classifies it — the
/// shrinking predicate, and the reproducer verification entry point:
/// a journaled [`FuzzReproRecord`] replays through exactly this.
pub fn replay_outcome(
    defs: &Definitions,
    op_name: &str,
    seed: u64,
    tape: &[u32],
    trigger: &FuzzTrigger,
    limits: &GenLimits,
) -> FuzzOutcome {
    let generated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        generate_case(defs, op_name, seed, Some(tape), limits)
    }));
    match generated {
        Err(_) => FuzzOutcome::Crash,
        Ok(Err(_)) => FuzzOutcome::RejectClean,
        Ok(Ok(case)) => evaluate_in_process(defs, &case, trigger),
    }
}

// --- shrinking ------------------------------------------------------

/// Delta-debugs a failing tape to a (locally) minimal reproducer:
/// chunk removal at halving granularity, then pointwise reduction
/// toward choice 0, repeated to fixpoint within `attempt_budget`
/// replays. Only candidates reproducing exactly `target` are accepted,
/// so the shrunk tape fails the same way the original did.
#[allow(clippy::too_many_arguments)] // a replay coordinate, not a config
pub fn shrink_tape(
    defs: &Definitions,
    op_name: &str,
    seed: u64,
    tape: &[u32],
    target: FuzzOutcome,
    trigger: &FuzzTrigger,
    limits: &GenLimits,
    attempt_budget: usize,
) -> Vec<u32> {
    let mut best = tape.to_vec();
    let mut attempts = 0usize;
    let reproduces = |candidate: &[u32], attempts: &mut usize| {
        *attempts += 1;
        replay_outcome(defs, op_name, seed, candidate, trigger, limits) == target
    };
    loop {
        let before = best.clone();
        // Phase 1: remove chunks, halving the chunk size.
        let mut chunk = (best.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.len() {
                if attempts >= attempt_budget {
                    return best;
                }
                let mut candidate = best.clone();
                let end = (start + chunk).min(candidate.len());
                candidate.drain(start..end);
                if reproduces(&candidate, &mut attempts) {
                    best = candidate;
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Phase 2: reduce each surviving choice toward 0.
        let mut i = 0;
        while i < best.len() {
            while best[i] > 0 {
                if attempts >= attempt_budget {
                    return best;
                }
                let mut candidate = best.clone();
                candidate[i] = 0;
                if reproduces(&candidate, &mut attempts) {
                    best = candidate;
                    break;
                }
                let halved = best[i] / 2;
                if halved == 0 {
                    break;
                }
                candidate = best.clone();
                candidate[i] = halved;
                if reproduces(&candidate, &mut attempts) {
                    best = candidate;
                } else {
                    break;
                }
            }
            i += 1;
        }
        if best == before {
            return best;
        }
    }
}

// --- run configuration ----------------------------------------------

/// Which exchange path(s) a fuzz run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FuzzTransport {
    /// In-process only (the canonical, socket-free path).
    #[default]
    InProcess,
    /// Loopback TCP only ([`crate::wire`]).
    Tcp,
    /// Both paths, with the E15-style equivalence check: the
    /// in-process outcome is canonical and any disagreement counts a
    /// divergence (pinned zero).
    Both,
}

impl FuzzTransport {
    fn uses_tcp(self) -> bool {
        !matches!(self, FuzzTransport::InProcess)
    }

    /// Parses the CLI form.
    pub fn parse(text: &str) -> Result<FuzzTransport, String> {
        match text {
            "in-process" => Ok(FuzzTransport::InProcess),
            "tcp" => Ok(FuzzTransport::Tcp),
            "both" => Ok(FuzzTransport::Both),
            other => Err(format!(
                "unknown transport {other:?}: expected in-process, tcp or both"
            )),
        }
    }
}

impl fmt::Display for FuzzTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FuzzTransport::InProcess => "in-process",
            FuzzTransport::Tcp => "tcp",
            FuzzTransport::Both => "both",
        })
    }
}

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Cases generated per `server × service` unit.
    pub cases: usize,
    /// The run seed every per-case seed derives from.
    pub seed: u64,
    /// Catalog stride (every `stride`-th entry per server).
    pub stride: usize,
    /// Include the extension platforms (Axis2 server).
    pub extended: bool,
    /// Worker threads. Never part of the config hash — results are
    /// bit-identical at any thread count.
    pub threads: usize,
    /// Exchange path(s).
    pub transport: FuzzTransport,
    /// Structural generation caps.
    pub limits: GenLimits,
    /// Replay budget per shrink.
    pub shrink_budget: usize,
    /// The wire server's request-body cap (the 413 boundary); the
    /// fuzz client's own response limit is kept strictly larger so
    /// the cap under test is always the server's.
    pub max_body: usize,
    /// Read/write deadline for both wire endpoints, milliseconds (the
    /// slow-loris bound a hang must beat).
    pub wire_timeout_ms: u64,
    /// The fault plan arming injected crash/hang triggers.
    pub plan: FaultPlan,
    /// Journal path; `None` disables journaling.
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal instead of truncating it.
    pub resume: bool,
    /// Deterministic kill switch: halt (exit 9) after this many unit
    /// batches are appended.
    pub halt_after_units: Option<usize>,
    /// Run only this shard's units.
    pub shard: Option<ShardSpec>,
}

impl FuzzConfig {
    /// A default-shaped config for `cases` per unit under `seed`.
    pub fn new(cases: usize, seed: u64) -> FuzzConfig {
        FuzzConfig {
            cases,
            seed,
            stride: 1,
            extended: false,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            transport: FuzzTransport::InProcess,
            limits: GenLimits::default(),
            shrink_budget: 500,
            max_body: crate::wire::HttpLimits::default().max_body,
            wire_timeout_ms: 2000,
            plan: FaultPlan::silent(seed),
            journal: None,
            resume: false,
            halt_after_units: None,
            shard: None,
        }
    }

    /// The config hash pinned in fuzz journal headers. Deliberately
    /// excludes threads, journal/resume/halt plumbing and the shard
    /// spec, so journals from any execution shape of the *same*
    /// science merge and compare bit-identically.
    pub fn config_hash(&self) -> u64 {
        let limits = &self.limits;
        content_hash(
            format!(
                "wsitool-fuzz-config-v1;cases={};seed={};stride={};extended={};transport={};\
                 depth={};repeat={};text={};budget={};shrink={};max_body={};timeout={};fault={}",
                self.cases,
                self.seed,
                self.stride,
                self.extended,
                self.transport,
                limits.max_depth,
                limits.max_repeat,
                limits.max_text_len,
                limits.payload_budget,
                self.shrink_budget,
                self.max_body,
                self.wire_timeout_ms,
                self.plan.fingerprint(),
            )
            .as_bytes(),
        )
    }
}

// --- unit enumeration -----------------------------------------------

/// One fuzzable unit: a deployed `server × service` pair.
#[derive(Debug, Clone)]
pub struct FuzzUnit {
    /// Owning server platform.
    pub server: ServerId,
    /// Fully-qualified class name the echo service was generated from.
    pub fqcn: String,
    /// The published description.
    pub wsdl_xml: String,
}

/// Enumerates every fuzzable unit in canonical (server, catalog)
/// order — the order journals commit in and shard merges rebuild. The
/// same enumeration drives workers, resume matching and the merge, so
/// the three can never disagree about what unit index means.
pub fn fuzz_units(stride: usize, extended: bool) -> Vec<FuzzUnit> {
    let servers = if extended {
        extension_servers()
    } else {
        all_servers()
    };
    let mut units = Vec::new();
    for server in servers {
        let id = server.info().id;
        for entry in server.catalog().entries().iter().step_by(stride.max(1)) {
            let DeployOutcome::Deployed { wsdl_xml } = server.deploy(entry) else {
                continue;
            };
            units.push(FuzzUnit {
                server: id,
                fqcn: entry.fqcn.clone(),
                wsdl_xml,
            });
        }
    }
    units
}

// --- outcome tables -------------------------------------------------

/// Per-pair outcome counts across the fuzzed matrix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzTable {
    counts: BTreeMap<(ServerId, ClientId), [u64; 5]>,
}

impl FuzzTable {
    /// Tallies one case outcome.
    pub fn record(&mut self, server: ServerId, client: ClientId, outcome: FuzzOutcome) {
        self.counts.entry((server, client)).or_default()[outcome.code() as usize] += 1;
    }

    /// Rebuilds the table from journaled unit records (client
    /// attribution is positional: case `i` → `ClientId::ALL[i % 11]`).
    pub fn from_units(units: &[FuzzUnitRecord]) -> FuzzTable {
        let mut table = FuzzTable::default();
        for unit in units {
            for (i, code) in unit.outcomes.iter().enumerate() {
                let client = ClientId::ALL[i % ClientId::ALL.len()];
                if let Some(outcome) = FuzzOutcome::from_code(*code) {
                    table.record(unit.server, client, outcome);
                }
            }
        }
        table
    }

    /// Total cases per outcome, across all pairs.
    pub fn totals(&self) -> [u64; 5] {
        let mut totals = [0u64; 5];
        for row in self.counts.values() {
            for (t, v) in totals.iter_mut().zip(row) {
                *t += v;
            }
        }
        totals
    }

    /// The byte-stable one-line totals summary CI greps for.
    pub fn totals_line(&self) -> String {
        let t = self.totals();
        format!(
            "fuzz totals: accept={} reject-clean={} hang-deadline={} crash={} wire-error={}",
            t[0], t[1], t[2], t[3], t[4]
        )
    }
}

impl fmt::Display for FuzzTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fuzz outcomes (server × client):")?;
        let mut current: Option<ServerId> = None;
        for ((server, client), row) in &self.counts {
            if current != Some(*server) {
                writeln!(f, "{server:?}:")?;
                writeln!(
                    f,
                    "  {:<28} {:>7} {:>13} {:>14} {:>6} {:>11}",
                    "client", "accept", "reject-clean", "hang-deadline", "crash", "wire-error"
                )?;
                current = Some(*server);
            }
            writeln!(
                f,
                "  {:<28} {:>7} {:>13} {:>14} {:>6} {:>11}",
                client.name(),
                row[0],
                row[1],
                row[2],
                row[3],
                row[4]
            )?;
        }
        write!(f, "{}", self.totals_line())
    }
}

// --- the run driver -------------------------------------------------

/// Everything a fuzz run (or a shard merge) produced.
#[derive(Debug)]
pub struct FuzzRunOutcome {
    /// The per-pair outcome table.
    pub table: FuzzTable,
    /// Unit records in canonical order (what the journal holds).
    pub units: Vec<FuzzUnitRecord>,
    /// Shrunk reproducers in canonical order.
    pub repros: Vec<FuzzReproRecord>,
    /// Units replayed from the journal instead of executed.
    pub replayed_units: usize,
    /// Units actually executed this run.
    pub executed_units: usize,
    /// Cases whose request exceeded the wire body cap (the deliberate
    /// 413 boundary; counted, and excluded from the equivalence check).
    pub cap_hits: u64,
    /// In-process vs TCP outcome disagreements under
    /// [`FuzzTransport::Both`] (pinned zero by E19's equivalence).
    pub divergences: u64,
}

struct UnitDone {
    record: FuzzUnitRecord,
    repros: Vec<FuzzReproRecord>,
    replayed: bool,
    cap_hits: u64,
    divergences: u64,
}

struct TcpLeg {
    server: WireServer,
    addr: SocketAddr,
    client: WireClient,
    /// Serializes posts: the accept-gate's 503 shedding is load
    /// dependent, and determinism may not hang on scheduler luck.
    post_lock: Mutex<()>,
}

impl TcpLeg {
    fn start(units: &[FuzzUnit], owned: &[usize], config: &FuzzConfig) -> Result<TcpLeg, String> {
        let mut services = BTreeMap::new();
        for &i in owned {
            let unit = &units[i];
            services.insert(
                format!("/{:?}/{}", unit.server, unit.fqcn),
                HostedService::new(unit.wsdl_xml.clone()),
            );
        }
        let timeout = Duration::from_millis(config.wire_timeout_ms.max(1));
        let mut server_config = WireServerConfig {
            workers: 8,
            queue_depth: 64,
            read_timeout: timeout,
            write_timeout: timeout,
            ..WireServerConfig::default()
        };
        // Satellite fix: the 413 cap and slow-loris deadlines are per
        // fuzz run, so large-payload generators exercise the boundary
        // deliberately instead of tripping a fixed default as noise.
        server_config.limits.max_body = config.max_body;
        let server = WireServer::start(0, services, server_config)
            .map_err(|e| format!("fuzz wire server failed to start: {e}"))?;
        let addr = server.addr();
        let mut client_config = WireClientConfig {
            connect_timeout: timeout,
            read_timeout: timeout,
            write_timeout: timeout,
            ..WireClientConfig::default()
        };
        // The client must always out-accept the server's cap, so the
        // boundary under test is unambiguous.
        client_config.limits.max_body =
            client_config.limits.max_body.max(config.max_body * 2 + 4096);
        Ok(TcpLeg {
            server,
            addr,
            client: WireClient::new(client_config),
            post_lock: Mutex::new(()),
        })
    }

    fn post_outcome(&self, path: &str, case: &GeneratedCase) -> FuzzOutcome {
        let _serialized = lock_unpoisoned(&self.post_lock);
        let exchange = match self.client.post(
            self.addr,
            path,
            &case.operation,
            case.request_xml.as_bytes(),
            path,
        ) {
            Err(e) => ExchangeOutcome::TransportError { reason: e.reason() },
            Ok(response) => match response.body_str() {
                None => ExchangeOutcome::TransportError {
                    reason: "response body is not UTF-8".to_string(),
                },
                Some(body) => classify_response(&case.request_xml, body, &case.expected),
            },
        };
        FuzzOutcome::from_exchange(&exchange)
    }
}

fn worst_label(outcomes: &[u8]) -> &'static str {
    outcomes
        .iter()
        .filter_map(|&code| FuzzOutcome::from_code(code))
        .max()
        .unwrap_or(FuzzOutcome::Accept)
        .name()
}

fn run_unit(
    unit: &FuzzUnit,
    config: &FuzzConfig,
    tcp: Option<&TcpLeg>,
    obs: Option<&Obs>,
) -> UnitDone {
    let span = obs.map(|o| o.begin_phase(TracePhase::Fuzz, unit.server.name(), None, &unit.fqcn));
    let defs = from_xml_str(&unit.wsdl_xml).ok();
    let op = defs.as_ref().and_then(|d| {
        d.port_types
            .iter()
            .flat_map(|pt| pt.operations.iter())
            .next()
            .map(|o| o.name.clone())
    });
    let trigger = FuzzTrigger::from_plan(&config.plan, unit.server, &unit.fqcn);
    let tcp_path = format!("/{:?}/{}", unit.server, unit.fqcn);

    let mut outcomes = Vec::with_capacity(config.cases);
    let mut repros = Vec::new();
    let mut cap_hits = 0u64;
    let mut divergences = 0u64;

    for i in 0..config.cases {
        let client = ClientId::ALL[i % ClientId::ALL.len()];
        let seed = case_seed(config.seed, unit.server, &unit.fqcn, i);
        let (outcome, case) = match (&defs, &op) {
            (Some(defs), Some(op)) => {
                let generated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    generate_case(defs, op, seed, None, &config.limits)
                }));
                match generated {
                    Err(_) => (FuzzOutcome::Crash, None),
                    Ok(Err(_)) => (FuzzOutcome::RejectClean, None),
                    Ok(Ok(case)) => {
                        let triggered = trigger.hang_fires(&case)
                            || trigger.crash_fires(&case);
                        let in_process = evaluate_in_process(defs, &case, &trigger);
                        let over_cap = case.request_xml.len() > config.max_body;
                        let outcome = match config.transport {
                            FuzzTransport::InProcess => in_process,
                            FuzzTransport::Tcp => {
                                if over_cap {
                                    cap_hits += 1;
                                }
                                if triggered {
                                    // Pre-transport verdicts (the armed
                                    // hang/crash model the *client*, not
                                    // the wire) are transport-agnostic.
                                    in_process
                                } else {
                                    tcp.map_or(in_process, |leg| {
                                        leg.post_outcome(&tcp_path, &case)
                                    })
                                }
                            }
                            FuzzTransport::Both => {
                                if over_cap {
                                    cap_hits += 1;
                                } else if !triggered {
                                    if let Some(leg) = tcp {
                                        let wire = leg.post_outcome(&tcp_path, &case);
                                        if wire != in_process {
                                            divergences += 1;
                                        }
                                    }
                                }
                                in_process
                            }
                        };
                        (outcome, Some(case))
                    }
                }
            }
            // No parseable description or no operation: nothing to
            // invoke — the orderly rejection the survey reports too.
            _ => (FuzzOutcome::RejectClean, None),
        };
        outcomes.push(outcome.code());
        if let Some(o) = obs {
            let metrics = o.metrics_arc();
            metrics.inc("fuzz_cases_total");
            metrics.inc(&format!(
                "fuzz_outcome_total{{outcome=\"{}\"}}",
                outcome.name()
            ));
        }
        if outcome.error_class() == Some(ErrorClass::Disruptive) {
            // A disruptive case becomes a journaled reproducer; crash
            // and hang verdicts replay in-process, so they shrink.
            let (tape, digest) = match (&defs, &op, &case) {
                (Some(defs), Some(op), Some(case)) => {
                    let tape = if matches!(
                        outcome,
                        FuzzOutcome::Crash | FuzzOutcome::HangDeadline
                    ) {
                        shrink_tape(
                            defs,
                            op,
                            seed,
                            &case.tape,
                            outcome,
                            &trigger,
                            &config.limits,
                            config.shrink_budget,
                        )
                    } else {
                        case.tape.clone()
                    };
                    let digest = generate_case(defs, op, seed, Some(&tape), &config.limits)
                        .map(|c| content_hash(c.request_xml.as_bytes()))
                        .unwrap_or(0);
                    (tape, digest)
                }
                _ => (Vec::new(), 0),
            };
            repros.push(FuzzReproRecord {
                server: unit.server,
                client,
                outcome: outcome.code(),
                case_index: i as u32,
                seed,
                digest,
                fqcn: unit.fqcn.clone(),
                tape,
            });
        }
    }

    if let (Some(o), Some(span)) = (obs, span) {
        o.end_phase(
            TracePhase::Fuzz,
            unit.server.name(),
            None,
            &unit.fqcn,
            worst_label(&outcomes),
            None,
            0,
            false,
            span,
        );
    }
    UnitDone {
        record: FuzzUnitRecord {
            server: unit.server,
            fqcn: unit.fqcn.clone(),
            outcomes,
        },
        repros,
        replayed: false,
        cap_hits,
        divergences,
    }
}

/// Flushes every consecutive ready slot at the commit cursor: journal
/// batch append (skipped for replayed units — their frames are already
/// on disk) and canonical-order result collection. Workers finish
/// units in any order; this re-serializes the visible effects, which
/// is what makes journal bytes identical at any thread count.
fn flush_ready(
    cursor: &Mutex<usize>,
    slots: &[Mutex<Option<UnitDone>>],
    writer: Option<&JournalWriter>,
    out: &Mutex<Vec<UnitDone>>,
) {
    let mut at = lock_unpoisoned(cursor);
    while *at < slots.len() {
        let taken = lock_unpoisoned(&slots[*at]).take();
        let Some(done) = taken else {
            break;
        };
        if let Some(w) = writer {
            if !done.replayed {
                w.append_fuzz_batch(&done.repros, &done.record);
            }
        }
        lock_unpoisoned(out).push(done);
        *at += 1;
    }
}

/// Runs a fuzz campaign over every owned unit. Deterministic by
/// construction: identical outcome tables, journal bytes and shrunk
/// reproducers across repeat runs, thread counts and shard counts.
///
/// # Errors
///
/// Journal open/config failures and wire-server start failures; the
/// fuzzing itself never errors (every cell is isolated and
/// classified).
pub fn run(config: &FuzzConfig, obs: Option<&Obs>) -> Result<FuzzRunOutcome, String> {
    let units = fuzz_units(config.stride, config.extended);
    let owned: Vec<usize> = units
        .iter()
        .enumerate()
        .filter(|(i, _)| config.shard.is_none_or(|s| s.owns(*i)))
        .map(|(i, _)| i)
        .collect();

    // Journal: fresh, or resume with already-committed units replayed.
    let mut writer = None;
    let mut replayed: BTreeMap<(ServerId, String), (FuzzUnitRecord, Vec<FuzzReproRecord>)> =
        BTreeMap::new();
    if let Some(path) = &config.journal {
        if config.resume && path.exists() {
            let (w, read) =
                JournalWriter::resume_fuzz(path, config.config_hash(), config.halt_after_units)
                    .map_err(|e| e.to_string())?;
            for unit in read.fuzz_units {
                replayed.insert((unit.server, unit.fqcn.clone()), (unit, Vec::new()));
            }
            for repro in read.repros {
                if let Some(slot) = replayed.get_mut(&(repro.server, repro.fqcn.clone())) {
                    slot.1.push(repro);
                }
            }
            writer = Some(w);
        } else {
            writer = Some(
                JournalWriter::create(path, config.config_hash(), config.halt_after_units)
                    .map_err(|e| e.to_string())?,
            );
        }
    }

    let slots: Vec<Mutex<Option<UnitDone>>> =
        owned.iter().map(|_| Mutex::new(None)).collect();
    let mut replayed_units = 0usize;
    for (slot, &unit_index) in slots.iter().zip(&owned) {
        let unit = &units[unit_index];
        if let Some((record, repros)) = replayed.remove(&(unit.server, unit.fqcn.clone())) {
            if record.outcomes.len() == config.cases {
                *lock_unpoisoned(slot) = Some(UnitDone {
                    record,
                    repros,
                    replayed: true,
                    cap_hits: 0,
                    divergences: 0,
                });
                replayed_units += 1;
            }
        }
    }

    let tcp = if config.transport.uses_tcp() {
        Some(TcpLeg::start(&units, &owned, config)?)
    } else {
        None
    };

    let claim = AtomicUsize::new(0);
    let cursor = Mutex::new(0usize);
    let committed: Mutex<Vec<UnitDone>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..config.threads.max(1) {
            scope.spawn(|| loop {
                let i = claim.fetch_add(1, Ordering::Relaxed);
                if i >= owned.len() {
                    break;
                }
                let prefilled = lock_unpoisoned(&slots[i]).is_some();
                if !prefilled {
                    let done = run_unit(&units[owned[i]], config, tcp.as_ref(), obs);
                    *lock_unpoisoned(&slots[i]) = Some(done);
                }
                flush_ready(&cursor, &slots, writer.as_ref(), &committed);
            });
        }
    });
    // All-replayed runs (and torn stragglers) flush here.
    flush_ready(&cursor, &slots, writer.as_ref(), &committed);

    if let Some(leg) = tcp {
        leg.server.shutdown();
    }
    if let Some(w) = &writer {
        if let Some(e) = w.take_error() {
            return Err(format!("fuzz journal write failed: {e}"));
        }
    }

    let done = lock_unpoisoned(&committed);
    let mut outcome = FuzzRunOutcome {
        table: FuzzTable::default(),
        units: Vec::with_capacity(done.len()),
        repros: Vec::new(),
        replayed_units,
        executed_units: done.len() - replayed_units,
        cap_hits: 0,
        divergences: 0,
    };
    for unit in done.iter() {
        outcome.cap_hits += unit.cap_hits;
        outcome.divergences += unit.divergences;
        outcome.repros.extend(unit.repros.iter().cloned());
        outcome.units.push(unit.record.clone());
    }
    outcome.table = FuzzTable::from_units(&outcome.units);
    Ok(outcome)
}

// --- shard merge ----------------------------------------------------

/// Merges per-shard fuzz journals back into one canonical journal
/// (`merged.journal` in `dir`) plus the run outcome, exactly-once:
/// every owned unit must appear in precisely the shard that owns it,
/// with a full case vector, under the same config hash. The merged
/// journal is bit-identical to a single-process run by construction —
/// units are re-emitted in canonical enumeration order through the
/// same batch encoder.
///
/// # Errors
///
/// Unreadable/mismatched shard journals, missing or duplicate units,
/// and short (torn) case vectors.
pub fn merge_fuzz_shard_dir(
    dir: &std::path::Path,
    count: usize,
    config: &FuzzConfig,
) -> Result<(FuzzRunOutcome, PathBuf), String> {
    let expected_hash = config.config_hash();
    let mut by_key: BTreeMap<(ServerId, String), (usize, FuzzUnitRecord, Vec<FuzzReproRecord>)> =
        BTreeMap::new();
    for shard_index in 0..count {
        let spec = ShardSpec::new(shard_index, count);
        let path = spec.journal_file(dir);
        let read = crate::journal::read_journal(&path)
            .map_err(|e| format!("shard {shard_index}/{count} journal {path:?}: {e}"))?;
        if read.config_hash != expected_hash {
            return Err(format!(
                "shard {shard_index}/{count} journal was written by a different fuzz \
                 configuration (0x{:016x} != 0x{expected_hash:016x})",
                read.config_hash
            ));
        }
        let mut pending: BTreeMap<(ServerId, String), Vec<FuzzReproRecord>> = BTreeMap::new();
        for repro in read.repros {
            pending
                .entry((repro.server, repro.fqcn.clone()))
                .or_default()
                .push(repro);
        }
        for unit in read.fuzz_units {
            let key = (unit.server, unit.fqcn.clone());
            let repros = pending.remove(&key).unwrap_or_default();
            if by_key
                .insert(key.clone(), (shard_index, unit, repros))
                .is_some()
            {
                return Err(format!(
                    "unit {:?}/{} appears in more than one shard journal",
                    key.0, key.1
                ));
            }
        }
    }

    let units = fuzz_units(config.stride, config.extended);
    let merged_path = dir.join("merged.journal");
    let writer = JournalWriter::create(&merged_path, expected_hash, None)
        .map_err(|e| e.to_string())?;
    let mut outcome = FuzzRunOutcome {
        table: FuzzTable::default(),
        units: Vec::new(),
        repros: Vec::new(),
        replayed_units: 0,
        executed_units: 0,
        cap_hits: 0,
        divergences: 0,
    };
    for (global_index, unit) in units.iter().enumerate() {
        let Some((from_shard, record, repros)) =
            by_key.remove(&(unit.server, unit.fqcn.clone()))
        else {
            return Err(format!(
                "unit {:?}/{} missing from every shard journal",
                unit.server, unit.fqcn
            ));
        };
        let owner = ShardSpec::new(from_shard, count);
        if !owner.owns(global_index) {
            return Err(format!(
                "unit {:?}/{} was journaled by shard {from_shard}/{count}, which does not own it",
                unit.server, unit.fqcn
            ));
        }
        if record.outcomes.len() != config.cases {
            return Err(format!(
                "unit {:?}/{} journaled {} of {} cases (torn shard run)",
                unit.server,
                unit.fqcn,
                record.outcomes.len(),
                config.cases
            ));
        }
        writer.append_fuzz_batch(&repros, &record);
        outcome.executed_units += 1;
        outcome.repros.extend(repros);
        outcome.units.push(record);
    }
    if let Some(stray) = by_key.keys().next() {
        return Err(format!(
            "shard journals contain a unit outside this configuration: {:?}/{}",
            stray.0, stray.1
        ));
    }
    if let Some(e) = writer.take_error() {
        return Err(format!("merged fuzz journal write failed: {e}"));
    }
    outcome.table = FuzzTable::from_units(&outcome.units);
    Ok((outcome, merged_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_frameworks::server::{Metro, ServerSubsystem};

    fn metro_string_wsdl() -> String {
        Metro
            .deploy(Metro.catalog().get("java.lang.String").unwrap())
            .wsdl()
            .unwrap()
            .to_string()
    }

    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn choice_stream_replays_its_own_tape() {
        let mut fresh = ChoiceStream::fresh(42);
        let drawn: Vec<usize> = (0..64).map(|i| fresh.choose(3 + i % 7)).collect();
        let tape = fresh.into_tape();
        let mut replay = ChoiceStream::replay(&tape);
        let replayed: Vec<usize> = (0..64).map(|i| replay.choose(3 + i % 7)).collect();
        assert_eq!(drawn, replayed);
        assert_eq!(replay.into_tape(), tape);
    }

    #[test]
    fn exhausted_replay_collapses_to_simplest() {
        let mut cs = ChoiceStream::replay(&[5]);
        assert_eq!(cs.choose(10), 5);
        assert_eq!(cs.choose(10), 0);
        assert_eq!(cs.choose(1), 0);
    }

    #[test]
    fn generation_is_deterministic_and_replayable() {
        let wsdl = metro_string_wsdl();
        let defs = from_xml_str(&wsdl).unwrap();
        let limits = GenLimits::default();
        for seed in [1u64, 99, 0xdead_beef] {
            let a = generate_case(&defs, "echo", seed, None, &limits).unwrap();
            let b = generate_case(&defs, "echo", seed, None, &limits).unwrap();
            assert_eq!(a, b);
            let replayed = generate_case(&defs, "echo", seed, Some(&a.tape), &limits).unwrap();
            assert_eq!(replayed.request_xml, a.request_xml);
            assert_eq!(replayed.expected, a.expected);
            assert_eq!(replayed.tape, a.tape);
        }
    }

    #[test]
    fn generated_cases_classify_without_panicking() {
        let wsdl = metro_string_wsdl();
        let defs = from_xml_str(&wsdl).unwrap();
        let limits = GenLimits::default();
        let trigger = FuzzTrigger::none();
        let mut seen_accept = false;
        for i in 0..40 {
            let case = generate_case(&defs, "echo", i, None, &limits).unwrap();
            let outcome = evaluate_in_process(&defs, &case, &trigger);
            assert_ne!(outcome, FuzzOutcome::Crash, "case {i}");
            seen_accept |= outcome == FuzzOutcome::Accept;
        }
        assert!(seen_accept, "no generated case ever completed an exchange");
    }

    #[test]
    fn forced_crash_shrinks_to_minimal_reproducer() {
        // A plain-string echo, so the payload can exhibit either
        // trigger property (XML-meta and non-ASCII pool entries).
        let defs = wsinterop_wsdl::builder::doc_literal_echo(
            "S",
            "urn:t",
            "echo",
            wsinterop_xsd::TypeRef::BuiltIn(BuiltIn::String),
        );
        let limits = GenLimits::default();
        let plan = FaultPlan::silent(7).force_at(
            FaultKind::ClientGenPanic,
            fuzz_site(ServerId::Metro, "test.Case"),
        );
        let trigger = FuzzTrigger::from_plan(&plan, ServerId::Metro, "test.Case");
        // Assertions stay outside quiet_panics so failures report; the
        // injected panics inside are all caught by the replay machinery.
        let outcome = quiet_panics(|| {
            let (seed, case) = (0u64..200).find_map(|seed| {
                let case = generate_case(&defs, "echo", seed, None, &limits).ok()?;
                (evaluate_in_process(&defs, &case, &trigger) == FuzzOutcome::Crash)
                    .then_some((seed, case))
            })?;
            let shrunk = shrink_tape(
                &defs,
                "echo",
                seed,
                &case.tape,
                FuzzOutcome::Crash,
                &trigger,
                &limits,
                500,
            );
            let replays =
                replay_outcome(&defs, "echo", seed, &shrunk, &trigger, &limits)
                    == FuzzOutcome::Crash;
            // 1-minimality: zeroing any surviving choice must lose the crash.
            let reducible: Vec<usize> = (0..shrunk.len())
                .filter(|&i| {
                    if shrunk[i] == 0 {
                        return false;
                    }
                    let mut smaller = shrunk.clone();
                    smaller[i] = 0;
                    replay_outcome(&defs, "echo", seed, &smaller, &trigger, &limits)
                        == FuzzOutcome::Crash
                })
                .collect();
            Some((case.tape.len(), shrunk.len(), replays, reducible))
        });
        let (original_len, shrunk_len, replays, reducible) =
            outcome.expect("no crashing seed in 200 tries");
        assert!(shrunk_len <= original_len);
        assert!(replays, "shrunk tape no longer reproduces the crash");
        assert!(reducible.is_empty(), "reducible choices: {reducible:?}");
    }

    #[test]
    fn outcome_codes_roundtrip_and_order_by_severity() {
        for outcome in FuzzOutcome::ALL {
            assert_eq!(FuzzOutcome::from_code(outcome.code()), Some(outcome));
        }
        assert_eq!(FuzzOutcome::from_code(5), None);
        assert!(FuzzOutcome::Accept < FuzzOutcome::Crash);
    }

    #[test]
    fn config_hash_ignores_execution_shape() {
        let mut a = FuzzConfig::new(22, 9);
        let mut b = FuzzConfig::new(22, 9);
        a.threads = 1;
        b.threads = 16;
        b.journal = Some(PathBuf::from("/tmp/x.journal"));
        b.shard = Some(ShardSpec::new(0, 3));
        b.halt_after_units = Some(1);
        assert_eq!(a.config_hash(), b.config_hash());
        b.seed = 10;
        assert_ne!(a.config_hash(), b.config_hash());
    }

    #[test]
    fn fuzz_units_enumerates_in_canonical_order() {
        let units = fuzz_units(1500, false);
        assert!(!units.is_empty());
        let mut last_server_index = 0;
        for unit in &units {
            let idx = ServerId::ALL
                .iter()
                .position(|s| *s == unit.server)
                .unwrap();
            assert!(idx >= last_server_index, "servers out of order");
            last_server_index = idx;
        }
        assert_eq!(units.len(), fuzz_units(1500, false).len());
    }

    #[test]
    fn run_is_thread_count_invariant() {
        let mut one = FuzzConfig::new(11, 3);
        one.stride = 1500;
        one.threads = 1;
        let mut many = one.clone();
        many.threads = 8;
        let a = run(&one, None).unwrap();
        let b = run(&many, None).unwrap();
        assert_eq!(a.table, b.table);
        assert_eq!(a.units, b.units);
        assert_eq!(a.repros, b.repros);
    }
}
