//! Poison-tolerant synchronization helpers shared by every locking
//! layer of the campaign engine.
//!
//! A panicking worker thread must never cascade into a poisoned-lock
//! abort of the whole campaign: every guarded structure in this
//! codebase holds either plain data (collections of finished records,
//! memo maps, ring buffers) or state whose invariants are re-checked
//! by the reader, so recovering the inner value after a poison is
//! always sound. These helpers are the single place that policy is
//! encoded — `docs/CONCURRENCY.md` defines which locks exist, the
//! order they may be acquired in, and why poison recovery is safe at
//! each site.
//!
//! Historically four copies of this logic existed (`faults`,
//! `obs::metrics`, and two ad-hoc `unwrap_or_else` sites in
//! `campaign`); they are deduplicated here so a reviewer has exactly
//! one poison policy to audit.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a [`Mutex`], recovering the guard from a poisoned lock.
///
/// Lock sites that call this must carry a `lock-order` comment naming
/// their level in the hierarchy of `docs/CONCURRENCY.md`.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Acquires a shared [`RwLock`] read guard, recovering from poison.
pub fn read_unpoisoned<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Acquires an exclusive [`RwLock`] write guard, recovering from
/// poison.
pub fn write_unpoisoned<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Consumes a [`Mutex`] and returns its inner value, recovering the
/// data from a poisoned lock (a worker that panicked while holding the
/// guard leaves fully-formed records behind — the panic is accounted
/// separately by the fault log).
pub fn into_inner_unpoisoned<T>(mutex: Mutex<T>) -> T {
    mutex
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn mutex_guard_recovers_after_a_panicking_holder() {
        let m = Mutex::new(7u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        *lock_unpoisoned(&m) += 1;
        assert_eq!(into_inner_unpoisoned(m), 8);
    }

    #[test]
    fn rwlock_guards_recover_after_a_panicking_writer() {
        let l = RwLock::new(3u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = l.write().unwrap();
            panic!("poison it");
        }));
        assert!(l.is_poisoned());
        assert_eq!(*read_unpoisoned(&l), 3);
        *write_unpoisoned(&l) = 4;
        assert_eq!(*read_unpoisoned(&l), 4);
    }
}
