//! The parse-once pipeline: per-service parsed descriptions, shared by
//! reference, behind a campaign-wide content-addressed memo.
//!
//! The naive campaign re-reads every published description ~13 times
//! per service: once for the WS-I Basic Profile check, once per client
//! for each of the eleven Artifact Generation steps, and once more for
//! the chaos wire probe — plus eleven independent [`DocFacts`]
//! analyses. One parse and one analysis suffice: a description is
//! immutable once published, and every consumer is a pure function of
//! its content.
//!
//! [`ParsedService`] holds the text, the parsed [`Definitions`], the
//! precomputed [`DocFacts`] and a content hash, computed exactly once
//! at deploy time and shared by `Arc` across the WS-I analyzer, all
//! eleven `generate_from` calls and the wire probe. [`DocCache`] adds
//! the campaign-wide memo:
//!
//! * **hash(WSDL bytes) → [`ParsedService`]** — structurally identical
//!   descriptions across catalog entries are parsed and analyzed once;
//! * **(ClientId, hash) → [`GenOutcome`]** — a client's reaction to a
//!   document it has already classified is replayed from the memo.
//!
//! Both memos are provably safe: `generate_from` must be a pure
//! function of the document (see [`ClientSubsystem`]), hash hits are
//! verified byte-for-byte before reuse (a colliding document is parsed
//! fresh and never memoized), and parse-failure messages are preserved
//! verbatim so the cached pipeline reproduces the text path's
//! [`GenOutcome`]s bit-identically. Fault-injected (corrupted-WSDL)
//! sites bypass the memo entirely — wire-level damage must hit the
//! real parser, and its classification must never leak into (or out
//! of) the memo shared by pristine sites.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use wsinterop_frameworks::client::facts::DocFacts;
use wsinterop_frameworks::client::{parse_for_generation, ClientId, ClientSubsystem, GenOutcome};
use wsinterop_wsdl::Definitions;

use crate::sync::lock_unpoisoned;
use crate::obs::{LazyCounter, MetricsRegistry};

/// Registry names for the cache's instruments. Private: the public
/// surface is [`PipelineStats`]; the names are documented in
/// DESIGN.md §11 and visible through `wsitool metrics`.
const M_PARSES: &str = "doccache_parses_total";
const M_DOC_HITS: &str = "doccache_doc_memo_hits_total";
const M_GEN_RUNS: &str = "doccache_gen_runs_total";
const M_GEN_HITS: &str = "doccache_gen_memo_hits_total";
const M_FAULT_BYPASSES: &str = "doccache_fault_bypasses_total";
const M_TEXT_GENERATES: &str = "doccache_text_generates_total";
const M_FAULT_TEXT_GENERATES: &str = "doccache_fault_text_generates_total";
const M_JOURNAL_REPLAYS: &str = "journal_cells_replayed_total";

/// One service description, parsed exactly once.
#[derive(Debug)]
pub struct ParsedService {
    /// The published WSDL text, verbatim — the tool-fidelity input for
    /// the fault-injection path and byte-equality collision checks.
    wsdl_xml: String,
    /// FNV-1a hash of the WSDL bytes (the content address).
    content_hash: u64,
    /// The parse: document + facts, or the generation-error message
    /// every text-input tool reports for this (unreadable) description.
    doc: Result<(Definitions, DocFacts), String>,
    /// `false` for fault-damaged or hash-colliding documents, which
    /// must never serve from (or populate) the generation memo.
    memoizable: bool,
    /// `true` when this parse came through the fault-site bypass — the
    /// published bytes were (or may have been) damaged by injection.
    /// Lets the pipeline stats count injected-and-parsed sites exactly
    /// once, never both as a bypass and a plain text generate.
    fault_damaged: bool,
}

impl ParsedService {
    /// Parses `wsdl_xml` outside any memo (fault sites, cache-disabled
    /// runs, colliding hashes).
    pub fn parse_uncached(wsdl_xml: String) -> ParsedService {
        let content_hash = content_hash(wsdl_xml.as_bytes());
        let doc = parse_for_generation(&wsdl_xml);
        ParsedService {
            wsdl_xml,
            content_hash,
            doc,
            memoizable: false,
            fault_damaged: false,
        }
    }

    /// Whether this parse came through the fault-site bypass.
    pub fn fault_damaged(&self) -> bool {
        self.fault_damaged
    }

    /// The published description text.
    pub fn wsdl_xml(&self) -> &str {
        &self.wsdl_xml
    }

    /// The content address (FNV-1a over the WSDL bytes).
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// The parsed document, when the description was readable.
    pub fn defs(&self) -> Option<&Definitions> {
        self.doc.as_ref().ok().map(|(defs, _)| defs)
    }

    /// The precomputed document facts, when the description was
    /// readable.
    pub fn facts(&self) -> Option<&DocFacts> {
        self.doc.as_ref().ok().map(|(_, facts)| facts)
    }

    /// The generation-error message for an unreadable description.
    pub fn parse_error(&self) -> Option<&str> {
        self.doc.as_ref().err().map(String::as_str)
    }

    /// The first operation declared across the port types — the wire
    /// probe's invocation target (no re-parse required).
    pub fn first_operation(&self) -> Option<&str> {
        self.defs().and_then(|defs| {
            defs.port_types
                .iter()
                .flat_map(|pt| pt.operations.iter())
                .next()
                .map(|op| op.name.as_str())
        })
    }
}

/// FNV-1a over the description bytes. Stable across platforms and
/// releases (the same constants as the fault plan's site hash).
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Default number of independent lock stripes each memo is split
/// across (see [`DocCache::with_stripe_count`]).
pub const DEFAULT_MEMO_STRIPES: usize = 8;

/// One lock stripe of the memo: a slice of the document memo and the
/// matching slice of the generation memo, behind their own mutexes.
///
/// Striping by content hash means two workers contend only when they
/// touch documents that land in the same stripe — at N stripes the
/// expected contention on the parse-once hot path drops by ~N compared
/// to the historical single-map memos, without changing what the memo
/// stores: a key maps to exactly one stripe, so first-insert-wins and
/// byte-verified hits behave exactly as before.
#[derive(Debug, Default)]
struct MemoStripe {
    docs: Mutex<HashMap<u64, Arc<ParsedService>>>,
    gen: Mutex<HashMap<(ClientId, u64), GenOutcome>>,
}

/// Campaign-wide content-addressed memo over parsed descriptions and
/// per-client generation outcomes, with hit/miss accounting.
///
/// The memos are split into hash-addressed lock stripes
/// ([`DEFAULT_MEMO_STRIPES`] by default) so parallel workers only
/// contend when their documents collide on a stripe; the stripe count
/// is an execution detail with no observable effect on results (a
/// property test pins single-stripe ≡ striped campaigns bit-for-bit).
///
/// The hit/miss counters are registry-backed instruments
/// (`doccache_*` / `journal_cells_replayed_total`), pre-resolved into
/// lock-free [`LazyCounter`] handles on first use: an uninstrumented
/// cache owns a private [`MetricsRegistry`]; an instrumented campaign
/// shares its observer's, so `wsitool metrics` sees the same numbers
/// [`DocCache::stats`] reports.
#[derive(Debug)]
pub struct DocCache {
    stripes: Box<[MemoStripe]>,
    metrics: Arc<MetricsRegistry>,
    parses: LazyCounter,
    doc_hits: LazyCounter,
    gen_runs: LazyCounter,
    gen_hits: LazyCounter,
    fault_bypasses: LazyCounter,
    text_generates: LazyCounter,
    fault_text_generates: LazyCounter,
    journal_replays: LazyCounter,
}

impl Default for DocCache {
    fn default() -> DocCache {
        DocCache::with_config(DEFAULT_MEMO_STRIPES, Arc::default())
    }
}

impl DocCache {
    /// A fresh, empty cache with a private metrics registry.
    pub fn new() -> DocCache {
        DocCache::default()
    }

    /// A fresh cache publishing its accounting into `metrics`.
    pub fn with_registry(metrics: Arc<MetricsRegistry>) -> DocCache {
        DocCache::with_config(DEFAULT_MEMO_STRIPES, metrics)
    }

    /// A fresh cache with a custom stripe count and a private registry
    /// (`1` reproduces the historical single-map memo — the baseline
    /// the striping equivalence test compares against).
    pub fn with_stripe_count(stripes: usize) -> DocCache {
        DocCache::with_config(stripes, Arc::default())
    }

    /// A fresh cache with an explicit stripe count and registry.
    pub fn with_config(stripes: usize, metrics: Arc<MetricsRegistry>) -> DocCache {
        let stripes = stripes.max(1);
        DocCache {
            stripes: (0..stripes).map(|_| MemoStripe::default()).collect(),
            metrics,
            parses: LazyCounter::new(),
            doc_hits: LazyCounter::new(),
            gen_runs: LazyCounter::new(),
            gen_hits: LazyCounter::new(),
            fault_bypasses: LazyCounter::new(),
            text_generates: LazyCounter::new(),
            fault_text_generates: LazyCounter::new(),
            journal_replays: LazyCounter::new(),
        }
    }

    /// The stripe owning content hash `hash`. A key maps to exactly
    /// one stripe, so striping never changes which entry a lookup
    /// sees; the fold mixes the high bits in so the stripe index stays
    /// uniform even for hash families that vary mostly above bit 32.
    fn stripe(&self, hash: u64) -> &MemoStripe {
        let mixed = hash ^ (hash >> 32);
        &self.stripes[(mixed as usize) % self.stripes.len()]
    }

    /// Parses `wsdl_xml` through the content-addressed memo: the first
    /// sighting of a document parses and analyzes it; every later
    /// byte-identical sighting shares the same [`ParsedService`].
    pub fn parse(&self, wsdl_xml: String) -> Arc<ParsedService> {
        let hash = content_hash(wsdl_xml.as_bytes());
        let stripe = self.stripe(hash);
        // lock-order: L1 (doccache memo stripe) — leaf lock,
        // released before the counter bump.
        let cached = lock_unpoisoned(&stripe.docs).get(&hash).map(Arc::clone);
        if let Some(hit) = cached {
            if hit.wsdl_xml == wsdl_xml {
                self.doc_hits.inc(&self.metrics, M_DOC_HITS);
                return hit;
            }
            // A 64-bit collision between distinct documents: parse
            // fresh and keep it out of both memos. Correctness never
            // depends on the hash being collision-free.
            self.parses.inc(&self.metrics, M_PARSES);
            return Arc::new(ParsedService::parse_uncached(wsdl_xml));
        }
        self.parses.inc(&self.metrics, M_PARSES);
        let mut svc = ParsedService::parse_uncached(wsdl_xml);
        svc.memoizable = true;
        let svc = Arc::new(svc);
        // Two workers may race past the miss; first insert wins so the
        // canonical entry for a hash is unique (the loser's copy is
        // byte-identical anyway).
        // lock-order: L1 (doccache memo stripe) — leaf lock.
        let mut docs = lock_unpoisoned(&stripe.docs);
        Arc::clone(docs.entry(hash).or_insert(svc))
    }

    /// Parses a fault-damaged description, bypassing the memo: damaged
    /// bytes must hit the real parser and must never be shared with
    /// (or served to) pristine sites.
    pub fn parse_bypassing_memo(&self, wsdl_xml: String) -> Arc<ParsedService> {
        self.parses.inc(&self.metrics, M_PARSES);
        self.fault_bypasses.inc(&self.metrics, M_FAULT_BYPASSES);
        let mut svc = ParsedService::parse_uncached(wsdl_xml);
        svc.fault_damaged = true;
        Arc::new(svc)
    }

    /// Parses outside the memo for a cache-disabled run (counted as a
    /// plain parse, not a fault bypass).
    pub fn parse_unshared(&self, wsdl_xml: String) -> Arc<ParsedService> {
        self.parses.inc(&self.metrics, M_PARSES);
        Arc::new(ParsedService::parse_uncached(wsdl_xml))
    }

    /// One Client Artifact Generation step over a shared parse,
    /// memoized by `(client, content_hash)` for memoizable documents.
    ///
    /// Bit-equivalent to `client.generate(svc.wsdl_xml())`: unreadable
    /// descriptions replay the preserved parse-error message, readable
    /// ones run (or replay) the pure `generate_from` path.
    pub fn generate(&self, client: &dyn ClientSubsystem, svc: &ParsedService) -> GenOutcome {
        let (defs, facts) = match &svc.doc {
            Ok(parsed) => parsed,
            Err(message) => return GenOutcome::fail(message.clone()),
        };
        let key = (client.info().id, svc.content_hash);
        let stripe = self.stripe(svc.content_hash);
        if svc.memoizable {
            // lock-order: L1 (doccache memo stripe) — leaf lock,
            // released before the counter bump.
            let hit = lock_unpoisoned(&stripe.gen).get(&key).cloned();
            if let Some(hit) = hit {
                self.gen_hits.inc(&self.metrics, M_GEN_HITS);
                return hit;
            }
        }
        self.gen_runs.inc(&self.metrics, M_GEN_RUNS);
        let outcome = client.generate_from(defs, facts);
        if svc.memoizable {
            // lock-order: L1 (doccache memo stripe) — leaf lock.
            lock_unpoisoned(&stripe.gen)
                .entry(key)
                .or_insert_with(|| outcome.clone());
        }
        outcome
    }

    /// Records one text-path generation (cache-disabled or chaos cells,
    /// where the tool re-parses the text itself).
    pub fn note_text_generate(&self) {
        self.parses.inc(&self.metrics, M_PARSES);
        self.text_generates.inc(&self.metrics, M_TEXT_GENERATES);
    }

    /// Records one text-path generation over a **fault-damaged**
    /// description. Counted separately from plain text generates so a
    /// site that is both injected and parsed is never double-counted:
    /// its bypass parse lands in `fault_bypasses` and its generations
    /// here, never in `text_generates` too.
    pub fn note_fault_generate(&self) {
        self.parses.inc(&self.metrics, M_PARSES);
        self.fault_text_generates
            .inc(&self.metrics, M_FAULT_TEXT_GENERATES);
    }

    /// Records one cell replayed from a resume journal (no parse, no
    /// generation — the outcome came off disk).
    pub fn note_journal_replay(&self) {
        self.journal_replays.inc(&self.metrics, M_JOURNAL_REPLAYS);
    }

    /// Snapshot of the parse/memo accounting, read back from the
    /// registry (same instruments `wsitool metrics` exports).
    pub fn stats(&self) -> PipelineStats {
        let counter = |name| self.metrics.counter(name) as usize;
        PipelineStats {
            parses: counter(M_PARSES),
            doc_memo_hits: counter(M_DOC_HITS),
            distinct_docs: self
                .stripes
                .iter()
                // lock-order: L1 (doccache memo stripe) — one at a
                // time, leaf.
                .map(|s| lock_unpoisoned(&s.docs).len())
                .sum(),
            gen_runs: counter(M_GEN_RUNS),
            gen_memo_hits: counter(M_GEN_HITS),
            fault_bypasses: counter(M_FAULT_BYPASSES),
            text_generates: counter(M_TEXT_GENERATES),
            fault_text_generates: counter(M_FAULT_TEXT_GENERATES),
            journal_replays: counter(M_JOURNAL_REPLAYS),
        }
    }
}

/// Parse and memo accounting for one campaign run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Full XML parses performed (one per distinct document in a
    /// cached run; one per consumer in an uncached run).
    pub parses: usize,
    /// Document lookups served from the content-addressed memo.
    pub doc_memo_hits: usize,
    /// Distinct document contents seen by the memo.
    pub distinct_docs: usize,
    /// `generate_from` invocations actually executed.
    pub gen_runs: usize,
    /// Generation outcomes replayed from the `(client, hash)` memo.
    pub gen_memo_hits: usize,
    /// Parses forced past the memo because a fault site damaged (or
    /// may have damaged) the published bytes.
    pub fault_bypasses: usize,
    /// Generation steps that went down the text path (cache disabled
    /// or chaos cells), each re-parsing the text inside the tool —
    /// over **pristine** descriptions only.
    pub text_generates: usize,
    /// Text-path generation steps over fault-damaged descriptions.
    /// Disjoint from `text_generates` by construction, so an injected
    /// site's parses are never counted under both.
    pub fault_text_generates: usize,
    /// Cells replayed from a resume journal instead of executed.
    pub journal_replays: usize,
}

impl std::fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Parse-once pipeline")?;
        writeln!(
            f,
            "  parses: {} (distinct documents {}, doc-memo hits {}, fault bypasses {})",
            self.parses, self.distinct_docs, self.doc_memo_hits, self.fault_bypasses
        )?;
        writeln!(
            f,
            "  generation: {} executed, {} replayed from memo, {} via text path \
             ({} over fault-damaged docs), {} replayed from journal",
            self.gen_runs,
            self.gen_memo_hits,
            self.text_generates,
            self.fault_text_generates,
            self.journal_replays
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_frameworks::client::{all_clients, MetroClient};
    use wsinterop_frameworks::server::{Metro, ServerSubsystem};

    fn sample_wsdl() -> String {
        let entry = Metro.catalog().get("java.lang.String").unwrap();
        Metro.deploy(entry).wsdl().unwrap().to_string()
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let doc = sample_wsdl();
        assert_eq!(content_hash(doc.as_bytes()), content_hash(doc.as_bytes()));
        assert_ne!(
            content_hash(doc.as_bytes()),
            content_hash(format!("{doc} ").as_bytes())
        );
        // Pinned so the content address stays stable across releases
        // (persisted BENCH_campaign.json counters depend on it).
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn identical_documents_share_one_parse() {
        let cache = DocCache::new();
        let doc = sample_wsdl();
        let a = cache.parse(doc.clone());
        let b = cache.parse(doc.clone());
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!(stats.parses, 1);
        assert_eq!(stats.doc_memo_hits, 1);
        assert_eq!(stats.distinct_docs, 1);
        assert_eq!(a.content_hash(), content_hash(doc.as_bytes()));
        assert!(a.defs().is_some());
        assert!(a.facts().is_some());
        assert_eq!(a.first_operation(), Some("echo"));
    }

    #[test]
    fn parse_errors_replay_the_text_path_message() {
        let cache = DocCache::new();
        let svc = cache.parse("<not-wsdl/>".to_string());
        assert!(svc.defs().is_none());
        assert!(svc.first_operation().is_none());
        let cached = cache.generate(&MetroClient, &svc);
        let text = MetroClient.generate("<not-wsdl/>");
        assert_eq!(cached, text);
        assert!(!cached.succeeded());
        assert!(svc.parse_error().unwrap().starts_with("cannot read WSDL:"));
    }

    #[test]
    fn cached_generation_is_bit_identical_to_the_text_path() {
        let cache = DocCache::new();
        let doc = sample_wsdl();
        let svc = cache.parse(doc.clone());
        for client in all_clients() {
            let cached = cache.generate(client.as_ref(), &svc);
            let replayed = cache.generate(client.as_ref(), &svc);
            let text = client.generate(&doc);
            assert_eq!(cached, text, "{}", client.info().id);
            assert_eq!(replayed, text, "{}", client.info().id);
        }
        let stats = cache.stats();
        assert_eq!(stats.gen_runs, 11);
        assert_eq!(stats.gen_memo_hits, 11);
    }

    #[test]
    fn fault_and_plain_text_generates_are_counted_disjointly() {
        let cache = DocCache::new();
        cache.note_text_generate();
        cache.note_text_generate();
        cache.note_fault_generate();
        cache.note_journal_replay();
        let stats = cache.stats();
        assert_eq!(stats.text_generates, 2);
        assert_eq!(stats.fault_text_generates, 1);
        assert_eq!(stats.journal_replays, 1);
        // Each text-path generate is one parse; journal replays parse
        // nothing.
        assert_eq!(stats.parses, 3);
        assert!(stats.to_string().contains("(1 over fault-damaged docs)"));
    }

    #[test]
    fn fault_bypass_parses_stay_out_of_both_memos() {
        let cache = DocCache::new();
        let doc = sample_wsdl();
        let damaged = cache.parse_bypassing_memo(doc.clone());
        assert!(!damaged.memoizable);
        assert!(damaged.fault_damaged());
        assert!(!ParsedService::parse_uncached(doc.clone()).fault_damaged());
        let _ = cache.generate(&MetroClient, &damaged);
        let _ = cache.generate(&MetroClient, &damaged);
        let stats = cache.stats();
        assert_eq!(stats.distinct_docs, 0);
        assert_eq!(stats.fault_bypasses, 1);
        assert_eq!(stats.gen_runs, 2, "bypass cells must not memoize");
        assert_eq!(stats.gen_memo_hits, 0);
    }
}
