//! Machine-readable export of campaign results (the counterpart of the
//! dataset the authors published alongside the paper).

use std::fmt::Write as _;

use crate::results::{CampaignResults, InstantiationKind};

/// Serializes the per-service records as TSV
/// (`server  class  deployed  wsi_conformant  description_warning`).
pub fn services_tsv(results: &CampaignResults) -> String {
    let mut out = String::with_capacity(results.services.len() * 48);
    out.push_str("server\tclass\tdeployed\twsi_conformant\tdescription_warning\n");
    for s in &results.services {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}",
            s.server,
            s.fqcn,
            s.deployed,
            s.wsi_conformant
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_string()),
            s.description_warning
        );
    }
    out
}

/// Serializes the per-test records as TSV (one of the paper's 79 629
/// tests per row).
pub fn tests_tsv(results: &CampaignResults) -> String {
    let mut out = String::with_capacity(results.tests.len() * 64);
    out.push_str(
        "server\tclient\tclass\tgen_warning\tgen_error\tcompile_ran\tcompile_warning\t\
         compile_error\tcrashed\tinstantiation\n",
    );
    for t in &results.tests {
        let inst = match t.instantiation {
            None => "-",
            Some(InstantiationKind::Usable) => "usable",
            Some(InstantiationKind::Empty) => "empty",
            Some(InstantiationKind::Failed) => "failed",
        };
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            t.server,
            t.client,
            t.fqcn,
            t.gen_warning,
            t.gen_error,
            t.compile_ran,
            t.compile_warning,
            t.compile_error,
            t.compiler_crashed,
            inst
        );
    }
    out
}

/// Parses a `tests_tsv` export back into summary counters — the sanity
/// check that the export is lossless for aggregate purposes.
pub fn parse_tests_tsv_totals(tsv: &str) -> (usize, usize, usize) {
    let mut tests = 0;
    let mut gen_errors = 0;
    let mut compile_errors = 0;
    for line in tsv.lines().skip(1) {
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 10 {
            continue;
        }
        tests += 1;
        if fields[4] == "true" {
            gen_errors += 1;
        }
        if fields[7] == "true" {
            compile_errors += 1;
        }
    }
    (tests, gen_errors, compile_errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::report::Totals;

    #[test]
    fn tsv_exports_are_lossless_for_aggregates() {
        let results = Campaign::sampled(83).run();
        let totals = Totals::from_results(&results);

        let services = services_tsv(&results);
        assert_eq!(services.lines().count() - 1, results.services.len());
        assert!(services.starts_with("server\tclass"));

        let tests = tests_tsv(&results);
        let (count, gen_errors, compile_errors) = parse_tests_tsv_totals(&tests);
        assert_eq!(count, totals.tests_executed);
        assert_eq!(gen_errors, totals.generation_errors);
        assert_eq!(compile_errors, totals.compilation_errors);
    }

    #[test]
    fn tsv_fields_do_not_collide_with_separators() {
        let results = Campaign::sampled(211).run();
        for line in tests_tsv(&results).lines().skip(1) {
            assert_eq!(line.split('\t').count(), 10, "{line}");
        }
    }
}
