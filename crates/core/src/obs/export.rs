//! The observer bundle and its operator-facing exports: end-of-run
//! phase-latency report, top-10 slowest cells, and the live stderr
//! progress meter.
//!
//! [`Obs`] ties the three primitives together — a [`Clock`], a
//! [`MetricsRegistry`] and a [`TraceSink`] — and owns the glue the
//! campaign calls: `begin_phase`/`end_phase` emit the enter/exit trace
//! events, feed the per-phase and per-pair histograms, and track the
//! slowest cells, all without ever feeding a value back into the
//! pipeline (the determinism contract: telemetry observes, never
//! steers).

use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

use crate::obs::clock::{Clock, Stopwatch};
use crate::obs::event::{TraceEvent, TracePhase, TraceSink};
use crate::obs::metrics::{HistogramHandle, LazyCounter, MetricsRegistry};
use crate::sync::{lock_unpoisoned, read_unpoisoned, write_unpoisoned};

/// How many slowest cells the end-of-run report keeps.
pub const SLOWEST_KEPT: usize = 10;

/// One entry in the slowest-cells table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowCell {
    /// Server framework name.
    pub server: String,
    /// Client subsystem name, when the phase involves one.
    pub client: Option<String>,
    /// Fully-qualified type under test.
    pub type_id: String,
    /// Which pipeline phase the duration belongs to.
    pub phase: TracePhase,
    /// Observed duration in nanoseconds.
    pub dur_ns: u64,
}

/// Dense index for the per-phase handle cache (covers every
/// [`TracePhase`] variant).
fn phase_idx(phase: TracePhase) -> usize {
    match phase {
        TracePhase::Describe => 0,
        TracePhase::Generate => 1,
        TracePhase::Compile => 2,
        TracePhase::Exchange => 3,
        TracePhase::Wire => 4,
        TracePhase::Fuzz => 5,
    }
}

/// Number of [`TracePhase`] variants, for the handle array.
const PHASE_COUNT: usize = 6;

/// Key of the per-pair histogram cache. Both name halves are
/// `&'static str` in every caller (framework/client registry names),
/// so the key allocates nothing.
type PairKey = (usize, &'static str, Option<&'static str>);

/// The observer: clock + metrics + trace sink + progress, attached to
/// a campaign with [`crate::Campaign::with_observer`].
#[derive(Debug)]
pub struct Obs {
    clock: Clock,
    metrics: std::sync::Arc<MetricsRegistry>,
    trace: TraceSink,
    slowest: Mutex<Vec<SlowCell>>,
    /// Admission threshold for the slowest table: once the table is
    /// full this holds the 10th-slowest duration, so spans strictly
    /// faster than it skip the lock (and the allocation) entirely.
    /// Ties still take the slow path — the table is ordered by the
    /// *total* (duration, identity) order, so which tie survives never
    /// depends on arrival order.
    slowest_floor: AtomicU64,
    progress: ProgressMeter,
    /// Aggregate per-phase histogram handles, resolved on first use so
    /// an untouched phase never registers (exports stay identical to
    /// the name-lookup era).
    phase_ns: [OnceLock<HistogramHandle>; PHASE_COUNT],
    /// Per-(phase, server, client) histogram handles. After the first
    /// span of a pair, `end_phase` neither builds the labeled metric
    /// name nor touches the registry lock — one shared-read lookup
    /// here replaces both.
    pair_ns: RwLock<HashMap<PairKey, HistogramHandle>>,
    /// `campaign_cells_total`, resolved once.
    cells_total: LazyCounter,
}

impl Obs {
    /// An observer over the given clock with default sink capacity.
    pub fn new(clock: Clock) -> Obs {
        Obs {
            clock,
            metrics: std::sync::Arc::new(MetricsRegistry::new()),
            trace: TraceSink::default(),
            slowest: Mutex::new(Vec::new()),
            slowest_floor: AtomicU64::new(0),
            progress: ProgressMeter::new(),
            phase_ns: [const { OnceLock::new() }; PHASE_COUNT],
            pair_ns: RwLock::new(HashMap::new()),
            cells_total: LazyCounter::new(),
        }
    }

    /// An observer with an explicit trace-sink capacity (tests).
    pub fn with_sink_capacity(clock: Clock, capacity: usize) -> Obs {
        Obs {
            trace: TraceSink::with_capacity(capacity),
            ..Obs::new(clock)
        }
    }

    /// Convenience: real wall-clock observer.
    pub fn monotonic() -> Obs {
        Obs::new(Clock::monotonic())
    }

    /// The clock instrumented code should time spans with.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A shareable handle to the registry, for instruments that
    /// outlive a borrow (the fault log, doc cache, journal writer,
    /// wire endpoints).
    pub fn metrics_arc(&self) -> std::sync::Arc<MetricsRegistry> {
        std::sync::Arc::clone(&self.metrics)
    }

    /// The trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The live progress meter (disabled until `enable` is called).
    pub fn progress(&self) -> &ProgressMeter {
        &self.progress
    }

    /// Stream trace events to `path` as JSON lines.
    pub fn set_trace_out(&self, path: &Path) -> std::io::Result<()> {
        self.trace.set_output(path)
    }

    /// Open a phase span: emits the enter event and starts the span
    /// timer keyed deterministically by phase + cell identity.
    pub fn begin_phase(
        &self,
        phase: TracePhase,
        server: &'static str,
        client: Option<&'static str>,
        type_id: &str,
    ) -> Stopwatch {
        let mut event = TraceEvent::enter(phase, server, type_id);
        if let Some(c) = client {
            event = event.with_client(c);
        }
        self.trace.record(event);
        if self.clock.is_monotonic() {
            // The span key only matters on the virtual clock (it *is*
            // the duration there); skip building it on the real one.
            return Stopwatch::real();
        }
        let key = span_key(phase, server, client, type_id);
        self.clock.start_span(&key)
    }

    /// Close a phase span: emits the exit event, feeds the aggregate
    /// and per-pair histograms, and updates the slowest-cells table.
    #[allow(clippy::too_many_arguments)]
    pub fn end_phase(
        &self,
        phase: TracePhase,
        server: &'static str,
        client: Option<&'static str>,
        type_id: &str,
        outcome: &'static str,
        fault_site: Option<&str>,
        retries: u64,
        breaker_open: bool,
        span: Stopwatch,
    ) {
        let dur_ns = span.elapsed_ns();
        let mut event = TraceEvent::enter(phase, server, type_id)
            .with_resilience(retries, breaker_open)
            .exit(outcome, dur_ns);
        if let Some(c) = client {
            event = event.with_client(c);
        }
        if let Some(site) = fault_site {
            event = event.with_fault_site(site);
        }
        self.trace.record(event);

        self.phase_ns[phase_idx(phase)]
            .get_or_init(|| self.metrics.histogram_handle(phase.metric_ns()))
            .observe_ns(dur_ns);
        self.pair_handle(phase, server, client).observe_ns(dur_ns);

        // Fast path: a span strictly faster than the full table's
        // floor can never enter the top 10 — no lock, no allocation.
        if dur_ns < self.slowest_floor.load(Ordering::Relaxed) {
            return;
        }
        // lock-order: L2 (obs handle caches / slowest table) — leaf.
        let mut slowest = lock_unpoisoned(&self.slowest);
        slowest.push(SlowCell {
            server: server.to_string(),
            client: client.map(str::to_string),
            type_id: type_id.to_string(),
            phase,
            dur_ns,
        });
        // Deterministic order: duration descending, then identity, so
        // virtual-clock runs keep the same table at any thread count.
        slowest.sort_by(|a, b| {
            b.dur_ns
                .cmp(&a.dur_ns)
                .then_with(|| a.server.cmp(&b.server))
                .then_with(|| a.client.cmp(&b.client))
                .then_with(|| a.type_id.cmp(&b.type_id))
                .then_with(|| a.phase.name().cmp(b.phase.name()))
        });
        slowest.truncate(SLOWEST_KEPT);
        if slowest.len() == SLOWEST_KEPT {
            self.slowest_floor
                .store(slowest[SLOWEST_KEPT - 1].dur_ns, Ordering::Relaxed);
        }
    }

    /// The per-pair histogram handle for `(phase, server, client)`,
    /// building the labeled metric name (e.g.
    /// `phase_generate_ns{client="gSOAP",server="Metro"}`) only on the
    /// pair's first span. Steady state is one shared-read map hit.
    fn pair_handle(
        &self,
        phase: TracePhase,
        server: &'static str,
        client: Option<&'static str>,
    ) -> HistogramHandle {
        let key: PairKey = (phase_idx(phase), server, client);
        {
            // lock-order: L2 (obs handle caches) — leaf.
            let cache = read_unpoisoned(&self.pair_ns);
            if let Some(handle) = cache.get(&key) {
                return handle.clone();
            }
        }
        let base = phase.metric_ns();
        let mut labeled = String::with_capacity(base.len() + 32);
        labeled.push_str(base);
        match client {
            Some(c) => {
                labeled.push_str("{client=\"");
                labeled.push_str(c);
                labeled.push_str("\",server=\"");
            }
            None => labeled.push_str("{server=\""),
        }
        labeled.push_str(server);
        labeled.push_str("\"}");
        let handle = self.metrics.histogram_handle(&labeled);
        // lock-order: L2 (obs handle caches) — leaf.
        write_unpoisoned(&self.pair_ns)
            .entry(key)
            .or_insert(handle)
            .clone()
    }

    /// Count one finished campaign cell: bumps `campaign_cells_total`
    /// through its cached handle and advances the progress meter.
    pub fn record_cell_done(&self) {
        self.cells_total.inc(&self.metrics, "campaign_cells_total");
        self.progress.cell_done(&self.clock);
    }

    /// The current slowest-cells table (duration descending).
    pub fn slowest_cells(&self) -> Vec<SlowCell> {
        // lock-order: L2 (obs handle caches / slowest table) — leaf.
        lock_unpoisoned(&self.slowest).clone()
    }

    /// Publish the sink's own accounting into the registry so every
    /// export (text, JSON, report) carries `obs_events_dropped` — the
    /// overflow contract: drops are reported, never silent.
    pub fn sync_sink_counters(&self) {
        let recorded = self.trace.recorded();
        let dropped = self.trace.dropped();
        let current_rec = self.metrics.counter("obs_events_recorded");
        let current_drop = self.metrics.counter("obs_events_dropped");
        self.metrics
            .add("obs_events_recorded", recorded.saturating_sub(current_rec));
        self.metrics
            .add("obs_events_dropped", dropped.saturating_sub(current_drop));
    }

    /// Prometheus-style text of every instrument (sink counters
    /// included).
    pub fn metrics_text(&self) -> String {
        self.sync_sink_counters();
        self.metrics.render_prometheus()
    }

    /// JSON object of every instrument (sink counters included).
    pub fn metrics_json(&self) -> String {
        self.sync_sink_counters();
        self.metrics.render_json()
    }

    /// The end-of-run report: per-phase latency table, slowest cells,
    /// and trace accounting. Printed to stderr after every campaign
    /// run unless `--quiet`.
    pub fn render_report(&self) -> String {
        self.sync_sink_counters();
        let mut out = String::new();
        out.push_str("Phase latency (per span)\n");
        out.push_str(&format!(
            "  {:<10} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
            "phase", "count", "p50", "p95", "p99", "max"
        ));
        for phase in [
            TracePhase::Describe,
            TracePhase::Generate,
            TracePhase::Compile,
            TracePhase::Exchange,
            TracePhase::Wire,
            TracePhase::Fuzz,
        ] {
            let Some(h) = self.metrics.histogram(phase.metric_ns()) else {
                continue;
            };
            out.push_str(&format!(
                "  {:<10} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
                phase.name(),
                h.count,
                fmt_ns(h.quantile_ns(0.50)),
                fmt_ns(h.quantile_ns(0.95)),
                fmt_ns(h.quantile_ns(0.99)),
                fmt_ns(h.max),
            ));
        }
        let slowest = self.slowest_cells();
        if !slowest.is_empty() {
            out.push_str("Slowest cells\n");
            for cell in &slowest {
                out.push_str(&format!(
                    "  {:>9}  {:<9} {} / {} / {}\n",
                    fmt_ns(cell.dur_ns),
                    cell.phase.name(),
                    cell.server,
                    cell.client.as_deref().unwrap_or("-"),
                    cell.type_id,
                ));
            }
        }
        out.push_str(&format!(
            "trace events: {} recorded, {} dropped\n",
            self.trace.recorded(),
            self.trace.dropped(),
        ));
        if let Some(err) = self.trace.write_error() {
            out.push_str(&format!("trace write error: {err}\n"));
        }
        out
    }
}

/// Deterministic span key: the virtual clock hashes this, so one cell
/// phase always reports one duration.
fn span_key(phase: TracePhase, server: &str, client: Option<&str>, type_id: &str) -> String {
    match client {
        Some(c) => format!("{}/{server}/{c}/{type_id}", phase.name()),
        None => format!("{}/{server}/{type_id}", phase.name()),
    }
}

/// Human-readable nanoseconds: `870ns`, `14.2µs`, `3.1ms`, `2.45s`.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Live one-line stderr progress meter: cells done, cells/sec, ETA.
///
/// Disabled by default (library callers and tests never see it); the
/// CLI enables it for interactive campaign runs unless `--quiet`. All
/// output goes to stderr so stdout stays the byte-stable scientific
/// record that CI diffs.
#[derive(Debug, Default)]
pub struct ProgressMeter {
    enabled: AtomicBool,
    total: AtomicU64,
    done: AtomicU64,
    last_print_ms: AtomicU64,
    printed: AtomicBool,
}

impl ProgressMeter {
    /// A disabled meter.
    pub fn new() -> ProgressMeter {
        ProgressMeter::default()
    }

    /// Turn the meter on (CLI only).
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Grow the expected-cells denominator (the campaign learns the
    /// total one server phase at a time).
    pub fn add_expected(&self, cells: u64) {
        self.total.fetch_add(cells, Ordering::Relaxed);
    }

    /// Record one finished cell and maybe repaint the stderr line
    /// (throttled to ~5 repaints a second off the real clock).
    pub fn cell_done(&self, clock: &Clock) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled.load(Ordering::Relaxed) || !clock.is_monotonic() {
            return;
        }
        let elapsed_ms = clock.elapsed_ns() / 1_000_000;
        let last = self.last_print_ms.load(Ordering::Relaxed);
        if elapsed_ms.saturating_sub(last) < 200 {
            return;
        }
        if self
            .last_print_ms
            .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another worker just repainted
        }
        self.printed.store(true, Ordering::Relaxed);
        let total = self.total.load(Ordering::Relaxed);
        let secs = (elapsed_ms as f64 / 1_000.0).max(0.001);
        let rate = done as f64 / secs;
        let eta = if rate > 0.0 && total > done {
            ((total - done) as f64 / rate).ceil() as u64
        } else {
            0
        };
        eprint!("\r  {done}/{total} cells · {rate:.0} cells/s · ETA {eta}s   ");
        let _ = std::io::stderr().flush();
    }

    /// Finish the meter: clear the live line and print the final
    /// throughput summary (when the meter ever painted).
    pub fn finish(&self, clock: &Clock) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let done = self.done.load(Ordering::Relaxed);
        let elapsed_ms = clock.elapsed_ns() / 1_000_000;
        let secs = (elapsed_ms as f64 / 1_000.0).max(0.001);
        if self.printed.swap(false, Ordering::Relaxed) {
            eprint!("\r{:<60}\r", "");
        }
        eprintln!("  {done} cells in {secs:.1}s ({:.0} cells/s)", done as f64 / secs);
    }

    /// Cells completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_spans_feed_histograms_events_and_slowest() {
        let obs = Obs::new(Clock::virtual_seeded(42));
        let span = obs.begin_phase(
            TracePhase::Generate,
            "Metro",
            Some("Axis1 wsdl2java"),
            "java.util.Date",
        );
        obs.end_phase(
            TracePhase::Generate,
            "Metro",
            Some("Axis1 wsdl2java"),
            "java.util.Date",
            "success",
            Some("gen/Metro/Axis1/java.util.Date"),
            1,
            false,
            span,
        );
        assert_eq!(obs.trace().recorded(), 2);
        let agg = obs.metrics().histogram("phase_generate_ns").expect("aggregate");
        assert_eq!(agg.count, 1);
        let pair = obs
            .metrics()
            .histogram("phase_generate_ns{client=\"Axis1 wsdl2java\",server=\"Metro\"}")
            .expect("per-pair");
        assert_eq!(pair.count, 1);
        let slowest = obs.slowest_cells();
        assert_eq!(slowest.len(), 1);
        assert_eq!(slowest[0].dur_ns, agg.sum);
        let report = obs.render_report();
        assert!(report.contains("generate"), "{report}");
        assert!(report.contains("Slowest cells"), "{report}");
        assert!(report.contains("2 recorded, 0 dropped"), "{report}");
    }

    #[test]
    fn slowest_table_is_bounded_and_deterministically_ordered() {
        let obs = Obs::new(Clock::virtual_seeded(1));
        for i in 0..25 {
            let type_id = format!("t{i:02}");
            let span = obs.begin_phase(TracePhase::Compile, "Metro", Some("gSOAP"), &type_id);
            obs.end_phase(
                TracePhase::Compile,
                "Metro",
                Some("gSOAP"),
                &type_id,
                "success",
                None,
                0,
                false,
                span,
            );
        }
        let slowest = obs.slowest_cells();
        assert_eq!(slowest.len(), SLOWEST_KEPT);
        assert!(slowest.windows(2).all(|w| w[0].dur_ns >= w[1].dur_ns));
    }

    #[test]
    fn sink_counters_surface_in_exports() {
        let obs = Obs::with_sink_capacity(Clock::virtual_seeded(3), 1);
        for _ in 0..3 {
            let span = obs.begin_phase(TracePhase::Describe, "Metro", None, "java.util.Date");
            obs.end_phase(
                TracePhase::Describe,
                "Metro",
                None,
                "java.util.Date",
                "deployed",
                None,
                0,
                false,
                span,
            );
        }
        let text = obs.metrics_text();
        assert!(text.contains("obs_events_recorded 6"), "{text}");
        assert!(text.contains("obs_events_dropped 5"), "{text}");
        // Re-export must not double-count.
        let text2 = obs.metrics_text();
        assert!(text2.contains("obs_events_dropped 5"), "{text2}");
        assert!(obs.metrics_json().contains("\"obs_events_dropped\":5"));
        assert!(obs.render_report().contains("6 recorded, 5 dropped"));
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(870), "870ns");
        assert_eq!(fmt_ns(14_200), "14.2µs");
        assert_eq!(fmt_ns(3_100_000), "3.1ms");
        assert_eq!(fmt_ns(2_450_000_000), "2.45s");
    }

    #[test]
    fn progress_meter_counts_without_printing_when_disabled() {
        let meter = ProgressMeter::new();
        let clock = Clock::monotonic();
        meter.add_expected(10);
        for _ in 0..4 {
            meter.cell_done(&clock);
        }
        assert_eq!(meter.done(), 4);
    }
}
