//! Campaign telemetry: structured tracing, a deterministic metrics
//! registry, and per-phase latency profiling.
//!
//! The layer is std-only and **observe-only** by construction:
//!
//! * attaching an [`Obs`] to a campaign never changes classification —
//!   telemetry options are excluded from the campaign config hash and
//!   no pipeline decision reads a metric, trace buffer or clock;
//! * the [`Clock`] abstraction keeps instrumented *tests*
//!   deterministic too: the seeded virtual clock derives span
//!   durations from span identity, so histograms are bit-identical at
//!   any thread count;
//! * trace-sink overflow is accounted (`obs_events_dropped`), never
//!   silent.
//!
//! See DESIGN.md §11 for the event schema, metric-name catalog and the
//! determinism contract.

pub mod clock;
pub mod event;
pub mod export;
pub mod metrics;

pub use clock::{Clock, Stopwatch};
pub use event::{
    read_trace_lines, TraceEvent, TraceKind, TracePhase, TraceSink, DEFAULT_SINK_CAPACITY,
    MAX_EVENT_LINE_BYTES,
};
pub use export::{fmt_ns, Obs, ProgressMeter, SlowCell, SLOWEST_KEPT};
pub use metrics::{
    escape_label_value, CounterHandle, Exemplar, GaugeHandle, Histogram, HistogramHandle,
    LazyCounter, MetricsRegistry, MetricsSnapshot, BUCKET_BOUNDS_NS,
};
