//! Structured trace events and the bounded in-memory sink.
//!
//! Every campaign cell emits enter/exit events for the pipeline phases
//! it runs (describe → generate → compile, plus exchange/wire probes).
//! Events carry the full cell identity — server, client, type id —
//! and on exit the outcome, fault site, retry count, breaker state and
//! duration, so a single JSON line is enough to place a failure inside
//! the pipeline without consulting aggregate tables.
//!
//! The sink is a mutex + ring buffer bounded at a fixed capacity.
//! Overflow is **never silent**: evicting an old event (or refusing an
//! oversized serialized line) increments a dropped counter that the
//! exporter reports as `obs_events_dropped`.

use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::faults::lock_unpoisoned;
use crate::obs::metrics::json_string;

/// Default ring-buffer capacity: enough for a stride-200 campaign's
/// full event stream (~2 events × ~1.5k spans) with headroom.
pub const DEFAULT_SINK_CAPACITY: usize = 16_384;

/// Serialized trace lines longer than this are counted as dropped
/// rather than truncated mid-JSON (a truncated line would be worse
/// than a missing one: it poisons every downstream line parser).
pub const MAX_EVENT_LINE_BYTES: usize = 64 * 1024;

/// Pipeline phase a trace event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Service Description Generation (deploy + WS-I check).
    Describe,
    /// Client Artifact Generation.
    Generate,
    /// Client Artifact Compilation / instantiation.
    Compile,
    /// In-process SOAP message exchange (E13/E14).
    Exchange,
    /// Real-socket exchange over the loopback transport (E15).
    Wire,
}

impl TracePhase {
    /// Stable lowercase name used in JSON lines and metric names.
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Describe => "describe",
            TracePhase::Generate => "generate",
            TracePhase::Compile => "compile",
            TracePhase::Exchange => "exchange",
            TracePhase::Wire => "wire",
        }
    }

    /// The phase's aggregate latency-histogram name
    /// (`phase_<name>_ns`), precomposed so the per-span hot path never
    /// formats it.
    pub fn metric_ns(self) -> &'static str {
        match self {
            TracePhase::Describe => "phase_describe_ns",
            TracePhase::Generate => "phase_generate_ns",
            TracePhase::Compile => "phase_compile_ns",
            TracePhase::Exchange => "phase_exchange_ns",
            TracePhase::Wire => "phase_wire_ns",
        }
    }

    fn from_name(name: &str) -> Option<TracePhase> {
        Some(match name {
            "describe" => TracePhase::Describe,
            "generate" => TracePhase::Generate,
            "compile" => TracePhase::Compile,
            "exchange" => TracePhase::Exchange,
            "wire" => TracePhase::Wire,
            _ => return None,
        })
    }
}

/// Span boundary: `enter` opens a phase, `exit` closes it with the
/// outcome and duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Phase started.
    Enter,
    /// Phase finished.
    Exit,
}

impl TraceKind {
    fn name(self) -> &'static str {
        match self {
            TraceKind::Enter => "enter",
            TraceKind::Exit => "exit",
        }
    }
}

/// One structured trace event (one JSON line in `--trace-out`).
///
/// Identity fields are zero-copy where the producers allow it: the
/// campaign's server/client/outcome labels are `&'static str`
/// (`ServerId::name` etc.), so they ride as borrowed [`Cow`]s, and the
/// type id is a shared [`std::sync::Arc`] — the hot path allocates for
/// the cell identity once, not once per field per event. The JSON
/// reader half necessarily produces the owned variants; equality
/// compares contents either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number assigned by the sink at record time.
    pub seq: u64,
    /// Pipeline phase.
    pub phase: TracePhase,
    /// Enter or exit.
    pub kind: TraceKind,
    /// Server framework name (`"Metro"`, `"JBossWS CXF"`, ...).
    pub server: std::borrow::Cow<'static, str>,
    /// Client subsystem name, when the phase involves one.
    pub client: Option<std::borrow::Cow<'static, str>>,
    /// Fully-qualified platform type under test.
    pub type_id: std::sync::Arc<str>,
    /// Exit-side outcome (`"success"`, `"warning"`, `"error"`,
    /// `"refused"`, `"replayed"`, ...).
    pub outcome: Option<std::borrow::Cow<'static, str>>,
    /// Fault-plan site key, when a fault plan governs this span.
    pub fault_site: Option<String>,
    /// Retries consumed by the resilient executor for this span.
    ///
    /// Only `describe` spans can be non-zero: transient deploy
    /// refusals are the one executor-level retry loop, so every other
    /// phase reports 0 by construction. Wire-transport retries are
    /// internal to the request and surface as the
    /// `wire_client_retries_total` metric, not here.
    pub retries: u64,
    /// True when the per-client circuit breaker was open for the cell.
    pub breaker_open: bool,
    /// Exit-side duration in nanoseconds.
    pub dur_ns: Option<u64>,
}

impl TraceEvent {
    /// A minimal enter event for `phase`; callers fill in identity.
    pub fn enter(
        phase: TracePhase,
        server: impl Into<std::borrow::Cow<'static, str>>,
        type_id: impl Into<std::sync::Arc<str>>,
    ) -> TraceEvent {
        TraceEvent {
            seq: 0,
            phase,
            kind: TraceKind::Enter,
            server: server.into(),
            client: None,
            type_id: type_id.into(),
            outcome: None,
            fault_site: None,
            retries: 0,
            breaker_open: false,
            dur_ns: None,
        }
    }

    /// The matching exit event with an outcome and duration.
    pub fn exit(
        mut self,
        outcome: impl Into<std::borrow::Cow<'static, str>>,
        dur_ns: u64,
    ) -> TraceEvent {
        self.kind = TraceKind::Exit;
        self.outcome = Some(outcome.into());
        self.dur_ns = Some(dur_ns);
        self
    }

    /// Attach a client name.
    pub fn with_client(mut self, client: impl Into<std::borrow::Cow<'static, str>>) -> TraceEvent {
        self.client = Some(client.into());
        self
    }

    /// Attach the fault-plan site key.
    pub fn with_fault_site(mut self, site: &str) -> TraceEvent {
        self.fault_site = Some(site.to_string());
        self
    }

    /// Attach retry count and breaker state.
    pub fn with_resilience(mut self, retries: u64, breaker_open: bool) -> TraceEvent {
        self.retries = retries;
        self.breaker_open = breaker_open;
        self
    }

    /// Serialize as one JSON object on one line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push('{');
        push_field(&mut out, "seq", &self.seq.to_string(), false);
        push_field(&mut out, "phase", &json_string(self.phase.name()), true);
        push_field(&mut out, "kind", &json_string(self.kind.name()), true);
        push_field(&mut out, "server", &json_string(&self.server), true);
        match &self.client {
            Some(c) => push_field(&mut out, "client", &json_string(c), true),
            None => push_field(&mut out, "client", "null", true),
        }
        push_field(&mut out, "type", &json_string(&self.type_id), true);
        match &self.outcome {
            Some(o) => push_field(&mut out, "outcome", &json_string(o), true),
            None => push_field(&mut out, "outcome", "null", true),
        }
        match &self.fault_site {
            Some(s) => push_field(&mut out, "fault_site", &json_string(s), true),
            None => push_field(&mut out, "fault_site", "null", true),
        }
        push_field(&mut out, "retries", &self.retries.to_string(), true);
        push_field(
            &mut out,
            "breaker_open",
            if self.breaker_open { "true" } else { "false" },
            true,
        );
        match self.dur_ns {
            Some(d) => push_field(&mut out, "dur_ns", &d.to_string(), true),
            None => push_field(&mut out, "dur_ns", "null", true),
        }
        out.push('}');
        out
    }

    /// Parse one JSON line produced by [`TraceEvent::to_json_line`].
    ///
    /// This is the reader half of the round-trip contract: it accepts
    /// exactly the flat shape the writer emits (string / integer /
    /// bool / null values, no nesting) and returns `None` on anything
    /// else rather than guessing.
    pub fn from_json_line(line: &str) -> Option<TraceEvent> {
        let fields = parse_flat_object(line.trim())?;
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let str_of = |v: &JsonValue| match v {
            JsonValue::Str(s) => Some(s.clone()),
            _ => None,
        };
        let opt_str = |v: &JsonValue| match v {
            JsonValue::Str(s) => Some(Some(s.clone())),
            JsonValue::Null => Some(None),
            _ => None,
        };
        let num = |v: &JsonValue| match v {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        };
        Some(TraceEvent {
            seq: num(get("seq")?)?,
            phase: TracePhase::from_name(&str_of(get("phase")?)?)?,
            kind: match str_of(get("kind")?)?.as_str() {
                "enter" => TraceKind::Enter,
                "exit" => TraceKind::Exit,
                _ => return None,
            },
            server: str_of(get("server")?)?.into(),
            client: opt_str(get("client")?)?.map(Into::into),
            type_id: str_of(get("type")?)?.into(),
            outcome: opt_str(get("outcome")?)?.map(Into::into),
            fault_site: opt_str(get("fault_site")?)?,
            retries: num(get("retries")?)?,
            breaker_open: match get("breaker_open")? {
                JsonValue::Bool(b) => *b,
                _ => return None,
            },
            dur_ns: match get("dur_ns")? {
                JsonValue::Num(n) => Some(*n),
                JsonValue::Null => None,
                _ => return None,
            },
        })
    }
}

fn push_field(out: &mut String, key: &str, rendered: &str, comma: bool) {
    if comma {
        out.push(',');
    }
    out.push_str(&json_string(key));
    out.push(':');
    out.push_str(rendered);
}

/// Values the flat trace-line parser understands.
enum JsonValue {
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
}

/// Parse `{"k":v,...}` with string/integer/bool/null values only.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let inner = line.strip_prefix('{')?.strip_suffix('}')?;
    let bytes = inner.as_bytes();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let (key, next) = parse_json_string(inner, i)?;
        i = skip_ws(bytes, next);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let (value, next) = parse_json_value(inner, i)?;
        fields.push((key, value));
        i = skip_ws(bytes, next);
        match bytes.get(i) {
            Some(b',') => i = skip_ws(bytes, i + 1),
            None => break,
            _ => return None,
        }
    }
    Some(fields)
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
        i += 1;
    }
    i
}

fn parse_json_value(src: &str, i: usize) -> Option<(JsonValue, usize)> {
    let bytes = src.as_bytes();
    match bytes.get(i)? {
        b'"' => parse_json_string(src, i).map(|(s, n)| (JsonValue::Str(s), n)),
        b't' => src[i..]
            .starts_with("true")
            .then_some((JsonValue::Bool(true), i + 4)),
        b'f' => src[i..]
            .starts_with("false")
            .then_some((JsonValue::Bool(false), i + 5)),
        b'n' => src[i..].starts_with("null").then_some((JsonValue::Null, i + 4)),
        b'0'..=b'9' => {
            let mut end = i;
            while bytes.get(end).is_some_and(u8::is_ascii_digit) {
                end += 1;
            }
            src[i..end].parse().ok().map(|n| (JsonValue::Num(n), end))
        }
        _ => None,
    }
}

fn parse_json_string(src: &str, i: usize) -> Option<(String, usize)> {
    let bytes = src.as_bytes();
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    let mut out = String::new();
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'"' => return Some((out, j + 1)),
            b'\\' => {
                j += 1;
                match bytes.get(j)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = src.get(j + 1..j + 5)?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        j += 4;
                    }
                    _ => return None,
                }
                j += 1;
            }
            _ => {
                // Multi-byte chars: copy the whole char, advance by its len.
                let c = src[j..].chars().next()?;
                out.push(c);
                j += c.len_utf8();
            }
        }
    }
    None
}

/// The bounded in-memory trace sink, optionally teeing every event to
/// a JSON-lines file (`--trace-out`).
#[derive(Debug)]
pub struct TraceSink {
    buf: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    /// Next sequence number == total events ever offered, so this one
    /// atomic serves both [`TraceSink::record`]'s numbering and
    /// [`TraceSink::recorded`].
    seq: AtomicU64,
    dropped: AtomicU64,
    /// Mirrors `out.is_some()` so the hot record path can skip the
    /// file mutex (and the serialization) when nothing streams.
    has_out: std::sync::atomic::AtomicBool,
    out: Mutex<Option<File>>,
    write_error: Mutex<Option<String>>,
}

impl TraceSink {
    /// A sink holding at most `capacity` events in memory.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            // Reserve the whole ring up front (bounded at 64Ki events)
            // so no grow-realloc ever happens inside the record lock.
            buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 65_536))),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            has_out: std::sync::atomic::AtomicBool::new(false),
            out: Mutex::new(None),
            write_error: Mutex::new(None),
        }
    }

    /// Stream every subsequent event to `path` as JSON lines.
    pub fn set_output(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        *lock_unpoisoned(&self.out) = Some(file);
        self.has_out.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Record one event: assigns its sequence number, appends it to
    /// the ring (evicting — and counting — the oldest on overflow) and
    /// streams it to the output file when one is set.
    ///
    /// The sequence number is assigned while the buffer lock is held
    /// and the file write happens under that same lock, so both the
    /// ring and the `--trace-out` stream are monotonic in `seq` even
    /// with concurrent recorders. An oversized serialized line (only
    /// detectable when streaming) drops the event from *both* the file
    /// and the ring, so each missing event is counted exactly once and
    /// `recorded() - len()` always equals `dropped()`.
    pub fn record(&self, mut event: TraceEvent) {
        let mut buf = lock_unpoisoned(&self.buf);
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.has_out.load(Ordering::Relaxed) {
            let line = event.to_json_line();
            if line.len() > MAX_EVENT_LINE_BYTES {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let mut out = lock_unpoisoned(&self.out);
            if let Some(file) = out.as_mut() {
                if let Err(e) = writeln!(file, "{line}") {
                    let mut err = lock_unpoisoned(&self.write_error);
                    if err.is_none() {
                        *err = Some(e.to_string());
                    }
                }
            }
        }
        if buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }

    /// Total events offered to the sink.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted on overflow or refused as oversized — the value
    /// the exporter publishes as `obs_events_dropped`.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// First trace-file write error, if any (latched, like the journal
    /// writer's).
    pub fn write_error(&self) -> Option<String> {
        lock_unpoisoned(&self.write_error).clone()
    }

    /// Drain and return the buffered events in `seq` order (sequence
    /// numbers are assigned under the buffer lock, so arrival order
    /// and seq order coincide).
    pub fn drain(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.buf).drain(..).collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.buf).len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::with_capacity(DEFAULT_SINK_CAPACITY)
    }
}

/// Read a JSON-lines trace file back into events, skipping blank
/// lines; returns `None` if any non-blank line fails to parse.
pub fn read_trace_lines(text: &str) -> Option<Vec<TraceEvent>> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(TraceEvent::from_json_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent::enter(TracePhase::Generate, "Metro", "java.util.Date")
            .with_client("Axis1 wsdl2java")
            .with_fault_site("gen/Metro/Axis1/java.util.Date")
            .with_resilience(2, false)
            .exit("warning", 123_456)
    }

    #[test]
    fn json_line_round_trips() {
        let mut event = sample();
        event.seq = 7;
        let line = event.to_json_line();
        let parsed = TraceEvent::from_json_line(&line).expect("parses");
        assert_eq!(parsed, event);
    }

    #[test]
    fn enter_events_round_trip_nulls() {
        let event = TraceEvent::enter(TracePhase::Describe, "WCF .NET", "System.Data.DataSet");
        let parsed = TraceEvent::from_json_line(&event.to_json_line()).expect("parses");
        assert_eq!(parsed, event);
        assert_eq!(parsed.client, None);
        assert_eq!(parsed.dur_ns, None);
    }

    #[test]
    fn escaped_strings_survive() {
        let mut event = sample();
        event.type_id = "weird\"quote\\back\nnew".into();
        let parsed = TraceEvent::from_json_line(&event.to_json_line()).expect("parses");
        assert_eq!(parsed.type_id, event.type_id);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in ["", "{", "{\"seq\":}", "[1,2]", "{\"seq\":1}", "not json"] {
            assert!(TraceEvent::from_json_line(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn overflow_counts_drops_never_silently() {
        let sink = TraceSink::with_capacity(2);
        for _ in 0..5 {
            sink.record(sample());
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.recorded(), 5);
        assert_eq!(sink.dropped(), 3);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].seq, 3, "oldest evicted first");
        assert!(sink.is_empty());
    }

    #[test]
    fn oversized_lines_drop_once_from_file_and_ring() {
        let path = std::env::temp_dir().join(format!(
            "wsinterop-obs-oversized-{}.jsonl",
            std::process::id()
        ));
        let sink = TraceSink::with_capacity(2);
        sink.set_output(&path).expect("create trace file");
        let mut huge = sample();
        huge.type_id = "x".repeat(MAX_EVENT_LINE_BYTES).into();
        sink.record(huge);
        sink.record(sample());
        // The oversized event is gone from both streams and counted
        // exactly once: recorded - len == dropped, never double.
        assert_eq!(sink.recorded(), 2);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 1);
        let text = std::fs::read_to_string(&path).expect("read trace file");
        assert_eq!(read_trace_lines(&text).expect("parses").len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_trace_lines_skips_blanks_and_rejects_garbage() {
        let a = sample().to_json_line();
        let text = format!("{a}\n\n{a}\n");
        assert_eq!(read_trace_lines(&text).expect("parses").len(), 2);
        assert!(read_trace_lines("garbage\n").is_none());
    }
}
