//! Structured trace events and the bounded in-memory sink.
//!
//! Every campaign cell emits enter/exit events for the pipeline phases
//! it runs (describe → generate → compile, plus exchange/wire probes).
//! Events carry the full cell identity — server, client, type id —
//! and on exit the outcome, fault site, retry count, breaker state and
//! duration, so a single JSON line is enough to place a failure inside
//! the pipeline without consulting aggregate tables.
//!
//! The sink is a mutex + ring buffer bounded at a fixed capacity.
//! Overflow is **never silent**: evicting an old event (or refusing an
//! oversized serialized line) increments a dropped counter that the
//! exporter reports as `obs_events_dropped`.

use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::sync::lock_unpoisoned;
use crate::obs::metrics::json_string;

/// Default ring-buffer capacity: enough for a stride-200 campaign's
/// full event stream (~2 events × ~1.5k spans) with headroom.
pub const DEFAULT_SINK_CAPACITY: usize = 16_384;

/// Serialized trace lines longer than this are counted as dropped
/// rather than truncated mid-JSON (a truncated line would be worse
/// than a missing one: it poisons every downstream line parser).
pub const MAX_EVENT_LINE_BYTES: usize = 64 * 1024;

/// Pipeline phase a trace event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Service Description Generation (deploy + WS-I check).
    Describe,
    /// Client Artifact Generation.
    Generate,
    /// Client Artifact Compilation / instantiation.
    Compile,
    /// In-process SOAP message exchange (E13/E14).
    Exchange,
    /// Real-socket exchange over the loopback transport (E15).
    Wire,
    /// WSDL-guided property-based fuzzing of one exchange unit (E19).
    Fuzz,
}

impl TracePhase {
    /// Stable lowercase name used in JSON lines and metric names.
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Describe => "describe",
            TracePhase::Generate => "generate",
            TracePhase::Compile => "compile",
            TracePhase::Exchange => "exchange",
            TracePhase::Wire => "wire",
            TracePhase::Fuzz => "fuzz",
        }
    }

    /// The phase's aggregate latency-histogram name
    /// (`phase_<name>_ns`), precomposed so the per-span hot path never
    /// formats it.
    pub fn metric_ns(self) -> &'static str {
        match self {
            TracePhase::Describe => "phase_describe_ns",
            TracePhase::Generate => "phase_generate_ns",
            TracePhase::Compile => "phase_compile_ns",
            TracePhase::Exchange => "phase_exchange_ns",
            TracePhase::Wire => "phase_wire_ns",
            TracePhase::Fuzz => "phase_fuzz_ns",
        }
    }

    fn from_name(name: &str) -> Option<TracePhase> {
        Some(match name {
            "describe" => TracePhase::Describe,
            "generate" => TracePhase::Generate,
            "compile" => TracePhase::Compile,
            "exchange" => TracePhase::Exchange,
            "wire" => TracePhase::Wire,
            "fuzz" => TracePhase::Fuzz,
            _ => return None,
        })
    }
}

/// Span boundary: `enter` opens a phase, `exit` closes it with the
/// outcome and duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Phase started.
    Enter,
    /// Phase finished.
    Exit,
}

impl TraceKind {
    fn name(self) -> &'static str {
        match self {
            TraceKind::Enter => "enter",
            TraceKind::Exit => "exit",
        }
    }
}

/// One structured trace event (one JSON line in `--trace-out`).
///
/// Identity fields are zero-copy where the producers allow it: the
/// campaign's server/client/outcome labels are `&'static str`
/// (`ServerId::name` etc.), so they ride as borrowed [`Cow`]s, and the
/// type id is a shared [`std::sync::Arc`] — the hot path allocates for
/// the cell identity once, not once per field per event. The JSON
/// reader half necessarily produces the owned variants; equality
/// compares contents either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number assigned by the sink at record time.
    pub seq: u64,
    /// Pipeline phase.
    pub phase: TracePhase,
    /// Enter or exit.
    pub kind: TraceKind,
    /// Server framework name (`"Metro"`, `"JBossWS CXF"`, ...).
    pub server: std::borrow::Cow<'static, str>,
    /// Client subsystem name, when the phase involves one.
    pub client: Option<std::borrow::Cow<'static, str>>,
    /// Fully-qualified platform type under test.
    pub type_id: std::sync::Arc<str>,
    /// Exit-side outcome (`"success"`, `"warning"`, `"error"`,
    /// `"refused"`, `"replayed"`, ...).
    pub outcome: Option<std::borrow::Cow<'static, str>>,
    /// Fault-plan site key, when a fault plan governs this span.
    pub fault_site: Option<String>,
    /// Retries consumed by the resilient executor for this span.
    ///
    /// Only `describe` spans can be non-zero: transient deploy
    /// refusals are the one executor-level retry loop, so every other
    /// phase reports 0 by construction. Wire-transport retries are
    /// internal to the request and surface as the
    /// `wire_client_retries_total` metric, not here.
    pub retries: u64,
    /// True when the per-client circuit breaker was open for the cell.
    pub breaker_open: bool,
    /// Exit-side duration in nanoseconds.
    pub dur_ns: Option<u64>,
    /// Wire-server request correlation id (DESIGN.md §16), when the
    /// span answers one admitted request. Serialized as the same
    /// 16-hex-digit string the `X-Request-Id` response header carries,
    /// so a trace line greps directly against client-side captures.
    pub request_id: Option<u64>,
}

impl TraceEvent {
    /// A minimal enter event for `phase`; callers fill in identity.
    pub fn enter(
        phase: TracePhase,
        server: impl Into<std::borrow::Cow<'static, str>>,
        type_id: impl Into<std::sync::Arc<str>>,
    ) -> TraceEvent {
        TraceEvent {
            seq: 0,
            phase,
            kind: TraceKind::Enter,
            server: server.into(),
            client: None,
            type_id: type_id.into(),
            outcome: None,
            fault_site: None,
            retries: 0,
            breaker_open: false,
            dur_ns: None,
            request_id: None,
        }
    }

    /// The matching exit event with an outcome and duration.
    pub fn exit(
        mut self,
        outcome: impl Into<std::borrow::Cow<'static, str>>,
        dur_ns: u64,
    ) -> TraceEvent {
        self.kind = TraceKind::Exit;
        self.outcome = Some(outcome.into());
        self.dur_ns = Some(dur_ns);
        self
    }

    /// Attach a client name.
    pub fn with_client(mut self, client: impl Into<std::borrow::Cow<'static, str>>) -> TraceEvent {
        self.client = Some(client.into());
        self
    }

    /// Attach the fault-plan site key.
    pub fn with_fault_site(mut self, site: &str) -> TraceEvent {
        self.fault_site = Some(site.to_string());
        self
    }

    /// Attach retry count and breaker state.
    pub fn with_resilience(mut self, retries: u64, breaker_open: bool) -> TraceEvent {
        self.retries = retries;
        self.breaker_open = breaker_open;
        self
    }

    /// Attach the wire-server request correlation id.
    pub fn with_request_id(mut self, id: u64) -> TraceEvent {
        self.request_id = Some(id);
        self
    }

    /// Serialize as one JSON object on one line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160);
        self.write_json_line(&mut out);
        out
    }

    /// Serialize into a caller-provided buffer (not cleared first) —
    /// the sink's flush loop reuses one buffer across a whole batch so
    /// streaming allocates nothing per event.
    pub fn write_json_line(&self, out: &mut String) {
        out.push('{');
        push_field(out, "seq", &self.seq.to_string(), false);
        push_field(out, "phase", &json_string(self.phase.name()), true);
        push_field(out, "kind", &json_string(self.kind.name()), true);
        push_field(out, "server", &json_string(&self.server), true);
        match &self.client {
            Some(c) => push_field(out, "client", &json_string(c), true),
            None => push_field(out, "client", "null", true),
        }
        push_field(out, "type", &json_string(&self.type_id), true);
        match &self.outcome {
            Some(o) => push_field(out, "outcome", &json_string(o), true),
            None => push_field(out, "outcome", "null", true),
        }
        match &self.fault_site {
            Some(s) => push_field(out, "fault_site", &json_string(s), true),
            None => push_field(out, "fault_site", "null", true),
        }
        push_field(out, "retries", &self.retries.to_string(), true);
        push_field(
            out,
            "breaker_open",
            if self.breaker_open { "true" } else { "false" },
            true,
        );
        match self.dur_ns {
            Some(d) => push_field(out, "dur_ns", &d.to_string(), true),
            None => push_field(out, "dur_ns", "null", true),
        }
        match self.request_id {
            Some(id) => push_field(out, "request_id", &json_string(&format!("{id:016x}")), true),
            None => push_field(out, "request_id", "null", true),
        }
        out.push('}');
    }

    /// Parse one JSON line produced by [`TraceEvent::to_json_line`].
    ///
    /// This is the reader half of the round-trip contract: it accepts
    /// exactly the flat shape the writer emits (string / integer /
    /// bool / null values, no nesting) and returns `None` on anything
    /// else rather than guessing.
    pub fn from_json_line(line: &str) -> Option<TraceEvent> {
        let fields = parse_flat_object(line.trim())?;
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let str_of = |v: &JsonValue| match v {
            JsonValue::Str(s) => Some(s.clone()),
            _ => None,
        };
        let opt_str = |v: &JsonValue| match v {
            JsonValue::Str(s) => Some(Some(s.clone())),
            JsonValue::Null => Some(None),
            _ => None,
        };
        let num = |v: &JsonValue| match v {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        };
        Some(TraceEvent {
            seq: num(get("seq")?)?,
            phase: TracePhase::from_name(&str_of(get("phase")?)?)?,
            kind: match str_of(get("kind")?)?.as_str() {
                "enter" => TraceKind::Enter,
                "exit" => TraceKind::Exit,
                _ => return None,
            },
            server: str_of(get("server")?)?.into(),
            client: opt_str(get("client")?)?.map(Into::into),
            type_id: str_of(get("type")?)?.into(),
            outcome: opt_str(get("outcome")?)?.map(Into::into),
            fault_site: opt_str(get("fault_site")?)?,
            retries: num(get("retries")?)?,
            breaker_open: match get("breaker_open")? {
                JsonValue::Bool(b) => *b,
                _ => return None,
            },
            dur_ns: match get("dur_ns")? {
                JsonValue::Num(n) => Some(*n),
                JsonValue::Null => None,
                _ => return None,
            },
            // Absent on pre-§16 trace files — tolerated, not required.
            request_id: match get("request_id") {
                None | Some(JsonValue::Null) => None,
                Some(JsonValue::Str(s)) => Some(u64::from_str_radix(s, 16).ok()?),
                Some(_) => return None,
            },
        })
    }
}

fn push_field(out: &mut String, key: &str, rendered: &str, comma: bool) {
    if comma {
        out.push(',');
    }
    out.push_str(&json_string(key));
    out.push(':');
    out.push_str(rendered);
}

/// Values the flat trace-line parser understands.
enum JsonValue {
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
}

/// Parse `{"k":v,...}` with string/integer/bool/null values only.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let inner = line.strip_prefix('{')?.strip_suffix('}')?;
    let bytes = inner.as_bytes();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let (key, next) = parse_json_string(inner, i)?;
        i = skip_ws(bytes, next);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let (value, next) = parse_json_value(inner, i)?;
        fields.push((key, value));
        i = skip_ws(bytes, next);
        match bytes.get(i) {
            Some(b',') => i = skip_ws(bytes, i + 1),
            None => break,
            _ => return None,
        }
    }
    Some(fields)
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
        i += 1;
    }
    i
}

fn parse_json_value(src: &str, i: usize) -> Option<(JsonValue, usize)> {
    let bytes = src.as_bytes();
    match bytes.get(i)? {
        b'"' => parse_json_string(src, i).map(|(s, n)| (JsonValue::Str(s), n)),
        b't' => src[i..]
            .starts_with("true")
            .then_some((JsonValue::Bool(true), i + 4)),
        b'f' => src[i..]
            .starts_with("false")
            .then_some((JsonValue::Bool(false), i + 5)),
        b'n' => src[i..].starts_with("null").then_some((JsonValue::Null, i + 4)),
        b'0'..=b'9' => {
            let mut end = i;
            while bytes.get(end).is_some_and(u8::is_ascii_digit) {
                end += 1;
            }
            src[i..end].parse().ok().map(|n| (JsonValue::Num(n), end))
        }
        _ => None,
    }
}

fn parse_json_string(src: &str, i: usize) -> Option<(String, usize)> {
    let bytes = src.as_bytes();
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    let mut out = String::new();
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'"' => return Some((out, j + 1)),
            b'\\' => {
                j += 1;
                match bytes.get(j)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = src.get(j + 1..j + 5)?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        j += 4;
                    }
                    _ => return None,
                }
                j += 1;
            }
            _ => {
                // Multi-byte chars: copy the whole char, advance by its len.
                let c = src[j..].chars().next()?;
                out.push(c);
                j += c.len_utf8();
            }
        }
    }
    None
}

/// Events a thread stages locally before taking the sink's merge lock.
/// 64 events ≈ 32 spans: long enough to amortize the lock, short
/// enough that the ring and the trace stream never lag a live worker
/// by more than a few cells.
const LOCAL_BATCH: usize = 64;

/// One thread's shared staging buffer: the owning thread appends, and
/// any reader may steal its contents through the sink's stage
/// registry. The buffer mutex is all but uncontended — the owner takes
/// it per event, readers only at observation points.
type StageBuf = std::sync::Arc<Mutex<Vec<TraceEvent>>>;

/// One thread's staging handle for one sink, plus the weak back-edge
/// that lets the thread-exit destructor deregister the buffer and
/// flush whatever is still pending. Dropping a `LocalStage` whose sink
/// is already gone simply discards the events — nobody can observe a
/// dropped sink.
struct LocalStage {
    sink_id: u64,
    sink: std::sync::Weak<SinkCore>,
    buf: StageBuf,
}

impl Drop for LocalStage {
    fn drop(&mut self) {
        if let Some(core) = self.sink.upgrade() {
            // Publish the tail batch FIRST, while the stage is still
            // registered. Deregistering first opens a window where a
            // reader's steal sees neither the stage nor its events and
            // under-reports `recorded()` during thread teardown; with
            // this order a concurrent reader either steals the tail
            // itself (our ingest then merges nothing) or finds an
            // already-empty buffer after it — exact either way. The
            // owner is dying, so nothing is ever pushed after this.
            {
                // lock-order: L3.b (stage buffer) — above L3.c (ring).
                let mut pending = lock_unpoisoned(&self.buf);
                core.ingest(&mut pending);
            }
            // lock-order: L3.a (stage registry) — taken with no other
            // sink lock held.
            lock_unpoisoned(&core.stages).retain(|s| !std::sync::Arc::ptr_eq(s, &self.buf));
        }
    }
}

thread_local! {
    /// Per-thread staging handles, keyed by sink id (tests hold
    /// several sinks at once; campaigns hold one). Thread exit drops
    /// the stages, which deregisters the buffers and flushes every
    /// pending event.
    static STAGES: std::cell::RefCell<Vec<LocalStage>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Issues unique sink ids for the thread-local staging key.
static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(0);

/// The shared state behind a [`TraceSink`]: the bounded ring, the
/// sequence/drop accounting and the optional output stream. Kept
/// behind an `Arc` so per-thread staging buffers can hold a weak
/// back-edge for their exit flush.
#[derive(Debug)]
struct SinkCore {
    id: u64,
    buf: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    /// Next sequence number == total events ever merged, so this one
    /// atomic serves both the flush numbering and
    /// [`TraceSink::recorded`].
    seq: AtomicU64,
    dropped: AtomicU64,
    /// Mirrors `out.is_some()` so the flush path can skip the file
    /// mutex (and the serialization) when nothing streams.
    has_out: std::sync::atomic::AtomicBool,
    out: Mutex<Option<File>>,
    write_error: Mutex<Option<String>>,
    /// Every live thread's staging buffer, so read-side accessors can
    /// steal staged tails from *all* threads — not just the caller's —
    /// before reporting. This is what keeps accounting exact even for
    /// a reader that races a worker's thread exit (`thread::scope` can
    /// return before the worker's TLS destructors have run).
    stages: Mutex<Vec<StageBuf>>,
}

impl SinkCore {
    /// Merge a staged batch into the ring (and the output stream)
    /// under one short lock hold.
    ///
    /// Sequence numbers are assigned here, while the buffer lock is
    /// held, and the file write happens under that same lock — so both
    /// the ring and the `--trace-out` stream stay monotonic in `seq`
    /// even with concurrent flushers, exactly as when `record` itself
    /// took the lock per event. An oversized serialized line (only
    /// detectable when streaming) drops the event from *both* the file
    /// and the ring, so each missing event is counted exactly once and
    /// `recorded() - len()` always equals `dropped()`.
    fn ingest(&self, pending: &mut Vec<TraceEvent>) {
        if pending.is_empty() {
            return;
        }
        // lock-order: L3.c (trace ring) — may acquire L3.d (trace out
        // stream) below; nothing else is ever taken under it.
        let mut buf = lock_unpoisoned(&self.buf);
        let streaming = self.has_out.load(Ordering::Relaxed);
        // One reusable line buffer and one file-lock hold per batch.
        let mut line = String::new();
        // lock-order: L3.d (trace out stream) — leaf, under L3.c.
        let mut out = streaming.then(|| lock_unpoisoned(&self.out));
        for mut event in pending.drain(..) {
            event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
            if let Some(out) = &mut out {
                line.clear();
                event.write_json_line(&mut line);
                if line.len() > MAX_EVENT_LINE_BYTES {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let Some(file) = out.as_mut() {
                    if let Err(e) = writeln!(file, "{line}") {
                        // lock-order: L3.e (write-error latch) —
                        // innermost of the sink chain.
                        let mut err = lock_unpoisoned(&self.write_error);
                        if err.is_none() {
                            *err = Some(e.to_string());
                        }
                    }
                }
            }
            if buf.len() >= self.capacity {
                buf.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            buf.push_back(event);
        }
    }

    /// Steal and merge every registered thread's staged tail. Each
    /// buffer is ingested while its own mutex is held, so a racing
    /// owner can neither interleave its batch mid-steal nor invert its
    /// per-thread event order.
    fn flush_stages(&self) {
        // lock-order: L3.a (stage registry) — snapshot only; released
        // before the buffer/ring locks below.
        let stages: Vec<StageBuf> = lock_unpoisoned(&self.stages).clone();
        for stage in stages {
            // lock-order: L3.b (stage buffer) — above L3.c (ring).
            let mut pending = lock_unpoisoned(&stage);
            self.ingest(&mut pending);
        }
    }
}

/// The bounded in-memory trace sink, optionally teeing every event to
/// a JSON-lines file (`--trace-out`).
///
/// Recording goes through **per-thread staging buffers**: a worker
/// appends to its own registered buffer (one all-but-uncontended mutex
/// per thread) and only every [`LOCAL_BATCH`] events — or at thread
/// exit — takes the shared merge lock to publish the batch. Read-side
/// accessors steal every registered buffer's staged tail first, so
/// they stay exact no matter which threads recorded or whether those
/// threads have finished tearing down. Workers therefore no longer
/// serialize on a single ring mutex per event, while every pinned
/// invariant of the single-lock design still holds: `seq` is assigned
/// under the merge lock (ring and stream stay seq-monotonic), eviction
/// still counts into `dropped`, and `recorded() - len() == dropped()`
/// at every observation point.
#[derive(Debug)]
pub struct TraceSink {
    core: std::sync::Arc<SinkCore>,
}

impl TraceSink {
    /// A sink holding at most `capacity` events in memory.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            core: std::sync::Arc::new(SinkCore {
                id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
                // Reserve the whole ring up front (bounded at 64Ki
                // events) so no grow-realloc ever happens inside the
                // merge lock.
                buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 65_536))),
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                has_out: std::sync::atomic::AtomicBool::new(false),
                out: Mutex::new(None),
                write_error: Mutex::new(None),
                stages: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Stream every subsequent event to `path` as JSON lines.
    pub fn set_output(&self, path: &Path) -> std::io::Result<()> {
        self.flush_local();
        let file = File::create(path)?;
        // lock-order: L3.d (trace out stream) — leaf here.
        *lock_unpoisoned(&self.core.out) = Some(file);
        self.core.has_out.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Record one event into the calling thread's staging buffer,
    /// publishing the batch to the ring (and the output stream) every
    /// [`LOCAL_BATCH`] events. See the type docs for the merge
    /// semantics; [`TraceSink::flush_local`] forces the tail batch
    /// out early.
    pub fn record(&self, event: TraceEvent) {
        let mut event = Some(event);
        let staged = STAGES.try_with(|stages| {
            let mut stages = stages.borrow_mut();
            let stage = match stages.iter_mut().find(|s| s.sink_id == self.core.id) {
                Some(stage) => stage,
                None => {
                    // Adopting a new sink is the natural moment to
                    // forget stages whose sink has been dropped.
                    stages.retain(|s| s.sink.strong_count() > 0);
                    let buf: StageBuf =
                        std::sync::Arc::new(Mutex::new(Vec::with_capacity(LOCAL_BATCH)));
                    // lock-order: L3.a (stage registry) — leaf here.
                    lock_unpoisoned(&self.core.stages).push(std::sync::Arc::clone(&buf));
                    stages.push(LocalStage {
                        sink_id: self.core.id,
                        sink: std::sync::Arc::downgrade(&self.core),
                        buf,
                    });
                    stages.last_mut().expect("just pushed")
                }
            };
            // lock-order: L3.b (stage buffer) — uncontended unless a
            // reader is stealing; held across the batch ingest so the
            // thread's event order survives concurrent steals.
            let mut pending = lock_unpoisoned(&stage.buf);
            pending.push(event.take().expect("event staged once"));
            if pending.len() >= LOCAL_BATCH {
                self.core.ingest(&mut pending);
            }
        });
        if staged.is_err() {
            // Thread-local storage is gone (we are inside thread
            // teardown): publish directly rather than lose the event.
            if let Some(event) = event.take() {
                self.core.ingest(&mut vec![event]);
            }
        }
    }

    /// Publish every thread's staged events now. Read-side accessors
    /// call this implicitly, so observation points always see exact
    /// accounting regardless of which threads recorded; worker threads
    /// also flush their own tail automatically at thread exit.
    pub fn flush_local(&self) {
        self.core.flush_stages();
    }

    /// Total events published to the sink (every thread's staged tail
    /// is flushed first, so a caller always sees everything recorded
    /// so far).
    pub fn recorded(&self) -> u64 {
        self.core.flush_stages();
        self.core.seq.load(Ordering::Relaxed)
    }

    /// Events evicted on overflow or refused as oversized — the value
    /// the exporter publishes as `obs_events_dropped`.
    pub fn dropped(&self) -> u64 {
        self.core.flush_stages();
        self.core.dropped.load(Ordering::Relaxed)
    }

    /// First trace-file write error, if any (latched, like the journal
    /// writer's).
    pub fn write_error(&self) -> Option<String> {
        self.core.flush_stages();
        // lock-order: L3.e (write-error latch) — leaf here.
        lock_unpoisoned(&self.core.write_error).clone()
    }

    /// Drain and return the buffered events in `seq` order (sequence
    /// numbers are assigned under the merge lock, so publish order and
    /// seq order coincide).
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.core.flush_stages();
        // lock-order: L3.c (trace ring) — leaf here.
        lock_unpoisoned(&self.core.buf).drain(..).collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.core.flush_stages();
        // lock-order: L3.c (trace ring) — leaf here.
        lock_unpoisoned(&self.core.buf).len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::with_capacity(DEFAULT_SINK_CAPACITY)
    }
}

/// Clones share the same core (ring, accounting, output stream) — a
/// clone is a second handle, not a second sink. The wire server's
/// config carries one so every reactor records into the campaign's
/// sink.
impl Clone for TraceSink {
    fn clone(&self) -> TraceSink {
        TraceSink { core: std::sync::Arc::clone(&self.core) }
    }
}

/// Read a JSON-lines trace file back into events, skipping blank
/// lines; returns `None` if any non-blank line fails to parse.
pub fn read_trace_lines(text: &str) -> Option<Vec<TraceEvent>> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(TraceEvent::from_json_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent::enter(TracePhase::Generate, "Metro", "java.util.Date")
            .with_client("Axis1 wsdl2java")
            .with_fault_site("gen/Metro/Axis1/java.util.Date")
            .with_resilience(2, false)
            .exit("warning", 123_456)
    }

    #[test]
    fn json_line_round_trips() {
        let mut event = sample();
        event.seq = 7;
        let line = event.to_json_line();
        let parsed = TraceEvent::from_json_line(&line).expect("parses");
        assert_eq!(parsed, event);
    }

    #[test]
    fn enter_events_round_trip_nulls() {
        let event = TraceEvent::enter(TracePhase::Describe, "WCF .NET", "System.Data.DataSet");
        let parsed = TraceEvent::from_json_line(&event.to_json_line()).expect("parses");
        assert_eq!(parsed, event);
        assert_eq!(parsed.client, None);
        assert_eq!(parsed.dur_ns, None);
    }

    #[test]
    fn escaped_strings_survive() {
        let mut event = sample();
        event.type_id = "weird\"quote\\back\nnew".into();
        let parsed = TraceEvent::from_json_line(&event.to_json_line()).expect("parses");
        assert_eq!(parsed.type_id, event.type_id);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in ["", "{", "{\"seq\":}", "[1,2]", "{\"seq\":1}", "not json"] {
            assert!(TraceEvent::from_json_line(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn overflow_counts_drops_never_silently() {
        let sink = TraceSink::with_capacity(2);
        for _ in 0..5 {
            sink.record(sample());
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.recorded(), 5);
        assert_eq!(sink.dropped(), 3);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].seq, 3, "oldest evicted first");
        assert!(sink.is_empty());
    }

    #[test]
    fn oversized_lines_drop_once_from_file_and_ring() {
        let path = std::env::temp_dir().join(format!(
            "wsinterop-obs-oversized-{}.jsonl",
            std::process::id()
        ));
        let sink = TraceSink::with_capacity(2);
        sink.set_output(&path).expect("create trace file");
        let mut huge = sample();
        huge.type_id = "x".repeat(MAX_EVENT_LINE_BYTES).into();
        sink.record(huge);
        sink.record(sample());
        // The oversized event is gone from both streams and counted
        // exactly once: recorded - len == dropped, never double.
        assert_eq!(sink.recorded(), 2);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 1);
        let text = std::fs::read_to_string(&path).expect("read trace file");
        assert_eq!(read_trace_lines(&text).expect("parses").len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn request_id_round_trips_and_absent_key_parses() {
        let mut event = sample().with_request_id(0xDEAD_BEEF);
        event.seq = 3;
        let line = event.to_json_line();
        assert!(line.contains("\"request_id\":\"00000000deadbeef\""));
        let parsed = TraceEvent::from_json_line(&line).expect("parses");
        assert_eq!(parsed.request_id, Some(0xDEAD_BEEF));
        assert_eq!(parsed, event);
        // Pre-§16 lines carry no request_id key at all.
        let legacy = line
            .replace(",\"request_id\":\"00000000deadbeef\"", "")
            .replace(",\"request_id\":null", "");
        let parsed = TraceEvent::from_json_line(&legacy).expect("parses");
        assert_eq!(parsed.request_id, None);
        // A non-hex or non-string id is rejected, not guessed at.
        let bad = line.replace("\"00000000deadbeef\"", "\"zz\"");
        assert!(TraceEvent::from_json_line(&bad).is_none());
    }

    #[test]
    fn read_trace_lines_skips_blanks_and_rejects_garbage() {
        let a = sample().to_json_line();
        let text = format!("{a}\n\n{a}\n");
        assert_eq!(read_trace_lines(&text).expect("parses").len(), 2);
        assert!(read_trace_lines("garbage\n").is_none());
    }
}
