//! A deterministic metrics registry: named counters and fixed-bucket
//! latency histograms.
//!
//! Design constraints, in order:
//!
//! 1. **Observe-only.** Nothing in the campaign reads a metric back to
//!    make a decision; the registry only accumulates.
//! 2. **Stable output.** Rendering is keyed by `BTreeMap`, so the
//!    Prometheus text and JSON forms are byte-stable for a given set
//!    of values — tests diff them directly.
//! 3. **Zero dependencies.** `std` only; the histogram buckets are a
//!    fixed power-of-two ladder so two registries filled with the same
//!    observations render identically with no float formatting drift.
//!
//! Metric names follow Prometheus conventions (`snake_case`, unit
//! suffix); labels are baked into the name string by the caller (e.g.
//! `phase_generate_ns{client="Axis1",server="Metro"}`) which keeps the
//! registry itself label-agnostic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::sync::{lock_unpoisoned, read_unpoisoned, write_unpoisoned};

/// Upper bounds (inclusive, in nanoseconds) of the fixed histogram
/// buckets: a power-of-two ladder from 1µs to ~8.6s, plus an implicit
/// overflow bucket. 24 buckets cover every latency this pipeline can
/// produce without per-registry configuration.
pub const BUCKET_BOUNDS_NS: [u64; 24] = {
    let mut bounds = [0u64; 24];
    let mut i = 0;
    while i < 24 {
        bounds[i] = 1_000u64 << i; // 1µs, 2µs, 4µs, ... ~8.59s
        i += 1;
    }
    bounds
};

/// One per-bucket exemplar: the most recent correlated observation
/// that landed in a bucket. `id` is the request ID (rendered as 16 hex
/// digits, matching the `X-Request-Id` response header), `value_ns`
/// the exact latency that fell into `bucket`. An exemplar turns a p99
/// bucket count into a concrete, trace-resolvable request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Disjoint-bin index into `Histogram::buckets`.
    pub bucket: usize,
    /// Correlation ID of the exemplified observation.
    pub id: u64,
    /// The exact observed value (always `<=` the bucket's bound).
    pub value_ns: u64,
}

/// One fixed-bucket latency histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts; index i counts values
    /// `<= BUCKET_BOUNDS_NS[i]` (cumulative-free, i.e. disjoint bins).
    pub buckets: [u64; BUCKET_BOUNDS_NS.len() + 1],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket exemplars (at most one per bucket, bucket-sorted).
    /// Empty unless the cell was fed through
    /// [`HistogramHandle::observe_ns_with_exemplar`] — plain
    /// histograms render and merge exactly as before.
    pub exemplars: Vec<Exemplar>,
}

/// Disjoint-bin index for one observation.
fn bucket_index(value_ns: u64) -> usize {
    BUCKET_BOUNDS_NS
        .iter()
        .position(|&bound| value_ns <= bound)
        .unwrap_or(BUCKET_BOUNDS_NS.len())
}

impl Histogram {
    /// Accumulate one observation into this snapshot (offline
    /// aggregation and tests; the live path goes through
    /// [`MetricsRegistry::observe_ns`]).
    pub fn observe(&mut self, value_ns: u64) {
        self.buckets[bucket_index(value_ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value_ns);
        self.max = self.max.max(value_ns);
    }

    /// Fold `other` into this histogram: per-bucket counts, `count`
    /// and `sum` add; `max` takes the larger value.
    ///
    /// Because quantiles are *defined* over the bucket vector (see
    /// [`Histogram::quantile_ns`]), merging the per-shard bucket
    /// vectors of a partitioned run reproduces the single-process
    /// quantiles exactly — there is no interpolation to drift.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for e in &other.exemplars {
            self.note_exemplar(*e);
        }
    }

    /// Fold one exemplar into the per-bucket slots with a
    /// *deterministic* precedence — larger `(value_ns, id)` wins — so
    /// merging shard snapshots in any order yields the same exemplar
    /// set. (The live path in `AtomicHistogram` keeps the *last*
    /// observation instead; determinism only matters for merges.)
    pub fn note_exemplar(&mut self, e: Exemplar) {
        match self.exemplars.iter_mut().find(|x| x.bucket == e.bucket) {
            Some(slot) => {
                if (e.value_ns, e.id) > (slot.value_ns, slot.id) {
                    *slot = e;
                }
            }
            None => {
                self.exemplars.push(e);
                self.exemplars.sort_by_key(|x| x.bucket);
            }
        }
    }

    /// The bucket upper bound at or above quantile `q` (0.0..=1.0).
    ///
    /// Quantiles are reported as bucket bounds, not interpolated
    /// values: that makes them deterministic (two identical bucket
    /// vectors always report identical quantiles) at the cost of
    /// granularity no finer than the bucket ladder.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }
}

/// The live, lock-free-on-the-hot-path histogram cell. Per-field
/// relaxed atomics: accumulation commutes, so the totals are exact
/// regardless of interleaving; a snapshot taken *while* observers are
/// still running may be momentarily torn across fields, which is fine
/// for an observe-only layer that exports after the run quiesces.
#[derive(Debug)]
struct AtomicHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Last correlated observation per bucket. A leaf mutex, not an
    /// atomic, because an exemplar is a (id, value) *pair* that must
    /// never tear; it is touched only by `observe_with_exemplar`
    /// callers (the wire server's response-complete path) and by
    /// export-time snapshots, never by the plain `observe` hot path.
    exemplars: Mutex<[Option<Exemplar>; BUCKET_BOUNDS_NS.len() + 1]>,
}

impl AtomicHistogram {
    fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplars: Mutex::new([None; BUCKET_BOUNDS_NS.len() + 1]),
        }
    }

    fn observe(&self, value_ns: u64) {
        self.buckets[bucket_index(value_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value_ns))
            });
        self.max.fetch_max(value_ns, Ordering::Relaxed);
    }

    fn observe_with_exemplar(&self, value_ns: u64, id: u64) {
        self.observe(value_ns);
        let bucket = bucket_index(value_ns);
        // lock-order: L0.b (exemplar slot) — leaf; nothing is ever
        // acquired while this lock is held.
        lock_unpoisoned(&self.exemplars)[bucket] = Some(Exemplar {
            bucket,
            id,
            value_ns,
        });
    }

    fn snapshot(&self) -> Histogram {
        // lock-order: L0.b (exemplar slot) — leaf; nothing is ever
        // acquired while this lock is held. Callers may hold the L0
        // registry map read lock (histograms_snapshot), which is why
        // the slot sits strictly below L0.
        let exemplars = lock_unpoisoned(&self.exemplars)
            .iter()
            .flatten()
            .copied()
            .collect();
        Histogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            exemplars,
        }
    }
}

/// A pre-resolved reference to one counter cell. Incrementing through
/// a handle is a single relaxed atomic add — no name lookup and no
/// registry lock, which is what keeps hot paths free of shared-map
/// traffic at any thread count. Clones share the same cell.
#[derive(Debug, Clone)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Add 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A pre-resolved reference to one histogram cell; observing through
/// it touches only the cell's relaxed atomics (see [`CounterHandle`]).
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl HistogramHandle {
    /// Record one latency observation.
    pub fn observe_ns(&self, value_ns: u64) {
        self.0.observe(value_ns);
    }

    /// Record one latency observation *with* a correlation ID: the
    /// bucket the value lands in remembers `(id, value_ns)` as its
    /// exemplar (last write wins), exported by both renders. Costs one
    /// leaf-mutex lock on top of [`HistogramHandle::observe_ns`], so
    /// callers opt in per observation.
    pub fn observe_ns_with_exemplar(&self, value_ns: u64, id: u64) {
        self.0.observe_with_exemplar(value_ns, id);
    }

    /// A point-in-time copy of the cell.
    pub fn snapshot(&self) -> Histogram {
        self.0.snapshot()
    }
}

/// A pre-resolved reference to one gauge cell: an instantaneous
/// level (open connections, queue depth) rather than a monotone
/// count, rendered under `# TYPE … gauge`. Same locking story as
/// [`CounterHandle`]: every operation is one atomic on the shared
/// cell. `SeqCst` because gauges mirror admission-ladder state whose
/// reads ( `/healthz`, `/statusz`) must not run ahead of the
/// increments they report.
#[derive(Debug, Clone)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl GaugeHandle {
    /// Overwrite the level.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::SeqCst);
    }

    /// Raise the level by `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::SeqCst);
    }

    /// Lower the level by `delta`, saturating at zero.
    pub fn sub(&self, delta: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(delta))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// A named counter whose registry handle is resolved on first use and
/// cached forever after.
///
/// This keeps registration *lazy* — an instrument appears in exports
/// only once it has actually been touched, exactly like the name-keyed
/// [`MetricsRegistry::add`] path it replaces — while the steady state
/// is a pure [`CounterHandle`] atomic add. The cell is bound to the
/// first registry it is used with; owners that carry their own
/// `Arc<MetricsRegistry>` (doc cache, journal writer) always pass the
/// same one.
#[derive(Debug, Default)]
pub struct LazyCounter {
    cell: OnceLock<CounterHandle>,
}

impl LazyCounter {
    /// An unresolved lazy counter.
    pub const fn new() -> LazyCounter {
        LazyCounter {
            cell: OnceLock::new(),
        }
    }

    /// Add `delta` to the counter `name` in `registry`, resolving and
    /// caching the handle on first use.
    pub fn add(&self, registry: &MetricsRegistry, name: &str, delta: u64) {
        self.cell
            .get_or_init(|| registry.counter_handle(name))
            .add(delta);
    }

    /// Add 1 (see [`LazyCounter::add`]).
    pub fn inc(&self, registry: &MetricsRegistry, name: &str) {
        self.add(registry, name, 1);
    }
}

/// The registry. The steady-state increment path is a shared read
/// lock plus a relaxed atomic add — worker threads never serialize on
/// each other once an instrument exists; the write lock is taken only
/// the first time a name appears. Hot paths go one step further and
/// resolve a [`CounterHandle`]/[`HistogramHandle`] once, after which
/// the registry lock is not touched again until export.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add 1 to counter `name`, creating it at zero first if needed.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        // lock-order: L0 (metrics registry map) — innermost.
        {
            let counters = read_unpoisoned(&self.counters);
            if let Some(c) = counters.get(name) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        write_unpoisoned(&self.counters)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Resolve (registering at zero if needed) a pre-shared handle to
    /// counter `name`. Increments through the handle never touch the
    /// registry lock again.
    pub fn counter_handle(&self, name: &str) -> CounterHandle {
        // lock-order: L0 (metrics registry map) — innermost.
        {
            if let Some(c) = read_unpoisoned(&self.counters).get(name) {
                return CounterHandle(Arc::clone(c));
            }
        }
        CounterHandle(Arc::clone(
            write_unpoisoned(&self.counters)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// Resolve (registering at zero if needed) a pre-shared handle to
    /// gauge `name` (see [`MetricsRegistry::counter_handle`]).
    pub fn gauge_handle(&self, name: &str) -> GaugeHandle {
        // lock-order: L0 (metrics registry map) — innermost.
        {
            if let Some(g) = read_unpoisoned(&self.gauges).get(name) {
                return GaugeHandle(Arc::clone(g));
            }
        }
        GaugeHandle(Arc::clone(
            write_unpoisoned(&self.gauges)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// Current value of gauge `name` (0 when never registered).
    pub fn gauge(&self, name: &str) -> u64 {
        // lock-order: L0 (metrics registry map) — innermost.
        read_unpoisoned(&self.gauges)
            .get(name)
            .map(|g| g.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    /// Resolve (registering an empty cell if needed) a pre-shared
    /// handle to histogram `name` (see [`MetricsRegistry::counter_handle`]).
    pub fn histogram_handle(&self, name: &str) -> HistogramHandle {
        // lock-order: L0 (metrics registry map) — innermost.
        {
            if let Some(h) = read_unpoisoned(&self.histograms).get(name) {
                return HistogramHandle(Arc::clone(h));
            }
        }
        HistogramHandle(Arc::clone(
            write_unpoisoned(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        ))
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        // lock-order: L0 (metrics registry map) — innermost.
        read_unpoisoned(&self.counters)
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Record one latency observation into histogram `name`.
    pub fn observe_ns(&self, name: &str, value_ns: u64) {
        // lock-order: L0 (metrics registry map) — innermost.
        {
            let histograms = read_unpoisoned(&self.histograms);
            if let Some(h) = histograms.get(name) {
                h.observe(value_ns);
                return;
            }
        }
        write_unpoisoned(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicHistogram::new()))
            .observe(value_ns);
    }

    /// Snapshot of histogram `name`, if it has ever been observed.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        // lock-order: L0 (metrics registry map) — innermost.
        read_unpoisoned(&self.histograms)
            .get(name)
            .map(|h| h.snapshot())
    }

    /// All counter (name, value) pairs in name order.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        // lock-order: L0 (metrics registry map) — innermost.
        read_unpoisoned(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// All gauge (name, value) pairs in name order.
    pub fn gauges_snapshot(&self) -> Vec<(String, u64)> {
        // lock-order: L0 (metrics registry map) — innermost.
        read_unpoisoned(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::SeqCst)))
            .collect()
    }

    /// All histogram (name, snapshot) pairs in name order.
    pub fn histograms_snapshot(&self) -> Vec<(String, Histogram)> {
        // lock-order: L0 (metrics registry map) — innermost.
        read_unpoisoned(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// A point-in-time copy of every instrument, suitable for merging
    /// across registries (sharded workers) or rendering offline.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters_snapshot().into_iter().collect(),
            gauges: self.gauges_snapshot().into_iter().collect(),
            histograms: self.histograms_snapshot().into_iter().collect(),
        }
    }

    /// Render every instrument as Prometheus text exposition format
    /// (see [`MetricsSnapshot::render_prometheus`]). Output is sorted
    /// by family then series and stable for a given set of values.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Render every instrument as a single JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {count, sum, max, p50, p95, p99, buckets: [...]}}}`. Key order
    /// is sorted, so the output is stable.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// An immutable copy of a registry's instruments: what a shard worker
/// writes to disk and what the supervisor merges.
///
/// Merging is exact, not approximate: counters add (so one
/// `obs_events_dropped` total survives the merge), histogram bucket
/// vectors add bin-wise, and quantiles are recomputed from the merged
/// buckets — identical to what a single registry fed all the
/// observations would report, because quantiles are defined as bucket
/// bounds ([`Histogram::quantile_ns`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (instantaneous levels).
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Fold `other` into this snapshot: counters and gauges add,
    /// histograms merge bin-wise ([`Histogram::merge`]). Summing
    /// gauges is the right merge for shard workers: each reports its
    /// own level, and at quiesce every level is zero.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += value;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Prometheus text exposition format: every family gets a
    /// `# HELP` and `# TYPE` header (counters `counter`, gauges
    /// `gauge`, histograms `histogram` with cumulative `_bucket{le=…}`
    /// series plus `_sum`/`_count`); the deterministic `_max`/`_p50`/
    /// `_p95`/`_p99` derivations are exported as their own gauge
    /// families. Buckets carrying an exemplar render it in
    /// OpenMetrics form (`… # {request_id="…"} value`). Families are
    /// sorted by base name, series within a family by full name, so
    /// output is byte-stable for a given set of values.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        render_scalar_families(&mut out, &self.counters, "counter");
        render_scalar_families(&mut out, &self.gauges, "gauge");
        let mut families: BTreeMap<&str, Vec<(&str, &Histogram)>> = BTreeMap::new();
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            families.entry(base).or_default().push((labels, h));
        }
        for (base, members) in &families {
            let _ = writeln!(out, "# HELP {base} {}", help_text(base));
            let _ = writeln!(out, "# TYPE {base} histogram");
            for (labels, h) in members {
                let mut cumulative = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    cumulative += n;
                    let le = match BUCKET_BOUNDS_NS.get(i) {
                        Some(bound) => bound.to_string(),
                        None => "+Inf".to_string(),
                    };
                    let series = labels_with(labels, &format!("le=\"{le}\""));
                    match h.exemplars.iter().find(|e| e.bucket == i) {
                        Some(e) => {
                            let _ = writeln!(
                                out,
                                "{base}_bucket{series} {cumulative} # {{request_id=\"{:016x}\"}} {}",
                                e.id, e.value_ns
                            );
                        }
                        None => {
                            let _ = writeln!(out, "{base}_bucket{series} {cumulative}");
                        }
                    }
                }
                let _ = writeln!(out, "{base}_sum{labels} {}", h.sum);
                let _ = writeln!(out, "{base}_count{labels} {}", h.count);
            }
            for (suffix, q) in [
                ("max", None),
                ("p50", Some(0.50)),
                ("p95", Some(0.95)),
                ("p99", Some(0.99)),
            ] {
                let _ = writeln!(out, "# TYPE {base}_{suffix} gauge");
                for (labels, h) in members {
                    let value = match q {
                        Some(q) => h.quantile_ns(q),
                        None => h.max,
                    };
                    let _ = writeln!(out, "{base}_{suffix}{labels} {value}");
                }
            }
        }
        out
    }

    /// The JSON object form, byte-identical to what
    /// [`MetricsRegistry::render_json`] produces for the same values.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                json_string(name),
                h.count,
                h.sum,
                h.max,
                h.quantile_ns(0.50),
                h.quantile_ns(0.95),
                h.quantile_ns(0.99),
            );
            for (j, n) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{n}");
            }
            out.push(']');
            if !h.exemplars.is_empty() {
                out.push_str(",\"exemplars\":[");
                for (j, e) in h.exemplars.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{},{},{}]", e.bucket, e.id, e.value_ns);
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Parse the exact JSON shape [`MetricsSnapshot::render_json`]
    /// emits (as written by `wsitool … --metrics-out` in JSON mode and
    /// by shard workers). The derived `p50`/`p95`/`p99` fields are
    /// accepted and discarded — quantiles are always recomputed from
    /// the bucket vector, so a snapshot round-trips bit-identically.
    ///
    /// Returns `None` on any structural mismatch; this is a recovery
    /// path for our own files, not a general JSON parser.
    pub fn parse_json(src: &str) -> Option<MetricsSnapshot> {
        let mut p = Parser { bytes: src.as_bytes(), at: 0 };
        let snapshot = p.snapshot()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return None;
        }
        Some(snapshot)
    }
}

/// Cursor over the byte form of a snapshot JSON document.
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn eat(&mut self, token: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&token) {
            self.at += 1;
            Some(())
        } else {
            None
        }
    }

    /// True (and consumed) when the next non-space byte is `token`.
    fn peek_eat(&mut self, token: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&token) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match *self.bytes.get(self.at)? {
                b'"' => {
                    self.at += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.at += 1;
                    match *self.bytes.get(self.at)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.at + 1..self.at + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.at += 4;
                        }
                        _ => return None,
                    }
                    self.at += 1;
                }
                _ => {
                    // Advance one whole UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.at..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.at;
        while self.bytes.get(self.at).is_some_and(u8::is_ascii_digit) {
            self.at += 1;
        }
        if self.at == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()?
            .parse()
            .ok()
    }

    fn key(&mut self, want: &str) -> Option<()> {
        let got = self.string()?;
        if got != want {
            return None;
        }
        self.eat(b':')
    }

    fn snapshot(&mut self) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::default();
        self.eat(b'{')?;
        self.key("counters")?;
        self.eat(b'{')?;
        if !self.peek_eat(b'}') {
            loop {
                let name = self.string()?;
                self.eat(b':')?;
                let value = self.number()?;
                snap.counters.insert(name, value);
                if self.peek_eat(b'}') {
                    break;
                }
                self.eat(b',')?;
            }
        }
        self.eat(b',')?;
        self.key("gauges")?;
        self.eat(b'{')?;
        if !self.peek_eat(b'}') {
            loop {
                let name = self.string()?;
                self.eat(b':')?;
                let value = self.number()?;
                snap.gauges.insert(name, value);
                if self.peek_eat(b'}') {
                    break;
                }
                self.eat(b',')?;
            }
        }
        self.eat(b',')?;
        self.key("histograms")?;
        self.eat(b'{')?;
        if !self.peek_eat(b'}') {
            loop {
                let name = self.string()?;
                self.eat(b':')?;
                snap.histograms.insert(name, self.histogram()?);
                if self.peek_eat(b'}') {
                    break;
                }
                self.eat(b',')?;
            }
        }
        self.eat(b'}')?;
        Some(snap)
    }

    fn histogram(&mut self) -> Option<Histogram> {
        let mut h = Histogram::default();
        self.eat(b'{')?;
        self.key("count")?;
        h.count = self.number()?;
        self.eat(b',')?;
        self.key("sum")?;
        h.sum = self.number()?;
        self.eat(b',')?;
        self.key("max")?;
        h.max = self.number()?;
        for q in ["p50", "p95", "p99"] {
            self.eat(b',')?;
            self.key(q)?;
            let _ = self.number()?; // derived; recomputed from buckets
        }
        self.eat(b',')?;
        self.key("buckets")?;
        self.eat(b'[')?;
        for (i, bucket) in h.buckets.iter_mut().enumerate() {
            if i > 0 {
                self.eat(b',')?;
            }
            *bucket = self.number()?;
        }
        self.eat(b']')?;
        // Optional exemplar list — only written for cells that carry
        // exemplars, so plain histograms keep their exact old shape.
        if self.peek_eat(b',') {
            self.key("exemplars")?;
            self.eat(b'[')?;
            if !self.peek_eat(b']') {
                loop {
                    self.eat(b'[')?;
                    let bucket = self.number()? as usize;
                    self.eat(b',')?;
                    let id = self.number()?;
                    self.eat(b',')?;
                    let value_ns = self.number()?;
                    self.eat(b']')?;
                    h.exemplars.push(Exemplar {
                        bucket,
                        id,
                        value_ns,
                    });
                    if self.peek_eat(b']') {
                        break;
                    }
                    self.eat(b',')?;
                }
            }
        }
        self.eat(b'}')?;
        Some(h)
    }
}

/// Split `phase_generate_ns{server="Metro"}` into
/// (`phase_generate_ns`, `{server="Metro"}`) so histogram suffixes
/// (`_count`, `_p95`, ...) attach to the base name, not after the
/// label set.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Append `extra` (a `key="value"` pair) to a `{…}` label set; an
/// empty label set becomes `{extra}`.
fn labels_with(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{{{},{extra}}}", &labels[1..labels.len() - 1])
    }
}

/// One scalar section (counters or gauges) in exposition format:
/// series grouped into families by base name, each family headed by
/// `# HELP` / `# TYPE` lines.
fn render_scalar_families(out: &mut String, values: &BTreeMap<String, u64>, kind: &str) {
    let mut families: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
    for (name, value) in values {
        let (base, _) = split_labels(name);
        families.entry(base).or_default().push((name, *value));
    }
    for (base, members) in &families {
        let _ = writeln!(out, "# HELP {base} {}", help_text(base));
        let _ = writeln!(out, "# TYPE {base} {kind}");
        for (name, value) in members {
            let _ = writeln!(out, "{name} {value}");
        }
    }
}

/// The `# HELP` line for a metric family: a short description for the
/// families this codebase emits, a generic fallback for ad-hoc names.
/// Escaped per the exposition format (`\\` and `\n`).
fn help_text(base: &str) -> String {
    let text = match base {
        "wire_server_request_ns" => "serving-path response latency (admin routes excluded)",
        "wire_server_admin_request_ns" => "admin-route response latency",
        "wire_server_open_conns" => "connections currently open",
        "wire_server_in_flight" => "connections holding an in-flight slot",
        "wire_server_queued" => "connections parked in the bounded accept queue",
        "wire_server_responses_total" => "serving-path responses by status code",
        "wire_server_admin_responses_total" => "admin-route responses by route",
        "obs_events_recorded" => "trace events durably recorded",
        "obs_events_dropped" => "trace events dropped at ring capacity",
        _ => "wsinterop metric",
    };
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape one label *value* per the Prometheus text exposition format:
/// backslash, double quote, and line feed. Callers bake labels into
/// metric names (`name{key="value"}`), so escaping happens at bake
/// time — for the framework/code labels this codebase uses the
/// function is the identity, but ad-hoc values stay parseable.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let reg = MetricsRegistry::new();
        reg.inc("zeta_total");
        reg.add("alpha_total", 5);
        reg.inc("alpha_total");
        assert_eq!(reg.counter("alpha_total"), 6);
        assert_eq!(reg.counter("missing"), 0);
        let text = reg.render_prometheus();
        let alpha = text.find("alpha_total 6").expect("alpha rendered");
        let zeta = text.find("zeta_total 1").expect("zeta rendered");
        assert!(alpha < zeta, "sorted order:\n{text}");
    }

    #[test]
    fn histogram_buckets_quantiles_and_overflow() {
        let mut h = Histogram::default();
        for v in [500, 1_000, 3_000, 1_000_000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 2); // 500 and 1_000 both <= 1µs bound
        assert_eq!(*h.buckets.last().unwrap(), 1); // overflow bucket
        assert_eq!(h.quantile_ns(0.5), BUCKET_BOUNDS_NS[2]); // 3_000 <= 4µs
        assert_eq!(h.quantile_ns(1.0), h.max);
        assert_eq!(Histogram::default().quantile_ns(0.99), 0);
    }

    #[test]
    fn renders_are_stable_and_labels_split() {
        let reg = MetricsRegistry::new();
        reg.observe_ns("phase_generate_ns{server=\"Metro\"}", 2_000);
        reg.inc("cells_total");
        assert_eq!(reg.render_prometheus(), reg.render_prometheus());
        assert_eq!(reg.render_json(), reg.render_json());
        let text = reg.render_prometheus();
        assert!(
            text.contains("phase_generate_ns_count{server=\"Metro\"} 1"),
            "{text}"
        );
        let json = reg.render_json();
        assert!(json.contains("\"counters\":{\"cells_total\":1}"), "{json}");
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn label_value_escaping_covers_specials() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(escape_label_value("Metro"), "Metro");
    }

    /// The exhaustive exposition-format pin: every family carries
    /// `# HELP` / `# TYPE` headers (exactly one per family, however
    /// many series share the base name), gauges are typed `gauge`,
    /// histograms emit cumulative `le`-labelled buckets ending at
    /// `+Inf`, and every non-comment line is `name value`-shaped.
    #[test]
    fn prometheus_exposition_format_is_compliant() {
        let reg = MetricsRegistry::new();
        reg.inc("requests_total{code=\"200\"}");
        reg.inc("requests_total{code=\"503\"}");
        reg.gauge_handle("depth").set(3);
        reg.observe_ns("lat_ns", 1_500);
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE requests_total counter").count(), 1);
        assert_eq!(text.matches("# HELP requests_total ").count(), 1);
        assert!(text.contains("requests_total{code=\"200\"} 1"), "{text}");
        assert!(text.contains("# TYPE depth gauge"), "{text}");
        assert!(text.contains("\ndepth 3\n"), "{text}");
        assert!(text.contains("# TYPE lat_ns histogram"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"1000\"} 0"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"2000\"} 1"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("lat_ns_sum 1500"), "{text}");
        assert!(text.contains("lat_ns_count 1"), "{text}");
        for suffix in ["max", "p50", "p95", "p99"] {
            assert!(text.contains(&format!("# TYPE lat_ns_{suffix} gauge")), "{text}");
        }
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "stray comment: {line}"
                );
                continue;
            }
            let value_part = match line.split_once(" # {") {
                Some((head, _)) => head, // exemplar suffix
                None => line,
            };
            let value = value_part.rsplit_once(' ').map(|(_, v)| v).unwrap_or("");
            assert!(value.parse::<u64>().is_ok(), "bad series line: {line}");
        }
    }

    #[test]
    fn gauges_level_saturate_and_render_as_gauge() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge_handle("wire_server_queued");
        g.add(2);
        g.sub(1);
        assert_eq!(g.get(), 1);
        g.sub(5);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        g.set(7);
        assert_eq!(reg.gauge("wire_server_queued"), 7);
        assert_eq!(reg.gauge("missing"), 0);
        let json = reg.render_json();
        assert!(json.contains("\"gauges\":{\"wire_server_queued\":7}"), "{json}");
        let parsed = MetricsSnapshot::parse_json(&json).expect("parses");
        assert_eq!(parsed.gauges.get("wire_server_queued"), Some(&7));
        assert_eq!(parsed.render_json(), json);
    }

    #[test]
    fn exemplars_record_render_merge_and_round_trip() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_handle("wire_server_request_ns");
        h.observe_ns_with_exemplar(1_500, 0xabcd);
        h.observe_ns_with_exemplar(1_600, 0xbeef); // same bucket: last wins
        h.observe_ns(9_999_999); // plain observation leaves no exemplar
        let snap = h.snapshot();
        assert_eq!(
            snap.exemplars,
            vec![Exemplar { bucket: 1, id: 0xbeef, value_ns: 1_600 }]
        );
        let text = reg.render_prometheus();
        assert!(
            text.contains("# {request_id=\"000000000000beef\"} 1600"),
            "{text}"
        );
        let json = reg.render_json();
        let parsed = MetricsSnapshot::parse_json(&json).expect("parses");
        assert_eq!(parsed, reg.snapshot());
        assert_eq!(parsed.render_json(), json);

        // Snapshot merge is order-independent: larger (value, id) wins.
        let mut a = Histogram::default();
        a.observe(1_500);
        a.note_exemplar(Exemplar { bucket: 1, id: 1, value_ns: 1_500 });
        let mut b = Histogram::default();
        b.observe(1_600);
        b.note_exemplar(Exemplar { bucket: 1, id: 2, value_ns: 1_600 });
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(
            ab.exemplars,
            vec![Exemplar { bucket: 1, id: 2, value_ns: 1_600 }]
        );
    }

    /// The sharding edge case called out in ISSUE 6: observations
    /// split across per-shard registries, merged bucket-wise, must
    /// report p50/p95/p99 identical to one registry that saw every
    /// observation — including values that straddle bucket boundaries
    /// and land in the overflow bucket.
    #[test]
    fn split_registries_merge_to_single_process_quantiles() {
        let values: Vec<u64> = (0..500)
            .map(|i: u64| (i * i * 7919) % 9_000_000_000) // spans all buckets + overflow
            .chain([0, 1, 999, 1_000, 1_001, u64::MAX])
            .collect();

        let single = MetricsRegistry::new();
        let shards: Vec<MetricsRegistry> = (0..3).map(|_| MetricsRegistry::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.observe_ns("phase_ns", v);
            single.add("cells_total", 1);
            shards[i % 3].observe_ns("phase_ns", v);
            shards[i % 3].add("cells_total", 1);
        }
        // Skewed instruments: only some shards ever see them.
        single.add("obs_events_dropped", 7);
        shards[0].add("obs_events_dropped", 2);
        shards[2].add("obs_events_dropped", 5);
        single.observe_ns("rare_ns", 42);
        shards[1].observe_ns("rare_ns", 42);

        let mut merged = MetricsSnapshot::default();
        for shard in &shards {
            merged.merge(&shard.snapshot());
        }
        let want = single.snapshot();
        let got = merged.histograms.get("phase_ns").unwrap();
        let reference = want.histograms.get("phase_ns").unwrap();
        for q in [0.50, 0.95, 0.99] {
            assert_eq!(got.quantile_ns(q), reference.quantile_ns(q), "q={q}");
        }
        assert_eq!(merged, want); // buckets, counts, sums, max, counters
        assert_eq!(merged.render_json(), single.render_json());
        assert_eq!(merged.render_prometheus(), single.render_prometheus());
    }

    #[test]
    fn snapshot_json_round_trips_bit_identically() {
        let reg = MetricsRegistry::new();
        reg.observe_ns("phase_generate_ns{server=\"Metro\"}", 2_000);
        reg.observe_ns("phase_generate_ns{server=\"Metro\"}", u64::MAX);
        reg.add("cells_total", 11);
        reg.add("weird \"name\"\n", 1);
        let json = reg.render_json();
        let parsed = MetricsSnapshot::parse_json(&json).expect("own output parses");
        assert_eq!(parsed, reg.snapshot());
        assert_eq!(parsed.render_json(), json);
        assert_eq!(MetricsSnapshot::parse_json("{}"), None);
        assert_eq!(MetricsSnapshot::parse_json(&json[..json.len() - 1]), None);
        let empty = MetricsRegistry::new().render_json();
        assert_eq!(
            MetricsSnapshot::parse_json(&empty),
            Some(MetricsSnapshot::default())
        );
    }
}
