//! A deterministic metrics registry: named counters and fixed-bucket
//! latency histograms.
//!
//! Design constraints, in order:
//!
//! 1. **Observe-only.** Nothing in the campaign reads a metric back to
//!    make a decision; the registry only accumulates.
//! 2. **Stable output.** Rendering is keyed by `BTreeMap`, so the
//!    Prometheus text and JSON forms are byte-stable for a given set
//!    of values — tests diff them directly.
//! 3. **Zero dependencies.** `std` only; the histogram buckets are a
//!    fixed power-of-two ladder so two registries filled with the same
//!    observations render identically with no float formatting drift.
//!
//! Metric names follow Prometheus conventions (`snake_case`, unit
//! suffix); labels are baked into the name string by the caller (e.g.
//! `phase_generate_ns{client="Axis1",server="Metro"}`) which keeps the
//! registry itself label-agnostic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::sync::{read_unpoisoned, write_unpoisoned};

/// Upper bounds (inclusive, in nanoseconds) of the fixed histogram
/// buckets: a power-of-two ladder from 1µs to ~8.6s, plus an implicit
/// overflow bucket. 24 buckets cover every latency this pipeline can
/// produce without per-registry configuration.
pub const BUCKET_BOUNDS_NS: [u64; 24] = {
    let mut bounds = [0u64; 24];
    let mut i = 0;
    while i < 24 {
        bounds[i] = 1_000u64 << i; // 1µs, 2µs, 4µs, ... ~8.59s
        i += 1;
    }
    bounds
};

/// One fixed-bucket latency histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts; index i counts values
    /// `<= BUCKET_BOUNDS_NS[i]` (cumulative-free, i.e. disjoint bins).
    pub buckets: [u64; BUCKET_BOUNDS_NS.len() + 1],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

/// Disjoint-bin index for one observation.
fn bucket_index(value_ns: u64) -> usize {
    BUCKET_BOUNDS_NS
        .iter()
        .position(|&bound| value_ns <= bound)
        .unwrap_or(BUCKET_BOUNDS_NS.len())
}

impl Histogram {
    /// Accumulate one observation into this snapshot (offline
    /// aggregation and tests; the live path goes through
    /// [`MetricsRegistry::observe_ns`]).
    pub fn observe(&mut self, value_ns: u64) {
        self.buckets[bucket_index(value_ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value_ns);
        self.max = self.max.max(value_ns);
    }

    /// Fold `other` into this histogram: per-bucket counts, `count`
    /// and `sum` add; `max` takes the larger value.
    ///
    /// Because quantiles are *defined* over the bucket vector (see
    /// [`Histogram::quantile_ns`]), merging the per-shard bucket
    /// vectors of a partitioned run reproduces the single-process
    /// quantiles exactly — there is no interpolation to drift.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The bucket upper bound at or above quantile `q` (0.0..=1.0).
    ///
    /// Quantiles are reported as bucket bounds, not interpolated
    /// values: that makes them deterministic (two identical bucket
    /// vectors always report identical quantiles) at the cost of
    /// granularity no finer than the bucket ladder.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }
}

/// The live, lock-free-on-the-hot-path histogram cell. Per-field
/// relaxed atomics: accumulation commutes, so the totals are exact
/// regardless of interleaving; a snapshot taken *while* observers are
/// still running may be momentarily torn across fields, which is fine
/// for an observe-only layer that exports after the run quiesces.
#[derive(Debug)]
struct AtomicHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, value_ns: u64) {
        self.buckets[bucket_index(value_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value_ns))
            });
        self.max.fetch_max(value_ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A pre-resolved reference to one counter cell. Incrementing through
/// a handle is a single relaxed atomic add — no name lookup and no
/// registry lock, which is what keeps hot paths free of shared-map
/// traffic at any thread count. Clones share the same cell.
#[derive(Debug, Clone)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Add 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A pre-resolved reference to one histogram cell; observing through
/// it touches only the cell's relaxed atomics (see [`CounterHandle`]).
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl HistogramHandle {
    /// Record one latency observation.
    pub fn observe_ns(&self, value_ns: u64) {
        self.0.observe(value_ns);
    }

    /// A point-in-time copy of the cell.
    pub fn snapshot(&self) -> Histogram {
        self.0.snapshot()
    }
}

/// A named counter whose registry handle is resolved on first use and
/// cached forever after.
///
/// This keeps registration *lazy* — an instrument appears in exports
/// only once it has actually been touched, exactly like the name-keyed
/// [`MetricsRegistry::add`] path it replaces — while the steady state
/// is a pure [`CounterHandle`] atomic add. The cell is bound to the
/// first registry it is used with; owners that carry their own
/// `Arc<MetricsRegistry>` (doc cache, journal writer) always pass the
/// same one.
#[derive(Debug, Default)]
pub struct LazyCounter {
    cell: OnceLock<CounterHandle>,
}

impl LazyCounter {
    /// An unresolved lazy counter.
    pub const fn new() -> LazyCounter {
        LazyCounter {
            cell: OnceLock::new(),
        }
    }

    /// Add `delta` to the counter `name` in `registry`, resolving and
    /// caching the handle on first use.
    pub fn add(&self, registry: &MetricsRegistry, name: &str, delta: u64) {
        self.cell
            .get_or_init(|| registry.counter_handle(name))
            .add(delta);
    }

    /// Add 1 (see [`LazyCounter::add`]).
    pub fn inc(&self, registry: &MetricsRegistry, name: &str) {
        self.add(registry, name, 1);
    }
}

/// The registry. The steady-state increment path is a shared read
/// lock plus a relaxed atomic add — worker threads never serialize on
/// each other once an instrument exists; the write lock is taken only
/// the first time a name appears. Hot paths go one step further and
/// resolve a [`CounterHandle`]/[`HistogramHandle`] once, after which
/// the registry lock is not touched again until export.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add 1 to counter `name`, creating it at zero first if needed.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        // lock-order: L0 (metrics registry map) — innermost.
        {
            let counters = read_unpoisoned(&self.counters);
            if let Some(c) = counters.get(name) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        write_unpoisoned(&self.counters)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Resolve (registering at zero if needed) a pre-shared handle to
    /// counter `name`. Increments through the handle never touch the
    /// registry lock again.
    pub fn counter_handle(&self, name: &str) -> CounterHandle {
        // lock-order: L0 (metrics registry map) — innermost.
        {
            if let Some(c) = read_unpoisoned(&self.counters).get(name) {
                return CounterHandle(Arc::clone(c));
            }
        }
        CounterHandle(Arc::clone(
            write_unpoisoned(&self.counters)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// Resolve (registering an empty cell if needed) a pre-shared
    /// handle to histogram `name` (see [`MetricsRegistry::counter_handle`]).
    pub fn histogram_handle(&self, name: &str) -> HistogramHandle {
        // lock-order: L0 (metrics registry map) — innermost.
        {
            if let Some(h) = read_unpoisoned(&self.histograms).get(name) {
                return HistogramHandle(Arc::clone(h));
            }
        }
        HistogramHandle(Arc::clone(
            write_unpoisoned(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        ))
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        // lock-order: L0 (metrics registry map) — innermost.
        read_unpoisoned(&self.counters)
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Record one latency observation into histogram `name`.
    pub fn observe_ns(&self, name: &str, value_ns: u64) {
        // lock-order: L0 (metrics registry map) — innermost.
        {
            let histograms = read_unpoisoned(&self.histograms);
            if let Some(h) = histograms.get(name) {
                h.observe(value_ns);
                return;
            }
        }
        write_unpoisoned(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicHistogram::new()))
            .observe(value_ns);
    }

    /// Snapshot of histogram `name`, if it has ever been observed.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        // lock-order: L0 (metrics registry map) — innermost.
        read_unpoisoned(&self.histograms)
            .get(name)
            .map(|h| h.snapshot())
    }

    /// All counter (name, value) pairs in name order.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        // lock-order: L0 (metrics registry map) — innermost.
        read_unpoisoned(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// All histogram (name, snapshot) pairs in name order.
    pub fn histograms_snapshot(&self) -> Vec<(String, Histogram)> {
        // lock-order: L0 (metrics registry map) — innermost.
        read_unpoisoned(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// A point-in-time copy of every instrument, suitable for merging
    /// across registries (sharded workers) or rendering offline.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters_snapshot().into_iter().collect(),
            histograms: self.histograms_snapshot().into_iter().collect(),
        }
    }

    /// Render every instrument as Prometheus-style text: counters as
    /// `name value` lines, histograms as `_count`/`_sum`/`_max` plus
    /// the deterministic quantile gauges. Output is sorted by name and
    /// stable for a given set of values.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Render every instrument as a single JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, sum, max,
    /// p50, p95, p99, buckets: [...]}}}`. Key order is sorted, so the
    /// output is stable.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// An immutable copy of a registry's instruments: what a shard worker
/// writes to disk and what the supervisor merges.
///
/// Merging is exact, not approximate: counters add (so one
/// `obs_events_dropped` total survives the merge), histogram bucket
/// vectors add bin-wise, and quantiles are recomputed from the merged
/// buckets — identical to what a single registry fed all the
/// observations would report, because quantiles are defined as bucket
/// bounds ([`Histogram::quantile_ns`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Fold `other` into this snapshot: counters add, histograms merge
    /// bin-wise ([`Histogram::merge`]).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Prometheus-style text, same layout as
    /// [`MetricsRegistry::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            let _ = writeln!(out, "{base}_count{labels} {}", h.count);
            let _ = writeln!(out, "{base}_sum{labels} {}", h.sum);
            let _ = writeln!(out, "{base}_max{labels} {}", h.max);
            let _ = writeln!(out, "{base}_p50{labels} {}", h.quantile_ns(0.50));
            let _ = writeln!(out, "{base}_p95{labels} {}", h.quantile_ns(0.95));
            let _ = writeln!(out, "{base}_p99{labels} {}", h.quantile_ns(0.99));
        }
        out
    }

    /// The JSON object form, byte-identical to what
    /// [`MetricsRegistry::render_json`] produces for the same values.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                json_string(name),
                h.count,
                h.sum,
                h.max,
                h.quantile_ns(0.50),
                h.quantile_ns(0.95),
                h.quantile_ns(0.99),
            );
            for (j, n) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{n}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parse the exact JSON shape [`MetricsSnapshot::render_json`]
    /// emits (as written by `wsitool … --metrics-out` in JSON mode and
    /// by shard workers). The derived `p50`/`p95`/`p99` fields are
    /// accepted and discarded — quantiles are always recomputed from
    /// the bucket vector, so a snapshot round-trips bit-identically.
    ///
    /// Returns `None` on any structural mismatch; this is a recovery
    /// path for our own files, not a general JSON parser.
    pub fn parse_json(src: &str) -> Option<MetricsSnapshot> {
        let mut p = Parser { bytes: src.as_bytes(), at: 0 };
        let snapshot = p.snapshot()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return None;
        }
        Some(snapshot)
    }
}

/// Cursor over the byte form of a snapshot JSON document.
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn eat(&mut self, token: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&token) {
            self.at += 1;
            Some(())
        } else {
            None
        }
    }

    /// True (and consumed) when the next non-space byte is `token`.
    fn peek_eat(&mut self, token: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&token) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match *self.bytes.get(self.at)? {
                b'"' => {
                    self.at += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.at += 1;
                    match *self.bytes.get(self.at)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.at + 1..self.at + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.at += 4;
                        }
                        _ => return None,
                    }
                    self.at += 1;
                }
                _ => {
                    // Advance one whole UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.at..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.at;
        while self.bytes.get(self.at).is_some_and(u8::is_ascii_digit) {
            self.at += 1;
        }
        if self.at == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()?
            .parse()
            .ok()
    }

    fn key(&mut self, want: &str) -> Option<()> {
        let got = self.string()?;
        if got != want {
            return None;
        }
        self.eat(b':')
    }

    fn snapshot(&mut self) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::default();
        self.eat(b'{')?;
        self.key("counters")?;
        self.eat(b'{')?;
        if !self.peek_eat(b'}') {
            loop {
                let name = self.string()?;
                self.eat(b':')?;
                let value = self.number()?;
                snap.counters.insert(name, value);
                if self.peek_eat(b'}') {
                    break;
                }
                self.eat(b',')?;
            }
        }
        self.eat(b',')?;
        self.key("histograms")?;
        self.eat(b'{')?;
        if !self.peek_eat(b'}') {
            loop {
                let name = self.string()?;
                self.eat(b':')?;
                snap.histograms.insert(name, self.histogram()?);
                if self.peek_eat(b'}') {
                    break;
                }
                self.eat(b',')?;
            }
        }
        self.eat(b'}')?;
        Some(snap)
    }

    fn histogram(&mut self) -> Option<Histogram> {
        let mut h = Histogram::default();
        self.eat(b'{')?;
        self.key("count")?;
        h.count = self.number()?;
        self.eat(b',')?;
        self.key("sum")?;
        h.sum = self.number()?;
        self.eat(b',')?;
        self.key("max")?;
        h.max = self.number()?;
        for q in ["p50", "p95", "p99"] {
            self.eat(b',')?;
            self.key(q)?;
            let _ = self.number()?; // derived; recomputed from buckets
        }
        self.eat(b',')?;
        self.key("buckets")?;
        self.eat(b'[')?;
        for (i, bucket) in h.buckets.iter_mut().enumerate() {
            if i > 0 {
                self.eat(b',')?;
            }
            *bucket = self.number()?;
        }
        self.eat(b']')?;
        self.eat(b'}')?;
        Some(h)
    }
}

/// Split `phase_generate_ns{server="Metro"}` into
/// (`phase_generate_ns`, `{server="Metro"}`) so histogram suffixes
/// (`_count`, `_p95`, ...) attach to the base name, not after the
/// label set.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let reg = MetricsRegistry::new();
        reg.inc("zeta_total");
        reg.add("alpha_total", 5);
        reg.inc("alpha_total");
        assert_eq!(reg.counter("alpha_total"), 6);
        assert_eq!(reg.counter("missing"), 0);
        let text = reg.render_prometheus();
        let alpha = text.find("alpha_total 6").expect("alpha rendered");
        let zeta = text.find("zeta_total 1").expect("zeta rendered");
        assert!(alpha < zeta, "sorted order:\n{text}");
    }

    #[test]
    fn histogram_buckets_quantiles_and_overflow() {
        let mut h = Histogram::default();
        for v in [500, 1_000, 3_000, 1_000_000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 2); // 500 and 1_000 both <= 1µs bound
        assert_eq!(*h.buckets.last().unwrap(), 1); // overflow bucket
        assert_eq!(h.quantile_ns(0.5), BUCKET_BOUNDS_NS[2]); // 3_000 <= 4µs
        assert_eq!(h.quantile_ns(1.0), h.max);
        assert_eq!(Histogram::default().quantile_ns(0.99), 0);
    }

    #[test]
    fn renders_are_stable_and_labels_split() {
        let reg = MetricsRegistry::new();
        reg.observe_ns("phase_generate_ns{server=\"Metro\"}", 2_000);
        reg.inc("cells_total");
        assert_eq!(reg.render_prometheus(), reg.render_prometheus());
        assert_eq!(reg.render_json(), reg.render_json());
        let text = reg.render_prometheus();
        assert!(
            text.contains("phase_generate_ns_count{server=\"Metro\"} 1"),
            "{text}"
        );
        let json = reg.render_json();
        assert!(json.contains("\"counters\":{\"cells_total\":1}"), "{json}");
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    /// The sharding edge case called out in ISSUE 6: observations
    /// split across per-shard registries, merged bucket-wise, must
    /// report p50/p95/p99 identical to one registry that saw every
    /// observation — including values that straddle bucket boundaries
    /// and land in the overflow bucket.
    #[test]
    fn split_registries_merge_to_single_process_quantiles() {
        let values: Vec<u64> = (0..500)
            .map(|i: u64| (i * i * 7919) % 9_000_000_000) // spans all buckets + overflow
            .chain([0, 1, 999, 1_000, 1_001, u64::MAX])
            .collect();

        let single = MetricsRegistry::new();
        let shards: Vec<MetricsRegistry> = (0..3).map(|_| MetricsRegistry::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.observe_ns("phase_ns", v);
            single.add("cells_total", 1);
            shards[i % 3].observe_ns("phase_ns", v);
            shards[i % 3].add("cells_total", 1);
        }
        // Skewed instruments: only some shards ever see them.
        single.add("obs_events_dropped", 7);
        shards[0].add("obs_events_dropped", 2);
        shards[2].add("obs_events_dropped", 5);
        single.observe_ns("rare_ns", 42);
        shards[1].observe_ns("rare_ns", 42);

        let mut merged = MetricsSnapshot::default();
        for shard in &shards {
            merged.merge(&shard.snapshot());
        }
        let want = single.snapshot();
        let got = merged.histograms.get("phase_ns").unwrap();
        let reference = want.histograms.get("phase_ns").unwrap();
        for q in [0.50, 0.95, 0.99] {
            assert_eq!(got.quantile_ns(q), reference.quantile_ns(q), "q={q}");
        }
        assert_eq!(merged, want); // buckets, counts, sums, max, counters
        assert_eq!(merged.render_json(), single.render_json());
        assert_eq!(merged.render_prometheus(), single.render_prometheus());
    }

    #[test]
    fn snapshot_json_round_trips_bit_identically() {
        let reg = MetricsRegistry::new();
        reg.observe_ns("phase_generate_ns{server=\"Metro\"}", 2_000);
        reg.observe_ns("phase_generate_ns{server=\"Metro\"}", u64::MAX);
        reg.add("cells_total", 11);
        reg.add("weird \"name\"\n", 1);
        let json = reg.render_json();
        let parsed = MetricsSnapshot::parse_json(&json).expect("own output parses");
        assert_eq!(parsed, reg.snapshot());
        assert_eq!(parsed.render_json(), json);
        assert_eq!(MetricsSnapshot::parse_json("{}"), None);
        assert_eq!(MetricsSnapshot::parse_json(&json[..json.len() - 1]), None);
        let empty = MetricsRegistry::new().render_json();
        assert_eq!(
            MetricsSnapshot::parse_json(&empty),
            Some(MetricsSnapshot::default())
        );
    }
}
