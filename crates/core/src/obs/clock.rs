//! Time sources for the telemetry layer.
//!
//! Instrumented campaigns must stay bit-identical to uninstrumented
//! ones, and instrumented *tests* must produce the same numbers at any
//! thread count. Both constraints land on the clock:
//!
//! * [`Clock::monotonic`] — real wall-clock durations from
//!   [`Instant`], for operator-facing runs. Values vary run to run,
//!   but they are *observe-only*: nothing downstream branches on them.
//! * [`Clock::virtual_seeded`] — a deterministic clock for tests. A
//!   span's duration is a pure function of `(seed, span key)`, exactly
//!   the idiom the fault plan uses for virtual slow-steps: the same
//!   span key always reports the same duration, regardless of thread
//!   interleaving, so histogram buckets are reproducible under `-j1`
//!   and `-j8` alike.

use std::time::Instant;

/// FNV-1a over a byte string — same constants as
/// [`crate::doccache::content_hash`], kept private here so the clock
/// has no dependencies beyond `std`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A time source: either the process monotonic clock or a seeded
/// virtual clock whose span durations are pure functions of the span
/// key.
#[derive(Debug)]
pub enum Clock {
    /// Real monotonic time (durations measured with [`Instant`]).
    Monotonic {
        /// Process-relative origin; `elapsed_ns` is measured from here.
        origin: Instant,
    },
    /// Deterministic virtual time: span durations derive from
    /// `(seed, key)` and never consult the OS clock.
    Virtual {
        /// Seed mixed into every span-key hash.
        seed: u64,
    },
}

impl Clock {
    /// A real monotonic clock, origin = now.
    pub fn monotonic() -> Clock {
        Clock::Monotonic {
            origin: Instant::now(),
        }
    }

    /// A deterministic virtual clock for tests.
    pub fn virtual_seeded(seed: u64) -> Clock {
        Clock::Virtual { seed }
    }

    /// True when this clock reports real wall-clock time.
    pub fn is_monotonic(&self) -> bool {
        matches!(self, Clock::Monotonic { .. })
    }

    /// Nanoseconds elapsed since the clock was created. On the virtual
    /// clock this is always zero: virtual time only exists inside
    /// spans, which is all the determinism tests need.
    pub fn elapsed_ns(&self) -> u64 {
        match self {
            Clock::Monotonic { origin } => {
                u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Clock::Virtual { .. } => 0,
        }
    }

    /// Start timing a span identified by `key`. The key only matters
    /// on the virtual clock, where it *is* the duration (hashed with
    /// the seed); on the monotonic clock it is ignored.
    pub fn start_span(&self, key: &str) -> Stopwatch {
        match self {
            Clock::Monotonic { .. } => Stopwatch::Real(Instant::now()),
            Clock::Virtual { seed } => {
                let mut bytes = Vec::with_capacity(8 + key.len());
                bytes.extend_from_slice(&seed.to_le_bytes());
                bytes.extend_from_slice(key.as_bytes());
                // Map into [1µs, ~4.2ms) so buckets spread over several
                // histogram bins without ever looking like an outlier.
                let ns = 1_000 + fnv1a(&bytes) % 4_194_304;
                Stopwatch::Virtual(ns)
            }
        }
    }
}

/// A started span timer; [`Stopwatch::elapsed_ns`] reads it out.
#[derive(Debug, Clone, Copy)]
pub enum Stopwatch {
    /// Backed by a real [`Instant`].
    Real(Instant),
    /// A fixed virtual duration decided at `start_span` time.
    Virtual(u64),
}

impl Stopwatch {
    /// A standalone real stopwatch (used where no [`Clock`] is in
    /// scope, e.g. per-request timing inside the wire server).
    pub fn real() -> Stopwatch {
        Stopwatch::Real(Instant::now())
    }

    /// Nanoseconds since the span started (or the fixed virtual
    /// duration).
    pub fn elapsed_ns(&self) -> u64 {
        match self {
            Stopwatch::Real(start) => {
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Stopwatch::Virtual(ns) => *ns,
        }
    }

    /// Milliseconds since the span started, rounded down.
    pub fn elapsed_ms(&self) -> u64 {
        self.elapsed_ns() / 1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_spans_are_pure_functions_of_seed_and_key() {
        let clock = Clock::virtual_seeded(42);
        let a = clock.start_span("gen/Metro/Axis1/java.util.Date").elapsed_ns();
        let b = clock.start_span("gen/Metro/Axis1/java.util.Date").elapsed_ns();
        assert_eq!(a, b);
        let other = clock.start_span("gen/Metro/Axis2/java.util.Date").elapsed_ns();
        assert_ne!(a, other, "distinct keys should (almost surely) differ");
        let reseeded = Clock::virtual_seeded(43)
            .start_span("gen/Metro/Axis1/java.util.Date")
            .elapsed_ns();
        assert_ne!(a, reseeded, "distinct seeds should (almost surely) differ");
    }

    #[test]
    fn virtual_spans_stay_in_band() {
        let clock = Clock::virtual_seeded(7);
        for key in ["a", "b", "deploy/Metro/java.util.Date", ""] {
            let ns = clock.start_span(key).elapsed_ns();
            assert!((1_000..4_195_304).contains(&ns), "{key} -> {ns}");
        }
    }

    #[test]
    fn monotonic_clock_advances() {
        let clock = Clock::monotonic();
        let sw = clock.start_span("ignored");
        assert!(sw.elapsed_ns() <= clock.elapsed_ns().saturating_add(1_000_000_000));
        assert!(clock.is_monotonic());
        assert!(!Clock::virtual_seeded(1).is_monotonic());
    }
}
