//! Supervised multi-process campaign sharding: partitioning,
//! crash-recovering supervision, and deterministic merge.
//!
//! The paper's full matrix (22 024 candidate services → 79 629 tests)
//! runs as one monolithic sweep; one wedged or killed process loses
//! the whole run. This module splits a campaign across N worker
//! processes and makes the split invisible in the output:
//!
//! * **Partitioning** ([`ShardSpec`]): per server, the strided catalog
//!   entries are grouped into chunks of [`ENTRIES_PER_CHUNK`] and
//!   dealt round-robin — shard `k` of `n` owns chunk `c` iff
//!   `c % n == k`. Shards are disjoint and jointly exhaustive by
//!   construction (a property test pins this for arbitrary `n` and
//!   stride), and the grid depends only on the campaign
//!   configuration, never on which shard computes it.
//! * **Exactly-once claiming**: every shard journal carries the *same*
//!   campaign config hash (the shard spec is excluded from
//!   [`crate::Campaign::config_hash`]), each worker journals its own
//!   cells crash-safely, and a respawned worker resumes from its
//!   journal — already-classified cells are replayed, not re-executed.
//!   The merge refuses duplicate cells and verifies every deployed
//!   service has exactly one cell per client.
//! * **Supervision** ([`Supervisor`]): the parent polls worker exit
//!   status (crash = any nonzero exit, including `kill -9`) and
//!   journal growth (no append within the heartbeat window = hang →
//!   the worker is killed and treated as crashed), then respawns with
//!   capped exponential backoff up to a respawn budget.
//! * **Deterministic merge**: results are re-sorted into the canonical
//!   `(server, client, fqcn)` order the single-process campaign
//!   produces, metrics registries merge exactly (summed counters —
//!   one `obs_events_dropped` total — and bin-wise histogram merges,
//!   see [`crate::obs::MetricsSnapshot`]), fault reports add
//!   per-kind, and trace streams are renumbered into one seq-stable
//!   stream. The merged journal, tables and metrics are bit-identical
//!   to an uninterrupted single-process run regardless of shard count
//!   or injected worker deaths (E17).
//!
//! The one campaign feature that cannot shard is the per-client
//! circuit breaker: its decisions depend on the full preceding cell
//! stream of a client, which no shard sees. [`crate::Campaign`]
//! panics on the combination; `wsitool` rejects it as a usage error.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use wsinterop_frameworks::client::ClientId;
use wsinterop_frameworks::server::ServerId;

use crate::faults::FaultReport;
use crate::journal::{read_journal, JournalCell, JournalError, JournalWriter};
use crate::obs::{MetricsSnapshot, TraceEvent};
use crate::results::{CampaignResults, ServiceRecord};

/// Chunk granularity of the shard partition: each shard owns runs of
/// this many consecutive *strided* catalog entries, dealt round-robin.
/// Matches the in-process work-queue claim granularity, so a shard's
/// share has the same locality as a thread's.
pub const ENTRIES_PER_CHUNK: usize = 16;

/// One worker's identity in a partitioned campaign: shard `index` of
/// `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardSpec {
    /// This worker's shard index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the campaign is split into.
    pub count: usize,
}

impl ShardSpec {
    /// A validated shard spec.
    ///
    /// # Panics
    ///
    /// Panics when `count == 0` or `index >= count`.
    pub fn new(index: usize, count: usize) -> ShardSpec {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        ShardSpec { index, count }
    }

    /// Parses the CLI form `k/N` (e.g. `--shard 1/3`).
    pub fn parse(spec: &str) -> Result<ShardSpec, String> {
        let bad = || format!("invalid shard spec {spec:?}: expected k/N with 0 <= k < N");
        let (index, count) = spec.split_once('/').ok_or_else(bad)?;
        let index: usize = index.trim().parse().map_err(|_| bad())?;
        let count: usize = count.trim().parse().map_err(|_| bad())?;
        if count == 0 || index >= count {
            return Err(bad());
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether this shard owns the strided catalog entry at
    /// `strided_index` (the index into the already-strided entry
    /// sequence of one server, not into the raw catalog).
    pub fn owns(self, strided_index: usize) -> bool {
        (strided_index / ENTRIES_PER_CHUNK) % self.count == self.index
    }

    /// The chunk a strided entry index belongs to.
    pub fn chunk_of(strided_index: usize) -> usize {
        strided_index / ENTRIES_PER_CHUNK
    }

    fn file(self, dir: &Path, suffix: &str) -> PathBuf {
        dir.join(format!("shard-{}-of-{}.{suffix}", self.index, self.count))
    }

    /// This shard's write-ahead journal inside the shard directory.
    pub fn journal_file(self, dir: &Path) -> PathBuf {
        self.file(dir, "journal")
    }

    /// This shard's per-service TSV, written atomically on success.
    pub fn services_file(self, dir: &Path) -> PathBuf {
        self.file(dir, "services.tsv")
    }

    /// This shard's metrics-registry snapshot (JSON).
    pub fn metrics_file(self, dir: &Path) -> PathBuf {
        self.file(dir, "metrics.json")
    }

    /// This shard's trace stream (JSON lines).
    pub fn trace_file(self, dir: &Path) -> PathBuf {
        self.file(dir, "trace.jsonl")
    }

    /// The live worker's pid, written by the supervisor at each spawn
    /// (kill tests read it to SIGKILL a real process).
    pub fn pid_file(self, dir: &Path) -> PathBuf {
        self.file(dir, "pid")
    }

    /// The worker's combined stdout+stderr log, appended across
    /// respawns.
    pub fn log_file(self, dir: &Path) -> PathBuf {
        self.file(dir, "log")
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Why a shard merge was refused. Every variant is a hard error: a
/// merge must never paper over missing, duplicated or mismatched work.
#[derive(Debug)]
pub enum ShardError {
    /// A shard's journal could not be read.
    Journal(usize, JournalError),
    /// A shard's journal ends in a torn tail — its worker never exited
    /// cleanly, so its cells may be incomplete.
    TornJournal(usize),
    /// A shard's journal was written under a different campaign
    /// configuration.
    ConfigMismatch {
        /// The shard whose journal disagrees.
        shard: usize,
        /// The hash the other shards agree on.
        expected: u64,
        /// The hash this shard's journal carries.
        found: u64,
    },
    /// A shard finished without publishing its services TSV.
    MissingServices(usize),
    /// A shard's services TSV failed to parse.
    BadServices(usize, String),
    /// A shard's metrics snapshot is missing or failed to parse.
    BadMetrics(usize),
    /// Two shards (or one shard twice) produced the same test cell —
    /// the exactly-once invariant is broken.
    DuplicateCell {
        /// Hosting server of the duplicated cell.
        server: ServerId,
        /// Consuming client of the duplicated cell.
        client: ClientId,
        /// Class under test.
        fqcn: String,
    },
    /// Two shards deployed the same service.
    DuplicateService {
        /// Hosting server of the duplicated service.
        server: ServerId,
        /// Duplicated class.
        fqcn: String,
    },
    /// A deployed service is missing test cells (or has extras) after
    /// the merge.
    IncompleteService {
        /// Hosting server of the under-covered service.
        server: ServerId,
        /// The under-covered class.
        fqcn: String,
        /// Cells found across all shards.
        cells: usize,
        /// Cells required (one per client).
        expected: usize,
    },
    /// Test cells exist for a service no shard reported as deployed.
    StrayCells {
        /// Server the stray cells name.
        server: ServerId,
        /// Class the stray cells name.
        fqcn: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Journal(shard, e) => write!(f, "shard {shard}: {e}"),
            ShardError::TornJournal(shard) => write!(
                f,
                "shard {shard}: journal has a torn tail — its worker never finished"
            ),
            ShardError::ConfigMismatch {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard}: journal config hash 0x{found:016x} does not match \
                 0x{expected:016x}"
            ),
            ShardError::MissingServices(shard) => {
                write!(f, "shard {shard}: services TSV missing (worker incomplete?)")
            }
            ShardError::BadServices(shard, why) => {
                write!(f, "shard {shard}: bad services TSV: {why}")
            }
            ShardError::BadMetrics(shard) => {
                write!(f, "shard {shard}: metrics snapshot missing or unparsable")
            }
            ShardError::DuplicateCell {
                server,
                client,
                fqcn,
            } => write!(
                f,
                "duplicate cell {client} vs {server} for {fqcn}: exactly-once claiming violated"
            ),
            ShardError::DuplicateService { server, fqcn } => {
                write!(f, "duplicate service {fqcn} on {server}")
            }
            ShardError::IncompleteService {
                server,
                fqcn,
                cells,
                expected,
            } => write!(
                f,
                "service {fqcn} on {server} has {cells} of {expected} client cells"
            ),
            ShardError::StrayCells { server, fqcn } => write!(
                f,
                "test cells exist for {fqcn} on {server}, which no shard deployed"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

// --- deterministic merge --------------------------------------------

/// Re-sorts results into the order the single-process campaign emits:
/// services by `(server, fqcn)`, tests by `(server, client, fqcn)`.
///
/// This reproduces the unsharded order exactly because the campaign
/// already normalizes within each server phase (deploys sorted by
/// fqcn, tests by `(client, fqcn)`) and processes servers in
/// [`ServerId`] declaration order.
pub fn canonical_sort(results: &mut CampaignResults) {
    results.services.sort_by(|a, b| {
        (a.server, a.fqcn.as_str()).cmp(&(b.server, b.fqcn.as_str()))
    });
    results.tests.sort_by(|a, b| {
        (a.server, a.client, a.fqcn.as_str()).cmp(&(b.server, b.client, b.fqcn.as_str()))
    });
}

/// Merges per-shard results into one canonical [`CampaignResults`] —
/// the in-process half of the merge contract (the process-level half
/// is [`merge_shard_dir`]).
pub fn merge_results(parts: impl IntoIterator<Item = CampaignResults>) -> CampaignResults {
    let mut merged = CampaignResults::default();
    for part in parts {
        merged.services.extend(part.services);
        merged.tests.extend(part.tests);
    }
    canonical_sort(&mut merged);
    merged
}

/// Merges per-shard fault reports ([`FaultReport::merge`]); `None`
/// when `parts` is empty.
pub fn merge_reports(parts: impl IntoIterator<Item = FaultReport>) -> Option<FaultReport> {
    let mut iter = parts.into_iter();
    let mut merged = iter.next()?;
    for part in iter {
        merged.merge(&part);
    }
    Some(merged)
}

/// Parses the `services_tsv` export back into records (the shard
/// workers' deploy-phase hand-off; deploys are not journaled because
/// resume recomputes them).
pub fn parse_services_tsv(tsv: &str) -> Result<Vec<ServiceRecord>, String> {
    const HEADER: &str = "server\tclass\tdeployed\twsi_conformant\tdescription_warning";
    let mut lines = tsv.lines();
    if lines.next() != Some(HEADER) {
        return Err("missing services TSV header".to_string());
    }
    let server_by_name: BTreeMap<&str, ServerId> = [
        ServerId::Metro,
        ServerId::JBossWs,
        ServerId::WcfDotNet,
        ServerId::Axis2Java,
    ]
    .into_iter()
    .map(|id| (id.name(), id))
    .collect();
    let parse_bool = |field: &str| match field {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("bad boolean {other:?}")),
    };
    let mut services = Vec::new();
    for (i, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split('\t').collect();
        let [server, fqcn, deployed, wsi, warning] = fields.as_slice() else {
            return Err(format!("line {}: expected 5 fields", i + 2));
        };
        let server = *server_by_name
            .get(server)
            .ok_or_else(|| format!("line {}: unknown server {server:?}", i + 2))?;
        services.push(ServiceRecord {
            server,
            fqcn: fqcn.to_string(),
            deployed: parse_bool(deployed).map_err(|e| format!("line {}: {e}", i + 2))?,
            wsi_conformant: match *wsi {
                "-" => None,
                other => Some(parse_bool(other).map_err(|e| format!("line {}: {e}", i + 2))?),
            },
            description_warning: parse_bool(warning)
                .map_err(|e| format!("line {}: {e}", i + 2))?,
        });
    }
    Ok(services)
}

/// Everything [`merge_shard_dir`] recovered from a shard directory.
#[derive(Debug)]
pub struct MergedRun {
    /// Canonically-ordered merged results.
    pub results: CampaignResults,
    /// Canonically-ordered merged journal cells (one per test).
    pub cells: Vec<JournalCell>,
    /// The campaign config hash all shard journals agree on.
    pub config_hash: u64,
    /// Cells recovered per shard, in shard order.
    pub shard_cells: Vec<usize>,
}

/// Reads and merges the `count` shard journals + services TSVs in
/// `dir`: verifies they agree on the config hash, refuses torn
/// journals and duplicate cells/services, and returns canonically
/// sorted results. Call [`verify_exactly_once`] afterwards to check
/// coverage against the client count.
pub fn merge_shard_dir(dir: &Path, count: usize) -> Result<MergedRun, ShardError> {
    let mut cells: Vec<JournalCell> = Vec::new();
    let mut services: Vec<ServiceRecord> = Vec::new();
    let mut config_hash: Option<u64> = None;
    let mut shard_cells = Vec::with_capacity(count);
    for k in 0..count {
        let spec = ShardSpec::new(k, count);
        let read = read_journal(&spec.journal_file(dir)).map_err(|e| ShardError::Journal(k, e))?;
        if read.torn() {
            return Err(ShardError::TornJournal(k));
        }
        match config_hash {
            None => config_hash = Some(read.config_hash),
            Some(expected) if expected != read.config_hash => {
                return Err(ShardError::ConfigMismatch {
                    shard: k,
                    expected,
                    found: read.config_hash,
                });
            }
            Some(_) => {}
        }
        shard_cells.push(read.cells.len());
        cells.extend(read.cells);
        let tsv = fs::read_to_string(spec.services_file(dir))
            .map_err(|_| ShardError::MissingServices(k))?;
        services.extend(parse_services_tsv(&tsv).map_err(|e| ShardError::BadServices(k, e))?);
    }

    let mut seen_cells = BTreeSet::new();
    for cell in &cells {
        let key = (cell.record.server, cell.record.client, cell.record.fqcn.clone());
        if !seen_cells.insert(key) {
            return Err(ShardError::DuplicateCell {
                server: cell.record.server,
                client: cell.record.client,
                fqcn: cell.record.fqcn.clone(),
            });
        }
    }
    let mut seen_services = BTreeSet::new();
    for s in &services {
        if !seen_services.insert((s.server, s.fqcn.clone())) {
            return Err(ShardError::DuplicateService {
                server: s.server,
                fqcn: s.fqcn.clone(),
            });
        }
    }

    cells.sort_by(|a, b| {
        (a.record.server, a.record.client, a.record.fqcn.as_str()).cmp(&(
            b.record.server,
            b.record.client,
            b.record.fqcn.as_str(),
        ))
    });
    let mut results = CampaignResults {
        services,
        tests: cells.iter().map(|c| c.record.clone()).collect(),
    };
    canonical_sort(&mut results);
    Ok(MergedRun {
        results,
        cells,
        config_hash: config_hash.unwrap_or(0),
        shard_cells,
    })
}

/// Verifies the exactly-once contract over a merged run: every
/// deployed service has exactly `clients` test cells, and no cell
/// names a service nobody deployed. (Duplicate cells were already
/// refused during [`merge_shard_dir`].)
pub fn verify_exactly_once(merged: &MergedRun, clients: usize) -> Result<(), ShardError> {
    let mut per_service: BTreeMap<(ServerId, &str), usize> = BTreeMap::new();
    for t in &merged.results.tests {
        *per_service.entry((t.server, t.fqcn.as_str())).or_insert(0) += 1;
    }
    for s in &merged.results.services {
        if !s.deployed {
            continue;
        }
        let cells = per_service.remove(&(s.server, s.fqcn.as_str())).unwrap_or(0);
        if cells != clients {
            return Err(ShardError::IncompleteService {
                server: s.server,
                fqcn: s.fqcn.clone(),
                cells,
                expected: clients,
            });
        }
    }
    if let Some(((server, fqcn), _)) = per_service.into_iter().next() {
        return Err(ShardError::StrayCells {
            server,
            fqcn: fqcn.to_string(),
        });
    }
    Ok(())
}

/// Writes the canonical merged journal: a fresh journal at `path`
/// pinned to `config_hash`, with `cells` appended in the (already
/// canonical) order given. Byte-stable for a given cell sequence.
pub fn write_merged_journal(
    path: &Path,
    config_hash: u64,
    cells: &[JournalCell],
) -> Result<(), JournalError> {
    let writer = JournalWriter::create(path, config_hash, None)?;
    for cell in cells {
        writer.append(cell);
    }
    if let Some(e) = writer.take_error() {
        return Err(JournalError::Io(e));
    }
    Ok(())
}

/// Reads and merges the `count` per-shard metrics snapshots in `dir`
/// (summed counters — including one `obs_events_dropped` total — and
/// bin-wise histogram merges).
pub fn merge_metrics_files(dir: &Path, count: usize) -> Result<MetricsSnapshot, ShardError> {
    let mut merged = MetricsSnapshot::default();
    for k in 0..count {
        let spec = ShardSpec::new(k, count);
        let json = fs::read_to_string(spec.metrics_file(dir))
            .map_err(|_| ShardError::BadMetrics(k))?;
        let snapshot =
            MetricsSnapshot::parse_json(json.trim_end()).ok_or(ShardError::BadMetrics(k))?;
        merged.merge(&snapshot);
    }
    Ok(merged)
}

/// Concatenates per-shard trace streams into one seq-stable stream:
/// events keep shard-file order, seq numbers are reassigned
/// monotonically from 0. Missing shard files are skipped (a shard
/// only writes a trace when tracing is enabled). Returns the number
/// of events written.
pub fn merge_trace_files(inputs: &[PathBuf], out: &Path) -> std::io::Result<u64> {
    let mut file = File::create(out)?;
    let mut seq = 0u64;
    for input in inputs {
        let reader = match File::open(input) {
            Ok(f) => BufReader::new(f),
            Err(_) => continue,
        };
        for line in reader.lines() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let Some(mut event) = TraceEvent::from_json_line(&line) else {
                continue;
            };
            event.seq = seq;
            seq += 1;
            writeln!(file, "{}", event.to_json_line())?;
        }
    }
    file.sync_all()?;
    Ok(seq)
}

// --- supervision ----------------------------------------------------

/// Supervision knobs; the defaults match the CLI defaults documented
/// in DESIGN.md §12.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Respawns allowed *per worker* beyond its first spawn before the
    /// supervisor gives up on that shard.
    pub max_respawns: usize,
    /// A worker whose journal has not grown for this long is declared
    /// hung, killed and treated as crashed.
    pub heartbeat: Duration,
    /// Base respawn backoff; respawn `r` of a worker waits
    /// `base << (r - 1)`, capped at [`SupervisorConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on the exponential respawn backoff.
    pub backoff_cap: Duration,
    /// Supervision poll interval (exit status + journal size checks).
    pub poll: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_respawns: 3,
            heartbeat: Duration::from_secs(30),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            poll: Duration::from_millis(20),
        }
    }
}

/// What a supervision run did, for the `shards:` accounting line and
/// BENCH_campaign.json.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisionOutcome {
    /// Workers respawned after a crash or detected hang.
    pub respawns: usize,
    /// Crashes that were detected as hangs (heartbeat expiry), a
    /// subset of the events counted by `respawns` + `gave_up`.
    pub hung_workers: usize,
    /// Journal cells already safe at the moment of each respawn — work
    /// the replacement worker replays instead of re-executing.
    pub reclaimed_cells: usize,
    /// Distinct partition chunks those reclaimed cells span (requires
    /// a chunk index, see [`Supervisor::with_chunk_index`]).
    pub chunks_reclaimed: usize,
    /// Shards whose respawn budget ran out, in shard order. Empty on
    /// a fully successful run.
    pub gave_up: Vec<usize>,
    /// Total spawns per shard (1 = never respawned), in shard order.
    pub worker_attempts: Vec<usize>,
}

impl SupervisionOutcome {
    /// Every shard eventually completed.
    pub fn all_completed(&self) -> bool {
        self.gave_up.is_empty()
    }

    /// At least one worker died and was successfully recovered.
    pub fn recovered(&self) -> bool {
        self.respawns > 0
    }
}

/// Maps a journaled cell's `(server, fqcn)` back to its strided entry
/// index, for the re-claimed-chunk accounting.
type ChunkIndexFn<'a> = Box<dyn Fn(ServerId, &str) -> Option<usize> + 'a>;

/// Per-worker supervision state.
struct WorkerState {
    spec: ShardSpec,
    child: Option<Child>,
    /// Spawns so far (first spawn included).
    attempts: usize,
    done: bool,
    gave_up: bool,
    next_spawn: Instant,
    last_journal_len: u64,
    last_progress: Instant,
}

/// The supervising parent: spawns one worker process per shard,
/// detects crashes and hangs, respawns with capped exponential
/// backoff, and accounts what the respawns re-claimed.
///
/// The supervisor is command-agnostic: the spawner callback builds the
/// [`Command`] for a given shard and attempt number, so tests can
/// supervise anything from the real `wsitool` binary to a script that
/// always dies. Worker stdio is redirected to the shard's log file;
/// the pid of every live worker is published in its pid file so chaos
/// tests can `kill -9` real processes.
pub struct Supervisor<'a> {
    dir: PathBuf,
    count: usize,
    config: SupervisorConfig,
    spawn: Box<dyn Fn(ShardSpec, usize) -> Command + 'a>,
    chunk_index: Option<ChunkIndexFn<'a>>,
}

impl<'a> Supervisor<'a> {
    /// A supervisor over `count` shards working in `dir`, spawning
    /// workers via `spawn(shard, attempt)` (attempt 0 is the first
    /// spawn — fault-injection flags usually apply only there).
    pub fn new(
        dir: impl Into<PathBuf>,
        count: usize,
        spawn: impl Fn(ShardSpec, usize) -> Command + 'a,
    ) -> Supervisor<'a> {
        assert!(count > 0, "shard count must be positive");
        Supervisor {
            dir: dir.into(),
            count,
            config: SupervisorConfig::default(),
            spawn: Box::new(spawn),
            chunk_index: None,
        }
    }

    /// Overrides the supervision knobs.
    #[must_use]
    pub fn with_config(mut self, config: SupervisorConfig) -> Supervisor<'a> {
        self.config = config;
        self
    }

    /// Attaches a chunk index — maps a journaled cell's
    /// `(server, fqcn)` to its strided entry index — enabling the
    /// `chunks_reclaimed` accounting.
    #[must_use]
    pub fn with_chunk_index(
        mut self,
        index: impl Fn(ServerId, &str) -> Option<usize> + 'a,
    ) -> Supervisor<'a> {
        self.chunk_index = Some(Box::new(index));
        self
    }

    /// Runs all workers to completion (or to their respawn budgets)
    /// and returns the accounting. I/O errors in the supervision
    /// machinery itself (spawn failure, unpollable child) abort the
    /// run after killing every live worker.
    pub fn run(&self) -> std::io::Result<SupervisionOutcome> {
        fs::create_dir_all(&self.dir)?;
        let now = Instant::now();
        let mut states: Vec<WorkerState> = (0..self.count)
            .map(|k| WorkerState {
                spec: ShardSpec::new(k, self.count),
                child: None,
                attempts: 0,
                done: false,
                gave_up: false,
                next_spawn: now,
                last_journal_len: 0,
                last_progress: now,
            })
            .collect();
        let result = self.drive(&mut states);
        if result.is_err() {
            for state in &mut states {
                if let Some(child) = &mut state.child {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
        result
    }

    fn drive(&self, states: &mut [WorkerState]) -> std::io::Result<SupervisionOutcome> {
        let mut outcome = SupervisionOutcome::default();
        loop {
            let mut all_settled = true;
            for state in states.iter_mut() {
                if state.done || state.gave_up {
                    continue;
                }
                all_settled = false;
                match &mut state.child {
                    None => {
                        if Instant::now() >= state.next_spawn {
                            self.spawn_worker(state)?;
                        }
                    }
                    Some(child) => match child.try_wait()? {
                        Some(status) if status.success() => {
                            state.done = true;
                            state.child = None;
                            let _ = fs::remove_file(state.spec.pid_file(&self.dir));
                        }
                        Some(_) => {
                            // Crash: nonzero exit or a signal (SIGKILL
                            // reports no exit code at all).
                            state.child = None;
                            self.note_crash(state, &mut outcome);
                        }
                        None => {
                            let len = fs::metadata(state.spec.journal_file(&self.dir))
                                .map(|m| m.len())
                                .unwrap_or(0);
                            if len != state.last_journal_len {
                                state.last_journal_len = len;
                                state.last_progress = Instant::now();
                            } else if state.last_progress.elapsed() >= self.config.heartbeat {
                                // Hang: alive but the journal stopped
                                // growing. Kill and treat as a crash.
                                let _ = child.kill();
                                let _ = child.wait();
                                state.child = None;
                                outcome.hung_workers += 1;
                                self.note_crash(state, &mut outcome);
                            }
                        }
                    },
                }
            }
            if all_settled {
                break;
            }
            std::thread::sleep(self.config.poll);
        }
        outcome.gave_up = states
            .iter()
            .filter(|s| s.gave_up)
            .map(|s| s.spec.index)
            .collect();
        outcome.worker_attempts = states.iter().map(|s| s.attempts).collect();
        Ok(outcome)
    }

    fn spawn_worker(&self, state: &mut WorkerState) -> std::io::Result<()> {
        let mut cmd = (self.spawn)(state.spec, state.attempts);
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(state.spec.log_file(&self.dir))?;
        cmd.stdout(Stdio::from(log.try_clone()?))
            .stderr(Stdio::from(log))
            .stdin(Stdio::null());
        let child = cmd.spawn()?;
        fs::write(state.spec.pid_file(&self.dir), child.id().to_string())?;
        state.attempts += 1;
        state.last_journal_len = fs::metadata(state.spec.journal_file(&self.dir))
            .map(|m| m.len())
            .unwrap_or(0);
        state.last_progress = Instant::now();
        state.child = Some(child);
        Ok(())
    }

    /// A worker died without finishing: either schedule a respawn
    /// (with backoff, accounting what its journal already holds) or
    /// exhaust its budget.
    fn note_crash(&self, state: &mut WorkerState, outcome: &mut SupervisionOutcome) {
        if state.attempts > self.config.max_respawns {
            state.gave_up = true;
            return;
        }
        outcome.respawns += 1;
        if let Ok(read) = read_journal(&state.spec.journal_file(&self.dir)) {
            outcome.reclaimed_cells += read.cells.len();
            if let Some(chunk_index) = &self.chunk_index {
                let chunks: BTreeSet<(ServerId, usize)> = read
                    .cells
                    .iter()
                    .filter_map(|cell| {
                        chunk_index(cell.record.server, &cell.record.fqcn)
                            .map(|idx| (cell.record.server, ShardSpec::chunk_of(idx)))
                    })
                    .collect();
                outcome.chunks_reclaimed += chunks.len();
            }
        }
        let respawn_number = state.attempts as u32; // 1 for the first respawn
        let backoff = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (respawn_number - 1).min(16))
            .min(self.config.backoff_cap);
        state.next_spawn = Instant::now() + backoff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parse_and_display() {
        let spec = ShardSpec::parse("1/3").unwrap();
        assert_eq!(spec, ShardSpec::new(1, 3));
        assert_eq!(spec.to_string(), "1/3");
        assert!(ShardSpec::parse("3/3").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("1-3").is_err());
        assert!(ShardSpec::parse("x/3").is_err());
    }

    #[test]
    fn ownership_is_chunked_round_robin() {
        let spec = ShardSpec::new(1, 3);
        assert!(!spec.owns(0)); // chunk 0 → shard 0
        assert!(spec.owns(ENTRIES_PER_CHUNK)); // chunk 1 → shard 1
        assert!(!spec.owns(2 * ENTRIES_PER_CHUNK)); // chunk 2 → shard 2
        assert!(spec.owns(4 * ENTRIES_PER_CHUNK)); // chunk 4 → shard 1
        let one = ShardSpec::new(0, 1);
        assert!((0..1000).all(|j| one.owns(j)));
    }

    #[test]
    fn services_tsv_round_trips() {
        let results = CampaignResults {
            services: vec![
                ServiceRecord {
                    server: ServerId::Metro,
                    fqcn: "a.B".into(),
                    deployed: true,
                    wsi_conformant: Some(false),
                    description_warning: true,
                },
                ServiceRecord {
                    server: ServerId::WcfDotNet,
                    fqcn: "c.D".into(),
                    deployed: false,
                    wsi_conformant: None,
                    description_warning: false,
                },
            ],
            tests: Vec::new(),
        };
        let tsv = crate::export::services_tsv(&results);
        assert_eq!(parse_services_tsv(&tsv).unwrap(), results.services);
        assert!(parse_services_tsv("nonsense").is_err());
        assert!(parse_services_tsv(&tsv.replace("true", "yes")).is_err());
    }
}
