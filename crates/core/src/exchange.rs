//! The Communication and Execution steps (steps 4–5 of the paper's
//! Fig. 1) — the paper's declared **future work**, implemented here as
//! an extension.
//!
//! For a test that survived the three static steps, this module drives
//! an actual message exchange over the workspace's SOAP 1.1 layer:
//!
//! 1. the *client side* builds a doc/literal request from **its own**
//!    parse of the WSDL (exactly what a generated stub does),
//! 2. the *server side* parses the request against its published
//!    description and produces the echo response,
//! 3. the client unwraps the response and checks the echoed value.
//!
//! Because both endpoints work from the same document, a service that
//! passed the static steps should complete the exchange — and the
//! operation-less documents demonstrably cannot, which is the paper's
//! argument for flagging them at generation time.

use std::fmt;

use wsinterop_wsdl::de::from_xml_str;
use wsinterop_wsdl::{soap, Definitions};
use wsinterop_xml::writer::{write_document, WriteOptions};

/// Outcome of one simulated message exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeOutcome {
    /// Request and response were exchanged and the echoed value
    /// matched.
    Completed {
        /// Round-trip payload size in bytes (request + response).
        bytes_on_wire: usize,
    },
    /// The client could not even form a request from the description.
    ClientCannotInvoke {
        /// Failure detail.
        reason: String,
    },
    /// The server could not process the request (returned a fault).
    ServerFault {
        /// Fault reason.
        reason: String,
    },
    /// The response did not carry the expected echo.
    EchoMismatch {
        /// What was sent.
        sent: String,
        /// What came back.
        received: String,
    },
    /// A message violated the WS-I message-level profile.
    NonConformantMessage {
        /// `"request"` or `"response"`.
        side: &'static str,
        /// First violated assertion.
        detail: String,
    },
    /// The transport lost the message (e.g. an injected dropped
    /// response in the chaos campaign, or a timeout).
    TransportError {
        /// Failure detail.
        reason: String,
    },
}

impl ExchangeOutcome {
    /// `true` for [`ExchangeOutcome::Completed`].
    pub fn completed(&self) -> bool {
        matches!(self, ExchangeOutcome::Completed { .. })
    }
}

impl fmt::Display for ExchangeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeOutcome::Completed { bytes_on_wire } => {
                write!(f, "exchange completed ({bytes_on_wire} bytes on the wire)")
            }
            ExchangeOutcome::ClientCannotInvoke { reason } => {
                write!(f, "client cannot invoke: {reason}")
            }
            ExchangeOutcome::ServerFault { reason } => write!(f, "server fault: {reason}"),
            ExchangeOutcome::EchoMismatch { sent, received } => {
                write!(f, "echo mismatch: sent {sent:?}, received {received:?}")
            }
            ExchangeOutcome::NonConformantMessage { side, detail } => {
                write!(f, "non-conformant {side} message: {detail}")
            }
            ExchangeOutcome::TransportError { reason } => {
                write!(f, "transport error: {reason}")
            }
        }
    }
}

/// Simulates the server's Execution step: parse the request envelope
/// against the published description and produce the echo response (or
/// a fault envelope).
pub fn serve_echo(defs: &Definitions, request_xml: &str) -> String {
    let compact = WriteOptions::compact();
    let payload = match soap::payload(request_xml) {
        Ok(el) => el,
        Err(e) => {
            return write_document(&soap::fault("Client", &e.to_string()), &compact);
        }
    };
    let operation = payload.name().local_part().to_string();
    if defs.find_operation(&operation).is_none() {
        return write_document(
            &soap::fault("Client", &format!("no such operation `{operation}`")),
            &compact,
        );
    }
    // Echo the full payload element (structured content included) under
    // the operation's response wrapper.
    let request_value = payload.child_elements().next().cloned();
    match build_echo_response(defs, &operation, request_value.as_ref()) {
        Ok(doc) => write_document(&doc, &compact),
        Err(e) => write_document(&soap::fault("Server", &e), &compact),
    }
}

/// First message-profile failure in a serialized envelope, if any.
pub(crate) fn first_message_violation(xml: &str) -> Option<String> {
    let report = wsinterop_wsi::message::check_message(xml);
    let first = report.failures().next();
    first.map(|f| format!("[{}] {}", f.assertion, f.detail))
}

fn build_echo_response(
    defs: &Definitions,
    operation: &str,
    request_value: Option<&wsinterop_xml::Element>,
) -> Result<wsinterop_xml::Document, String> {
    use wsinterop_wsdl::PartKind;

    let op = defs
        .find_operation(operation)
        .ok_or_else(|| format!("no such operation `{operation}`"))?;
    let output = op
        .output
        .as_ref()
        .ok_or_else(|| format!("operation `{operation}` is one-way"))?;
    let message = defs
        .message(&output.local)
        .ok_or_else(|| format!("missing message `{}`", output.local))?;
    let part = message.parts.first().ok_or("output message has no parts")?;
    let PartKind::Element(wrapper_ref) = &part.kind else {
        return Err("type-style output parts are not supported".to_string());
    };
    let wrapper_decl = defs
        .resolve_part_element(part)
        .ok_or_else(|| format!("unresolved wrapper `{}`", wrapper_ref.local))?;
    let return_name = wrapper_decl
        .inline
        .as_ref()
        .and_then(|inline| match inline.content.particles.first() {
            Some(wsinterop_xsd::Particle::Element(el)) => Some(el.name.clone()),
            _ => None,
        })
        .unwrap_or_else(|| "return".to_string());

    let mut wrapper = wsinterop_xml::Element::new(&wrapper_decl.name)
        .in_ns(wrapper_ref.ns_uri.clone());
    wrapper.declare_ns(None, &wrapper_ref.ns_uri);
    if let Some(value) = request_value {
        // Re-root the echoed value under the response's element name,
        // preserving all structured content.
        let mut echoed = value.clone();
        let renamed = wsinterop_xml::Element::new(&return_name);
        let mut rebuilt = renamed;
        for attr in echoed.attrs() {
            rebuilt.set_attr(&attr.name().to_string(), attr.value());
        }
        for child in echoed.children_mut().drain(..) {
            rebuilt.push_node(child);
        }
        wrapper.push_element(rebuilt);
    }
    Ok(soap::envelope(wrapper))
}

/// Runs the full Communication + Execution cycle for one operation of
/// a published WSDL, echoing `value`.
pub fn exchange(wsdl_xml: &str, operation: &str, value: &str) -> ExchangeOutcome {
    exchange_with_faults(wsdl_xml, operation, value, None)
}

/// [`exchange`] with an optional injected wire fault (the chaos
/// campaign's Communication-step disruption): the request can be
/// truncated or namespace-mangled in transit, or the response dropped.
pub fn exchange_with_faults(
    wsdl_xml: &str,
    operation: &str,
    value: &str,
    fault: Option<crate::faults::WireFault>,
) -> ExchangeOutcome {
    use crate::faults::WireFault;

    // Client side: independent parse of the published description.
    let client_defs = match from_xml_str(wsdl_xml) {
        Ok(defs) => defs,
        Err(e) => {
            return ExchangeOutcome::ClientCannotInvoke {
                reason: e.to_string(),
            }
        }
    };
    let request = match soap::request(&client_defs, operation, value) {
        Ok(doc) => write_document(&doc, &WriteOptions::compact()),
        Err(e) => {
            return ExchangeOutcome::ClientCannotInvoke {
                reason: e.to_string(),
            }
        }
    };

    // The injected transit damage happens *after* the stub serialized a
    // correct request — it models the wire, not the client.
    let request = match fault {
        Some(WireFault::TruncateEnvelope) => {
            let mut cut = request.len() * 3 / 5;
            while cut > 0 && !request.is_char_boundary(cut) {
                cut -= 1;
            }
            request[..cut].to_string()
        }
        Some(WireFault::WrongNamespace) => request.replace(
            "http://schemas.xmlsoap.org/soap/envelope/",
            "http://schemas.xmlsoap.org/soap/envelope-tampered/",
        ),
        _ => request,
    };

    // Wire conformance: an untampered request must pass the WS-I
    // message profile. Tampered requests skip the check and go straight
    // to the server — the damage happened below the conformance
    // tooling.
    if fault.is_none() {
        if let Some(violation) = first_message_violation(&request) {
            return ExchangeOutcome::NonConformantMessage {
                side: "request",
                detail: violation,
            };
        }
    }

    // Server side: its own parse of the same document. A server that
    // cannot re-parse its own published description is reported as a
    // fault, never a crash.
    let server_defs = match from_xml_str(wsdl_xml) {
        Ok(defs) => defs,
        Err(e) => {
            return ExchangeOutcome::ServerFault {
                reason: format!("server cannot re-parse its own description: {e}"),
            }
        }
    };
    let response = serve_echo(&server_defs, &request);
    if fault == Some(WireFault::DropResponse) {
        return ExchangeOutcome::TransportError {
            reason: "response dropped in transit".to_string(),
        };
    }
    classify_response(&request, &response, value)
}

/// Runs the Communication + Execution cycle for a pre-serialized
/// request envelope whose first top-level argument is expected to echo
/// back as `expected` — the in-process leg of a fuzz case
/// ([`crate::fuzz`]). Unlike [`exchange`], the request is *given*, not
/// built from a probe value: the fuzz generator already serialized
/// adversarial structured content through [`soap::request_with_args`],
/// and this function only runs the wire-conformance gate, the server's
/// echo, and the shared response classifier over it.
pub fn exchange_generated(
    defs: &Definitions,
    request_xml: &str,
    expected: &str,
) -> ExchangeOutcome {
    if let Some(violation) = first_message_violation(request_xml) {
        return ExchangeOutcome::NonConformantMessage {
            side: "request",
            detail: violation,
        };
    }
    let response = serve_echo(defs, request_xml);
    classify_response(request_xml, &response, expected)
}

/// Client-side classification of a received response envelope — shared
/// verbatim between the in-process exchange and the loopback TCP
/// transport ([`crate::wire`]), which is what makes the two surveys
/// bit-identical (E15): both paths run exactly this code over exactly
/// the same envelope bytes.
pub fn classify_response(request: &str, response: &str, value: &str) -> ExchangeOutcome {
    if let Some(violation) = first_message_violation(response) {
        return ExchangeOutcome::NonConformantMessage {
            side: "response",
            detail: violation,
        };
    }
    if soap::is_fault(response) {
        let reason = soap::payload(response)
            .ok()
            .map(|f| f.text_content())
            .unwrap_or_default();
        return ExchangeOutcome::ServerFault { reason };
    }

    // Client side: unwrap the echoed value.
    match soap::unwrap_single_value(response) {
        Ok(received) if received == value => ExchangeOutcome::Completed {
            bytes_on_wire: request.len() + response.len(),
        },
        Ok(received) => ExchangeOutcome::EchoMismatch {
            sent: value.to_string(),
            received,
        },
        Err(e) => ExchangeOutcome::ServerFault {
            reason: e.to_string(),
        },
    }
}

/// Aggregate outcome of exchanging against every deployed service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeSurvey {
    /// Services whose echo roundtrip completed.
    pub completed: usize,
    /// Services a client cannot even invoke (no operations, or the
    /// description gives the stub nothing to build a request from).
    pub not_invocable: usize,
    /// Services whose server side faulted or mangled the echo.
    pub faulted: usize,
}

impl ExchangeSurvey {
    /// Total services surveyed.
    pub fn total(&self) -> usize {
        self.completed + self.not_invocable + self.faulted
    }

    /// Tallies per-site outcomes into the aggregate counts.
    pub fn tally<'a, I: IntoIterator<Item = &'a SurveySite>>(sites: I) -> ExchangeSurvey {
        let mut out = ExchangeSurvey::default();
        for site in sites {
            match site.outcome {
                ExchangeOutcome::Completed { .. } => out.completed += 1,
                ExchangeOutcome::ClientCannotInvoke { .. } => out.not_invocable += 1,
                _ => out.faulted += 1,
            }
        }
        out
    }
}

/// One surveyed deployment site and what its exchange produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurveySite {
    /// Owning server (Debug form of its [`ServerId`], e.g. `Metro`).
    ///
    /// [`ServerId`]: wsinterop_frameworks::server::ServerId
    pub server: String,
    /// Fully-qualified class name the echo service was generated from.
    pub fqcn: String,
    /// What the Communication + Execution cycle produced there.
    pub outcome: ExchangeOutcome,
}

/// The probe value every survey exchange echoes.
pub const SURVEY_PROBE: &str = "survey-probe";

/// Extracts the first port-type operation of a description, mirroring
/// what a generated stub would bind to. `None` means the client has
/// nothing to invoke.
pub fn first_survey_operation(wsdl_xml: &str) -> Option<String> {
    from_xml_str(wsdl_xml).ok().and_then(|defs| {
        defs.port_types
            .iter()
            .flat_map(|pt| pt.operations.iter())
            .next()
            .map(|op| op.name.clone())
    })
}

/// Runs the Communication + Execution cycle once against every
/// `stride`-th deployed service of every server, reporting the outcome
/// at each site. [`crate::wire::survey_tcp`] is the loopback-TCP
/// counterpart; E15 asserts the two are bit-identical.
pub fn survey_sites(stride: usize) -> Vec<SurveySite> {
    survey_sites_observed(stride, None)
}

/// [`survey_sites`] with an optional telemetry observer: each surveyed
/// site becomes one `exchange` phase span (outcome `completed`,
/// `fault`, or `cannot-invoke`). Observation never changes the survey —
/// the sites come out identical with or without an observer.
pub fn survey_sites_observed(stride: usize, obs: Option<&crate::obs::Obs>) -> Vec<SurveySite> {
    use crate::obs::TracePhase;
    use wsinterop_frameworks::server::{all_servers, DeployOutcome};

    let mut out = Vec::new();
    for server in all_servers() {
        let server_name = format!("{:?}", server.info().id);
        for entry in server.catalog().entries().iter().step_by(stride.max(1)) {
            let DeployOutcome::Deployed { wsdl_xml } = server.deploy(entry) else {
                continue;
            };
            let span = obs
                .map(|o| o.begin_phase(TracePhase::Exchange, server.info().id.name(), None, &entry.fqcn));
            let outcome = match first_survey_operation(&wsdl_xml) {
                None => ExchangeOutcome::ClientCannotInvoke {
                    reason: "no operations in the description".to_string(),
                },
                Some(op) => exchange(&wsdl_xml, &op, SURVEY_PROBE),
            };
            if let (Some(o), Some(span)) = (obs, span) {
                let label = match &outcome {
                    ExchangeOutcome::Completed { .. } => "completed",
                    ExchangeOutcome::ClientCannotInvoke { .. } => "cannot-invoke",
                    _ => "fault",
                };
                o.end_phase(
                    TracePhase::Exchange,
                    server.info().id.name(),
                    None,
                    &entry.fqcn,
                    label,
                    None,
                    0,
                    false,
                    span,
                );
            }
            out.push(SurveySite {
                server: server_name.clone(),
                fqcn: entry.fqcn.clone(),
                outcome,
            });
        }
    }
    out
}

/// Runs the Communication + Execution cycle once against every
/// `stride`-th deployed service of every server — the quantified form
/// of the paper's future-work step 4/5.
pub fn survey(stride: usize) -> ExchangeSurvey {
    ExchangeSurvey::tally(&survey_sites(stride))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_frameworks::server::{JBossWs, Metro, ServerSubsystem, WcfDotNet};
    use wsinterop_typecat::java;

    fn wsdl_of(server: &dyn ServerSubsystem, fqcn: &str) -> String {
        server
            .deploy(server.catalog().get(fqcn).unwrap())
            .wsdl()
            .unwrap()
            .to_string()
    }

    #[test]
    fn plain_services_complete_the_exchange_on_all_servers() {
        for (server, fqcn) in [
            (&Metro as &dyn ServerSubsystem, "java.lang.String"),
            (&JBossWs, "java.util.Date"),
            (&WcfDotNet, "System.Text.StringBuilder"),
        ] {
            let wsdl = wsdl_of(server, fqcn);
            let outcome = exchange(&wsdl, "echo", "ping-42");
            assert!(outcome.completed(), "{fqcn}: {outcome}");
        }
    }

    #[test]
    fn operation_less_documents_cannot_be_invoked() {
        // The paper's core argument for EXT0001: these services pass
        // every static check yet can never be called.
        let wsdl = wsdl_of(&JBossWs, java::well_known::FUTURE);
        let outcome = exchange(&wsdl, "echo", "x");
        assert!(matches!(outcome, ExchangeOutcome::ClientCannotInvoke { .. }));
    }

    #[test]
    fn unknown_operation_yields_server_fault() {
        let wsdl = wsdl_of(&Metro, "java.lang.String");
        let defs = from_xml_str(&wsdl).unwrap();
        let request = soap::request(&defs, "echo", "v").unwrap();
        let mut tampered =
            write_document(&request, &WriteOptions::compact()).replace("echo", "vanish");
        // Keep the envelope well-formed: only the wrapper was renamed.
        tampered = tampered.replace("vanishResponse", "echoResponse");
        let response = serve_echo(&defs, &tampered);
        assert!(soap::is_fault(&response));
    }

    #[test]
    fn malformed_request_yields_client_fault() {
        let wsdl = wsdl_of(&Metro, "java.lang.String");
        let defs = from_xml_str(&wsdl).unwrap();
        let response = serve_echo(&defs, "<bogus/>");
        assert!(soap::is_fault(&response));
    }

    #[test]
    fn payload_value_survives_escaping() {
        let wsdl = wsdl_of(&Metro, "java.lang.String");
        let outcome = exchange(&wsdl, "echo", "a < b & \"c\"");
        assert!(outcome.completed(), "{outcome}");
    }

    #[test]
    fn strided_survey_matches_full_run_shape() {
        // The full-corpus numbers (asserted in tests/exchange_survey.rs):
        // 7 234 completed, 3 not invocable, 2 faulted. A strided survey
        // must show the same dominant shape.
        let s = survey(101);
        assert!(s.completed > 0);
        assert_eq!(s.total(), s.completed + s.not_invocable + s.faulted);
        assert!(s.completed * 10 > s.total() * 9, "{s:?}");
    }

    #[test]
    fn injected_wire_faults_break_the_exchange() {
        use crate::faults::WireFault;
        let wsdl = wsdl_of(&Metro, "java.lang.String");
        // Baseline sanity: the fault-free exchange completes.
        assert!(exchange_with_faults(&wsdl, "echo", "x", None).completed());
        let truncated =
            exchange_with_faults(&wsdl, "echo", "x", Some(WireFault::TruncateEnvelope));
        assert!(!truncated.completed(), "{truncated}");
        let dropped = exchange_with_faults(&wsdl, "echo", "x", Some(WireFault::DropResponse));
        assert!(
            matches!(dropped, ExchangeOutcome::TransportError { .. }),
            "{dropped}"
        );
        let tampered =
            exchange_with_faults(&wsdl, "echo", "x", Some(WireFault::WrongNamespace));
        assert!(!tampered.completed(), "{tampered}");
    }

    #[test]
    fn unparseable_description_never_panics_the_exchange() {
        // An unparseable document is rejected at the client-side parse;
        // no input may panic the Communication step.
        let outcome = exchange("<not-a-wsdl", "echo", "x");
        assert!(
            matches!(outcome, ExchangeOutcome::ClientCannotInvoke { .. }),
            "{outcome}"
        );
    }

    #[test]
    fn exchange_reports_wire_bytes() {
        let wsdl = wsdl_of(&Metro, "java.lang.String");
        match exchange(&wsdl, "echo", "x") {
            ExchangeOutcome::Completed { bytes_on_wire } => assert!(bytes_on_wire > 200),
            other => panic!("unexpected: {other}"),
        }
    }
}
