//! The interoperability campaign engine: the paper's Preparation and
//! Testing phases, end to end.
//!
//! For every class of every server's catalog the engine attempts
//! deployment (Service Description Generation), checks the published
//! WSDL against WS-I BP 1.1, then drives all eleven client subsystems
//! through Artifact Generation and Artifact Compilation (or the
//! dynamic-language instantiation check), classifying each step.

use std::sync::Mutex;

use wsinterop_compilers::{compiler_for, instantiate};
use wsinterop_frameworks::client::{all_clients, ClientSubsystem, CompilationMode};
use wsinterop_frameworks::server::{all_servers, DeployOutcome, ServerSubsystem};
use wsinterop_wsi::Analyzer;

use crate::results::{CampaignResults, InstantiationKind, ServiceRecord, TestRecord};

/// A configured interoperability campaign.
pub struct Campaign {
    servers: Vec<Box<dyn ServerSubsystem>>,
    clients: Vec<Box<dyn ClientSubsystem>>,
    /// Test every `stride`-th catalog entry (1 = full campaign).
    stride: usize,
    /// Worker threads for the testing phase.
    threads: usize,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("servers", &self.servers.len())
            .field("clients", &self.clients.len())
            .field("stride", &self.stride)
            .field("threads", &self.threads)
            .finish()
    }
}

impl Campaign {
    /// The paper's full campaign: 3 servers × 11 clients over the full
    /// catalogs (22 024 candidate services, 79 629 tests).
    pub fn paper() -> Campaign {
        Campaign {
            servers: all_servers(),
            clients: all_clients(),
            stride: 1,
            threads: default_threads(),
        }
    }

    /// A strided sub-campaign: every `stride`-th catalog entry. Useful
    /// for benchmarks and smoke tests; `stride = 1` is the full run.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn sampled(stride: usize) -> Campaign {
        assert!(stride > 0, "stride must be positive");
        Campaign {
            stride,
            ..Campaign::paper()
        }
    }

    /// The widened campaign of the paper's future work: the three paper
    /// servers **plus** the extension platforms (the Axis2 server).
    pub fn extended() -> Campaign {
        Campaign {
            servers: wsinterop_frameworks::server::extension_servers(),
            ..Campaign::paper()
        }
    }

    /// Strided variant of [`Campaign::extended`].
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn extended_sampled(stride: usize) -> Campaign {
        assert!(stride > 0, "stride must be positive");
        Campaign {
            stride,
            ..Campaign::extended()
        }
    }

    /// Overrides the worker-thread count (defaults to available
    /// parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Campaign {
        self.threads = threads.max(1);
        self
    }

    /// Restricts the campaign to a subset of server subsystems.
    #[must_use]
    pub fn with_servers(
        mut self,
        ids: &[wsinterop_frameworks::server::ServerId],
    ) -> Campaign {
        self.servers.retain(|s| ids.contains(&s.info().id));
        self
    }

    /// Restricts the campaign to a subset of client subsystems.
    #[must_use]
    pub fn with_clients(
        mut self,
        ids: &[wsinterop_frameworks::client::ClientId],
    ) -> Campaign {
        self.clients.retain(|c| ids.contains(&c.info().id));
        self
    }

    /// Runs the campaign.
    pub fn run(&self) -> CampaignResults {
        let analyzer = Analyzer::basic_profile_1_1();
        let mut results = CampaignResults::default();

        for server in &self.servers {
            let server_id = server.info().id;
            let catalog = server.catalog();
            let entries: Vec<_> = catalog
                .entries()
                .iter()
                .step_by(self.stride)
                .collect();

            // Service Description Generation (parallel over entries).
            let records = Mutex::new(Vec::with_capacity(entries.len()));
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.threads {
                    scope.spawn(|| {
                        let mut local: Vec<(ServiceRecord, Option<String>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(entry) = entries.get(i) else { break };
                            let (record, wsdl) = match server.deploy(entry) {
                                DeployOutcome::Refused { .. } => (
                                    ServiceRecord {
                                        server: server_id,
                                        fqcn: entry.fqcn.clone(),
                                        deployed: false,
                                        wsi_conformant: None,
                                        description_warning: false,
                                    },
                                    None,
                                ),
                                DeployOutcome::Deployed { wsdl_xml } => {
                                    let defs = wsinterop_wsdl::de::from_xml_str(&wsdl_xml)
                                        .expect("servers publish well-formed WSDL");
                                    let report = analyzer.analyze(&defs);
                                    let conformant = report.conformant();
                                    let advisory = report
                                        .warnings()
                                        .any(|w| w.assertion == "EXT0001");
                                    (
                                        ServiceRecord {
                                            server: server_id,
                                            fqcn: entry.fqcn.clone(),
                                            deployed: true,
                                            wsi_conformant: Some(conformant),
                                            description_warning: !conformant || advisory,
                                        },
                                        Some(wsdl_xml),
                                    )
                                }
                            };
                            local.push((record, wsdl));
                        }
                        records.lock().unwrap().append(&mut local);
                    });
                }
            });
            let mut deployed: Vec<(ServiceRecord, Option<String>)> =
                records.into_inner().unwrap();
            deployed.sort_by(|a, b| a.0.fqcn.cmp(&b.0.fqcn));

            // Testing phase: all clients × all published WSDLs.
            let tests = Mutex::new(Vec::new());
            let work: Vec<(&ServiceRecord, &String)> = deployed
                .iter()
                .filter_map(|(record, wsdl)| wsdl.as_ref().map(|w| (record, w)))
                .collect();
            let next_test = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.threads {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i =
                                next_test.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some((record, wsdl)) = work.get(i) else { break };
                            for client in &self.clients {
                                local.push(run_test(server_id, record, wsdl, client.as_ref()));
                            }
                        }
                        tests.lock().unwrap().append(&mut local);
                    });
                }
            });

            results
                .services
                .extend(deployed.into_iter().map(|(record, _)| record));
            let mut server_tests = tests.into_inner().unwrap();
            server_tests.sort_by(|a: &TestRecord, b: &TestRecord| {
                (a.client, &a.fqcn).cmp(&(b.client, &b.fqcn))
            });
            results.tests.append(&mut server_tests);
        }
        results
    }
}

fn run_test(
    server_id: wsinterop_frameworks::server::ServerId,
    record: &ServiceRecord,
    wsdl: &str,
    client: &dyn ClientSubsystem,
) -> TestRecord {
    let info = client.info();
    let outcome = client.generate(wsdl);

    let mut test = TestRecord {
        server: server_id,
        client: info.id,
        fqcn: record.fqcn.clone(),
        gen_warning: !outcome.warnings.is_empty(),
        gen_error: outcome.error.is_some(),
        compile_ran: false,
        compile_warning: false,
        compile_error: false,
        compiler_crashed: false,
        instantiation: None,
    };

    let Some(bundle) = &outcome.artifacts else {
        return test;
    };

    match info.compilation {
        CompilationMode::Dynamic => {
            // Classification step for dynamic clients: instantiate the
            // client object and check it is actually usable.
            if outcome.error.is_none() {
                let check = instantiate(bundle);
                let kind = if !check.constructed {
                    InstantiationKind::Failed
                } else if check.empty_client() {
                    InstantiationKind::Empty
                } else {
                    InstantiationKind::Usable
                };
                test.instantiation = Some(kind);
                match kind {
                    InstantiationKind::Empty => test.gen_warning = true,
                    InstantiationKind::Failed => test.gen_error = true,
                    InstantiationKind::Usable => {}
                }
            }
        }
        _ => {
            if let Some(compiler) = compiler_for(bundle.language) {
                let compiled = compiler.compile(bundle);
                test.compile_ran = true;
                test.compile_warning = compiled.warning_count() > 0;
                test.compile_error = !compiled.success();
                test.compiler_crashed = compiled.crashed;
            }
        }
    }
    test
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_frameworks::client::ClientId;
    use wsinterop_frameworks::server::ServerId;

    #[test]
    fn sampled_campaign_has_consistent_shape() {
        let results = Campaign::sampled(97).run();
        // Every deployed service produced exactly 11 tests.
        let deployed: usize = ServerId::ALL
            .iter()
            .map(|&s| results.deployed(s))
            .sum();
        assert_eq!(results.tests.len(), deployed * 11);
        // Tests never report compilation without artifacts.
        for t in &results.tests {
            if t.compile_ran {
                assert!(matches!(
                    t.client,
                    ClientId::Metro
                        | ClientId::Axis1
                        | ClientId::Axis2
                        | ClientId::Cxf
                        | ClientId::JBossWs
                        | ClientId::DotnetCs
                        | ClientId::DotnetVb
                        | ClientId::DotnetJs
                        | ClientId::Gsoap
                ));
            }
            if t.instantiation.is_some() {
                assert!(matches!(t.client, ClientId::Zend | ClientId::Suds));
            }
        }
    }

    #[test]
    fn subset_campaigns_restrict_servers_and_clients() {
        let results = Campaign::sampled(149)
            .with_servers(&[ServerId::Metro])
            .with_clients(&[ClientId::Axis1, ClientId::Suds])
            .run();
        assert!(results.tests.iter().all(|t| t.server == ServerId::Metro));
        assert!(results
            .tests
            .iter()
            .all(|t| matches!(t.client, ClientId::Axis1 | ClientId::Suds)));
        let deployed = results.deployed(ServerId::Metro);
        assert_eq!(results.tests.len(), deployed * 2);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = Campaign::sampled(0);
    }

    #[test]
    fn strided_runs_are_deterministic() {
        let a = Campaign::sampled(149).with_threads(3).run();
        let b = Campaign::sampled(149).with_threads(7).run();
        assert_eq!(a.services.len(), b.services.len());
        assert_eq!(a.tests.len(), b.tests.len());
        assert_eq!(a.tests, b.tests);
    }
}
