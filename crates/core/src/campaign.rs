//! The interoperability campaign engine: the paper's Preparation and
//! Testing phases, end to end.
//!
//! For every class of every server's catalog the engine attempts
//! deployment (Service Description Generation), checks the published
//! WSDL against WS-I BP 1.1, then drives all eleven client subsystems
//! through Artifact Generation and Artifact Compilation (or the
//! dynamic-language instantiation check), classifying each step.
//!
//! ## Resilience
//!
//! The runner never lets a disruptive step kill the campaign — every
//! test ends in a classification:
//!
//! * a published description that fails to parse is recorded as a
//!   deployed-but-non-conformant service with a description warning,
//!   and its (corrupt) WSDL text still goes to all eleven clients;
//! * transient deployment refusals (marked with
//!   [`wsinterop_frameworks::fault::TRANSIENT_REFUSAL_PREFIX`]) are
//!   retried within [`ResilienceConfig::max_retries`], charging a
//!   deterministic virtual backoff;
//! * a panicking test worker is isolated with `catch_unwind` and
//!   becomes one Error-classified [`TestRecord`];
//! * result collection uses poison-tolerant locks, so an isolated
//!   panic can never cascade into a poisoned-lock abort.
//!
//! With [`Campaign::with_faults`] the runner layers a seeded
//! [`FaultPlan`] over the subsystems (the chaos campaign, experiment
//! E12) and [`Campaign::run_with_report`] additionally returns the
//! [`FaultReport`] accounting of injected vs detected vs masked
//! faults.
//!
//! ## Parse-once pipeline
//!
//! The deploy phase parses and analyzes each published description
//! exactly once into an [`Arc<ParsedService>`] work item, shared by the
//! WS-I check, all eleven client `generate_from` calls and the chaos
//! wire probe, behind a campaign-wide content-addressed [`DocCache`]
//! memo (see [`crate::doccache`]). Fault-damaged sites bypass the memo
//! and chaos-campaign generation cells keep the tool-fidelity text
//! path, so cached and uncached runs produce bit-identical
//! [`CampaignResults`]. [`Campaign::run_with_stats`] surfaces the
//! parse/memo accounting; [`Campaign::with_doc_cache`] disables the
//! sharing for equivalence tests and benchmarks.
//!
//! ## Crash safety and supervision
//!
//! With [`Campaign::with_journal`] every completed test cell is
//! appended to a write-ahead [`crate::journal`]; adding
//! [`Campaign::with_resume`] replays already-journaled cells instead
//! of executing them, re-deriving their fault accounting from the pure
//! plan decisions — an interrupted-then-resumed run is bit-identical
//! to an uninterrupted one. Execution is additionally supervised by a
//! virtual-clock per-cell watchdog ([`ResilienceConfig::cell_budget_ms`])
//! and, with [`Campaign::with_breaker`], a deterministic per-client
//! circuit breaker: each client subsystem's cells form one sequential
//! stream in campaign order (workers claim whole client streams, not
//! cell chunks), so breaker decisions are identical at any thread
//! count.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use wsinterop_compilers::{compiler_for, instantiate};
use wsinterop_frameworks::client::{
    all_clients, classify_error, ClientId, ClientSubsystem, CompilationMode, ErrorClass,
};
use wsinterop_frameworks::fault::{is_transient_refusal, FaultyClient, FaultyServer};
use wsinterop_frameworks::server::{all_servers, DeployOutcome, ServerId, ServerSubsystem};
use wsinterop_wsi::Analyzer;

use crate::doccache::{content_hash, DocCache, ParsedService, PipelineStats};
use crate::exchange::exchange_with_faults;
use crate::faults::{
    deploy_site, gen_site, sock_site, wire_site, BreakerConfig, BreakerState, FaultKind, FaultLog,
    FaultPlan, FaultReport, PlanClientHook, PlanServerHook, ResilienceConfig,
};
use crate::journal::{JournalCell, JournalError, JournalWriter};
use crate::shard::ShardSpec;
use crate::obs::{Obs, TracePhase};
use crate::results::{CampaignResults, InstantiationKind, ServiceRecord, TestRecord};
use crate::sync::{into_inner_unpoisoned, lock_unpoisoned};

/// Work-queue claim granularity: one `fetch_add` claims a run of this
/// many items, cutting shared-counter contention at high thread counts
/// while the deterministic post-sort keeps results order-independent.
const CLAIM_CHUNK: usize = 16;

/// A configured interoperability campaign.
pub struct Campaign {
    servers: Vec<Box<dyn ServerSubsystem>>,
    clients: Vec<Box<dyn ClientSubsystem>>,
    /// Test every `stride`-th catalog entry (1 = full campaign).
    stride: usize,
    /// Worker threads for the testing phase.
    threads: usize,
    /// Injected-fault plan (`None` for the faithful paper campaign).
    faults: Option<FaultPlan>,
    /// The runner's coping budget for disruptions.
    resilience: ResilienceConfig,
    /// Share parsed descriptions through the content-addressed memo
    /// (`false` reproduces the historical parse-per-consumer pipeline).
    doc_cache: bool,
    /// Lock stripes for the doc-cache memos. Excluded from
    /// [`Campaign::config_hash`]: striping only spreads contention,
    /// memo contents — and therefore results — are identical at any
    /// stripe count.
    cache_stripes: usize,
    /// Write-ahead journal path (`None` disables journaling).
    journal: Option<PathBuf>,
    /// Replay already-journaled cells instead of executing them.
    resume: bool,
    /// Per-client circuit breaker (`None` disables it).
    breaker: Option<BreakerConfig>,
    /// Deterministic kill switch: exit the process after this many
    /// journal appends (the resume smoke test's SIGKILL stand-in).
    halt_after_cells: Option<usize>,
    /// Deterministic hang switch: wedge the journal writer after this
    /// many appends (the supervision tests' guaranteed-alive target).
    stall_after_cells: Option<usize>,
    /// Run only this worker's share of the partitioned campaign
    /// (`None` = the whole campaign). Excluded from
    /// [`Campaign::config_hash`]: a shard executes a subset of the
    /// same cells, it never changes what any cell produces.
    shard: Option<ShardSpec>,
    /// How the chaos campaign's Communication-step probes travel.
    transport: ExchangeTransport,
    /// Observe-only telemetry (`None` for unobserved runs). Excluded
    /// from [`Campaign::config_hash`]: attaching an observer never
    /// changes what a campaign produces.
    obs: Option<Arc<Obs>>,
}

/// How the Communication-step probes of a chaos campaign travel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExchangeTransport {
    /// Both endpoints short-circuited through in-process calls (the
    /// historical path).
    #[default]
    InProcess,
    /// Over a real loopback TCP socket, through the hardened
    /// [`crate::wire`] endpoint and its fault proxy — wire and socket
    /// faults damage real bytes.
    TcpLoopback,
}

impl std::fmt::Display for ExchangeTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExchangeTransport::InProcess => "in-process",
            ExchangeTransport::TcpLoopback => "tcp",
        })
    }
}

/// Replayable cells recovered from a resume journal, keyed by campaign
/// cell identity.
type PriorCells = BTreeMap<(ServerId, ClientId, String), JournalCell>;

/// Per-server-phase cell-execution environment, shared by every
/// worker.
struct CellEnv<'a> {
    server_id: ServerId,
    log: &'a FaultLog,
    cache: &'a DocCache,
    writer: Option<&'a JournalWriter>,
    prior: &'a PriorCells,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("servers", &self.servers.len())
            .field("clients", &self.clients.len())
            .field("stride", &self.stride)
            .field("threads", &self.threads)
            .field("faults", &self.faults.as_ref().map(|p| p.seed()))
            .field("resilience", &self.resilience)
            .field("doc_cache", &self.doc_cache)
            .field("journal", &self.journal)
            .field("resume", &self.resume)
            .field("breaker", &self.breaker)
            .field("shard", &self.shard)
            .finish_non_exhaustive()
    }
}

impl Campaign {
    /// The paper's full campaign: 3 servers × 11 clients over the full
    /// catalogs (22 024 candidate services, 79 629 tests).
    pub fn paper() -> Campaign {
        Campaign {
            servers: all_servers(),
            clients: all_clients(),
            stride: 1,
            threads: default_threads(),
            faults: None,
            resilience: ResilienceConfig::default(),
            doc_cache: true,
            cache_stripes: crate::doccache::DEFAULT_MEMO_STRIPES,
            journal: None,
            resume: false,
            breaker: None,
            halt_after_cells: None,
            stall_after_cells: None,
            shard: None,
            transport: ExchangeTransport::InProcess,
            obs: None,
        }
    }

    /// A strided sub-campaign: every `stride`-th catalog entry. Useful
    /// for benchmarks and smoke tests; `stride = 1` is the full run.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn sampled(stride: usize) -> Campaign {
        assert!(stride > 0, "stride must be positive");
        Campaign {
            stride,
            ..Campaign::paper()
        }
    }

    /// The widened campaign of the paper's future work: the three paper
    /// servers **plus** the extension platforms (the Axis2 server).
    pub fn extended() -> Campaign {
        Campaign {
            servers: wsinterop_frameworks::server::extension_servers(),
            ..Campaign::paper()
        }
    }

    /// Strided variant of [`Campaign::extended`].
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn extended_sampled(stride: usize) -> Campaign {
        assert!(stride > 0, "stride must be positive");
        Campaign {
            stride,
            ..Campaign::extended()
        }
    }

    /// Overrides the worker-thread count (defaults to available
    /// parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Campaign {
        self.threads = threads.max(1);
        self
    }

    /// Restricts the campaign to a subset of server subsystems.
    #[must_use]
    pub fn with_servers(
        mut self,
        ids: &[wsinterop_frameworks::server::ServerId],
    ) -> Campaign {
        self.servers.retain(|s| ids.contains(&s.info().id));
        self
    }

    /// Restricts the campaign to a subset of client subsystems.
    #[must_use]
    pub fn with_clients(
        mut self,
        ids: &[wsinterop_frameworks::client::ClientId],
    ) -> Campaign {
        self.clients.retain(|c| ids.contains(&c.info().id));
        self
    }

    /// Layers a seeded fault plan over every subsystem boundary — the
    /// chaos campaign. Sites the plan leaves untouched produce records
    /// bit-identical to the fault-free run.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Campaign {
        self.faults = Some(plan);
        self
    }

    /// Overrides the resilience budget (retries, deadline, panic
    /// isolation).
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Campaign {
        self.resilience = resilience;
        self
    }

    /// Enables or disables the shared parsed-description cache
    /// (enabled by default). Disabling reproduces the historical
    /// parse-per-consumer pipeline — results are bit-identical either
    /// way, only the work count changes.
    #[must_use]
    pub fn with_doc_cache(mut self, enabled: bool) -> Campaign {
        self.doc_cache = enabled;
        self
    }

    /// Overrides the doc-cache memo stripe count (clamped to at least
    /// 1; `1` reproduces the historical single-map memo). Excluded
    /// from [`Campaign::config_hash`] — striping spreads lock
    /// contention across the memo key space without changing what any
    /// memo returns, so results are bit-identical at any stripe count
    /// (pinned by the equivalence proptest in `tests/pipeline_cache`).
    #[must_use]
    pub fn with_cache_stripes(mut self, stripes: usize) -> Campaign {
        self.cache_stripes = stripes.max(1);
        self
    }

    /// Journals every completed test cell to a write-ahead log at
    /// `path` (see [`crate::journal`]).
    #[must_use]
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Campaign {
        self.journal = Some(path.into());
        self
    }

    /// With a journal configured, replays already-journaled cells
    /// instead of executing them. Resuming a journal written under a
    /// different campaign configuration is a
    /// [`JournalError::ConfigMismatch`]; a missing journal file simply
    /// starts fresh.
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Campaign {
        self.resume = resume;
        self
    }

    /// Enables the deterministic per-client circuit breaker.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Campaign {
        self.breaker = Some(breaker);
        self
    }

    /// Kills the process (exit code [`crate::journal::HALT_EXIT_CODE`])
    /// after `cells` journal appends — the deterministic SIGKILL
    /// stand-in driving the kill/resume smoke test. Only meaningful
    /// with [`Campaign::with_journal`].
    #[must_use]
    pub fn with_halt_after_cells(mut self, cells: usize) -> Campaign {
        self.halt_after_cells = Some(cells.max(1));
        self
    }

    /// Wedges the journal writer after `cells` appends: the writer
    /// sleeps forever holding the journal file lock, so the process
    /// stays alive but makes no further progress — the deterministic
    /// hang the supervisor's heartbeat must detect, and a
    /// guaranteed-alive SIGKILL target for kill/respawn tests. Only
    /// meaningful with [`Campaign::with_journal`].
    #[must_use]
    pub fn with_stall_after_cells(mut self, cells: usize) -> Campaign {
        self.stall_after_cells = Some(cells.max(1));
        self
    }

    /// Restricts the run to one shard of the partitioned campaign:
    /// per server, the strided catalog entries are grouped into
    /// chunks of [`crate::shard::ENTRIES_PER_CHUNK`] and shard `k` of
    /// `n` owns every chunk with `chunk_index % n == k` (see
    /// [`ShardSpec::owns`]). Shards of the same campaign are disjoint
    /// and jointly exhaustive, so merging their results reproduces
    /// the unsharded run bit-identically
    /// ([`crate::shard::merge_results`]).
    ///
    /// Incompatible with [`Campaign::with_breaker`]: breaker
    /// decisions depend on the full preceding per-client cell stream,
    /// which a shard by construction does not see — `run` panics on
    /// the combination rather than produce merge-dependent results.
    #[must_use]
    pub fn with_shard(mut self, shard: ShardSpec) -> Campaign {
        self.shard = Some(shard);
        self
    }

    /// Selects the transport for the chaos campaign's
    /// Communication-step probes. [`ExchangeTransport::TcpLoopback`]
    /// hosts every fault-planned site on a [`crate::wire::WireServer`]
    /// behind a [`crate::wire::FaultProxy`] and exchanges real bytes.
    #[must_use]
    pub fn with_transport(mut self, transport: ExchangeTransport) -> Campaign {
        self.transport = transport;
        self
    }

    /// Attaches an observer: structured phase tracing, the metrics
    /// registry and the progress meter (see [`crate::obs`]).
    ///
    /// Strictly observe-only: the observer is excluded from
    /// [`Campaign::config_hash`], no pipeline decision reads it, and
    /// an instrumented run's results, fault report and journal are
    /// bit-identical to an unobserved run's.
    #[must_use]
    pub fn with_observer(mut self, obs: Arc<Obs>) -> Campaign {
        self.obs = Some(obs);
        self
    }

    /// The campaign configuration hash pinned into journal headers and
    /// echoed in `wsitool` output: FNV-1a over a canonical rendering
    /// of everything that shapes the *results* — servers, clients,
    /// stride, cache mode, fault plan, resilience budget, breaker.
    /// Thread count, journal path, resume flag, the halt/stall
    /// switches, the shard spec and the telemetry observer are
    /// deliberately excluded: they change how a run executes (or what
    /// it reports about itself), never what it produces. Excluding
    /// the shard is what lets every per-shard journal carry the *same*
    /// hash as the unsharded campaign — the merge step verifies all
    /// shard journals agree on it.
    pub fn config_hash(&self) -> u64 {
        let servers: Vec<String> = self
            .servers
            .iter()
            .map(|s| format!("{:?}", s.info().id))
            .collect();
        let clients: Vec<String> = self
            .clients
            .iter()
            .map(|c| format!("{:?}", c.info().id))
            .collect();
        let faults = match &self.faults {
            None => "none".to_string(),
            Some(plan) => plan.fingerprint(),
        };
        let breaker = match self.breaker {
            None => "off".to_string(),
            Some(b) => format!("{}:{}", b.threshold, b.cooldown_cells),
        };
        let r = &self.resilience;
        let canonical = format!(
            "wsitool-campaign-config-v1;servers={};clients={};stride={};doc_cache={};\
             faults={};resilience=retries:{},backoff:{:?},step:{},cell:{},panics:{};breaker={};\
             transport={}",
            servers.join(","),
            clients.join(","),
            self.stride,
            self.doc_cache,
            faults,
            r.max_retries,
            r.backoff_ms,
            r.step_deadline_ms,
            r.cell_budget_ms,
            r.isolate_panics,
            breaker,
            self.transport
        );
        content_hash(canonical.as_bytes())
    }

    /// Runs the campaign.
    pub fn run(&self) -> CampaignResults {
        self.run_with_stats().0
    }

    /// Runs the campaign and returns the fault-injection accounting
    /// alongside the results. Without [`Campaign::with_faults`] the
    /// report is empty.
    pub fn run_with_report(&self) -> (CampaignResults, FaultReport) {
        let (results, report, _) = self.run_with_stats();
        (results, report)
    }

    /// Runs the campaign and additionally returns the parse-once
    /// pipeline's parse/memo accounting.
    ///
    /// # Panics
    ///
    /// Panics on a journal error (unreadable/mismatched journal, I/O
    /// failure); use [`Campaign::try_run_with_stats`] to handle those
    /// gracefully. Journal-free campaigns never hit that path.
    pub fn run_with_stats(&self) -> (CampaignResults, FaultReport, PipelineStats) {
        self.try_run_with_stats()
            .unwrap_or_else(|e| panic!("campaign journal error: {e}"))
    }

    /// [`Campaign::run_with_stats`], surfacing journal failures as
    /// errors instead of panics.
    pub fn try_run_with_stats(
        &self,
    ) -> Result<(CampaignResults, FaultReport, PipelineStats), JournalError> {
        assert!(
            self.shard.is_none() || self.breaker.is_none(),
            "sharding is incompatible with the circuit breaker: breaker state \
             depends on the full preceding per-client cell stream, which a \
             shard does not see"
        );
        let analyzer = Analyzer::basic_profile_1_1();
        // With an observer attached, the fault log and doc cache
        // publish their accounting through the shared registry — same
        // numbers, one instrument namespace. The public report shapes
        // (`FaultReport`, `PipelineStats`) are unchanged either way.
        let (log, cache) = match &self.obs {
            Some(obs) => (
                FaultLog::with_registry(obs.metrics_arc()),
                DocCache::with_config(self.cache_stripes, obs.metrics_arc()),
            ),
            None => (
                FaultLog::new(),
                DocCache::with_stripe_count(self.cache_stripes),
            ),
        };
        let mut results = CampaignResults::default();

        // Open (or resume) the write-ahead journal before any work: a
        // mismatched or unreadable journal must fail the run up front,
        // not after an hour of cells.
        let (writer, prior): (Option<JournalWriter>, PriorCells) = match &self.journal {
            None => (None, PriorCells::new()),
            Some(path) => {
                let config_hash = self.config_hash();
                if self.resume && path.exists() {
                    let (writer, read) =
                        JournalWriter::resume(path, config_hash, self.halt_after_cells)?;
                    let mut prior = PriorCells::new();
                    for cell in read.cells {
                        let key =
                            (cell.record.server, cell.record.client, cell.record.fqcn.clone());
                        prior.insert(key, cell);
                    }
                    (Some(writer), prior)
                } else {
                    let writer = JournalWriter::create(path, config_hash, self.halt_after_cells)?;
                    (Some(writer), PriorCells::new())
                }
            }
        };
        // Journal frame accounting flows into the shared registry when
        // an observer is attached; the journal format is untouched.
        let writer = match (&self.obs, writer) {
            (Some(obs), Some(w)) => Some(w.with_metrics(obs.metrics_arc())),
            (_, w) => w,
        };
        let writer = writer.map(|w| w.with_stall_after(self.stall_after_cells));

        // One breaker per client subsystem, carried across servers in
        // campaign order.
        let breaker_states: Mutex<BTreeMap<ClientId, BreakerState>> =
            Mutex::new(BTreeMap::new());

        for server in &self.servers {
            let server_id = server.info().id;
            let catalog = server.catalog();
            // Shard ownership is decided on the *strided* entry index:
            // the chunk grid partitions exactly the entries this
            // configuration would execute, so every shard sees the
            // same grid regardless of which shard it is.
            let entries: Vec<_> = catalog
                .entries()
                .iter()
                .step_by(self.stride)
                .enumerate()
                .filter(|(strided_index, _)| {
                    self.shard.is_none_or(|s| s.owns(*strided_index))
                })
                .map(|(_, entry)| entry)
                .collect();
            if let Some(obs) = &self.obs {
                obs.metrics()
                    .add("campaign_deploys_total", entries.len() as u64);
            }

            // Service Description Generation (parallel over entries,
            // claimed in chunks to keep the shared counter cool).
            let records = Mutex::new(Vec::with_capacity(entries.len()));
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.threads {
                    scope.spawn(|| {
                        let mut local: Vec<(ServiceRecord, Option<Arc<ParsedService>>)> =
                            Vec::new();
                        loop {
                            let start = next
                                .fetch_add(CLAIM_CHUNK, std::sync::atomic::Ordering::Relaxed);
                            if start >= entries.len() {
                                break;
                            }
                            let end = entries.len().min(start + CLAIM_CHUNK);
                            for entry in &entries[start..end] {
                                local.push(self.deploy_entry(
                                    server.as_ref(),
                                    server_id,
                                    entry,
                                    &analyzer,
                                    &log,
                                    &cache,
                                ));
                            }
                        }
                        // lock-order: L5 (campaign collections) — held
                        // only for the append, after all cell work.
                        lock_unpoisoned(&records).append(&mut local);
                    });
                }
            });
            let mut deployed: Vec<(ServiceRecord, Option<Arc<ParsedService>>)> =
                into_inner_unpoisoned(records);
            deployed.sort_by(|a, b| a.0.fqcn.cmp(&b.0.fqcn));

            // Testing phase: all clients × all published descriptions,
            // each description parsed once and shared by reference.
            // Workers claim whole *client streams* (not cell chunks):
            // each client's cells run sequentially in campaign (fqcn)
            // order, which is what makes circuit-breaker decisions —
            // functions of the preceding stream — identical at any
            // thread count.
            let tests = Mutex::new(Vec::new());
            let work: Vec<(&ServiceRecord, &Arc<ParsedService>)> = deployed
                .iter()
                .filter_map(|(record, svc)| svc.as_ref().map(|s| (record, s)))
                .collect();
            let env = CellEnv {
                server_id,
                log: &log,
                cache: &cache,
                writer: writer.as_ref(),
                prior: &prior,
            };
            if let Some(obs) = &self.obs {
                obs.progress()
                    .add_expected((work.len() * self.clients.len()) as u64);
            }
            let next_client = std::sync::atomic::AtomicUsize::new(0);
            let workers = self.threads.min(self.clients.len()).max(1);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let at = next_client
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(client) = self.clients.get(at) else {
                                break;
                            };
                            let client_id = client.info().id;
                            // lock-order: L5 (campaign collections) —
                            // state moves out before any cell runs.
                            let mut state = lock_unpoisoned(&breaker_states)
                                .remove(&client_id)
                                .unwrap_or_default();
                            for (record, svc) in &work {
                                local.push(self.run_supervised_cell(
                                    &env,
                                    record,
                                    svc,
                                    client.as_ref(),
                                    &mut state,
                                ));
                            }
                            // lock-order: L5 (campaign collections).
                            lock_unpoisoned(&breaker_states).insert(client_id, state);
                        }
                        // lock-order: L5 (campaign collections) — held
                        // only for the append, after all cell work.
                        lock_unpoisoned(&tests).append(&mut local);
                    });
                }
            });

            // Communication-step wire faults (chaos campaigns only):
            // probe each planned site through the faulted exchange.
            // This pass feeds the fault report; it never alters the
            // campaign records. It is sequential by design, so its
            // fault decisions and classifications are identical at any
            // `-j` level.
            if let Some(plan) = &self.faults {
                match self.transport {
                    ExchangeTransport::InProcess => {
                        for (record, svc) in &work {
                            wire_probe(plan, &log, server_id, record, svc, self.obs.as_deref());
                        }
                    }
                    ExchangeTransport::TcpLoopback => {
                        self.socket_probe_pass(plan, &log, server_id, &work)?;
                    }
                }
            }

            results
                .services
                .extend(deployed.into_iter().map(|(record, _)| record));
            let mut server_tests = into_inner_unpoisoned(tests);
            server_tests.sort_by(|a: &TestRecord, b: &TestRecord| {
                (a.client, &a.fqcn).cmp(&(b.client, &b.fqcn))
            });
            results.tests.append(&mut server_tests);
        }
        if let Some(writer) = &writer {
            if let Some(e) = writer.take_error() {
                return Err(JournalError::Io(e));
            }
        }
        let stats = cache.stats();
        if let Some(obs) = &self.obs {
            obs.sync_sink_counters();
        }
        Ok((results, log.report(), stats))
    }

    /// The socket-level twin of the [`wire_probe`] pass: hosts every
    /// fault-planned site of this server phase on a real loopback
    /// endpoint behind the fault proxy, runs each probe over the
    /// socket, and resolves the injections against the classified
    /// outcome. Endpoint start-up failures surface as
    /// [`JournalError::Io`] — the campaign's existing I/O error path.
    fn socket_probe_pass(
        &self,
        plan: &FaultPlan,
        log: &FaultLog,
        server_id: ServerId,
        work: &[(&ServiceRecord, &Arc<ParsedService>)],
    ) -> Result<(), JournalError> {
        use crate::wire::{
            exchange_over_http, FaultProxy, HostedService, WireClient, WireClientConfig,
            WireServer, WireServerConfig,
        };

        /// The probe client's read deadline; injected delays overshoot
        /// it, so a delayed response is always a classified timeout.
        const PROBE_DEADLINE_MS: u64 = 200;

        // Decide everything up front: no planned fault ⇒ no endpoint.
        let mut planned = Vec::new();
        let mut services = BTreeMap::new();
        for (record, svc) in work {
            let wire_key = wire_site(server_id, &record.fqcn);
            let sock_key = sock_site(server_id, &record.fqcn);
            let wire = plan.wire_fault(&wire_key);
            let sock = plan.socket_fault(&sock_key, PROBE_DEADLINE_MS);
            if wire.is_none() && sock.is_none() {
                continue;
            }
            services.insert(
                format!("/{server_id:?}/{}", record.fqcn),
                HostedService::new(svc.wsdl_xml().to_string()),
            );
            planned.push((*record, *svc, wire, sock, wire_key, sock_key));
        }
        if planned.is_empty() {
            return Ok(());
        }

        let registry = self.obs.as_ref().map(|o| o.metrics_arc());
        let server_config = WireServerConfig {
            metrics: registry.clone(),
            ..WireServerConfig::default()
        };
        let server = WireServer::start(0, services, server_config).map_err(JournalError::Io)?;
        let proxy = FaultProxy::start_with_metrics(
            server.addr(),
            plan.clone(),
            PROBE_DEADLINE_MS,
            registry.clone(),
        )
        .map_err(JournalError::Io)?;
        let config = WireClientConfig {
            read_timeout: std::time::Duration::from_millis(PROBE_DEADLINE_MS),
            metrics: registry,
            ..WireClientConfig::from_resilience(&self.resilience)
        };
        let client = WireClient::new(config).with_plan(plan.clone());

        for (record, svc, wire, sock, wire_key, sock_key) in planned {
            let obs = self.obs.as_deref();
            let span = obs.map(|o| {
                o.begin_phase(TracePhase::Wire, server_id.name(), None, &record.fqcn)
            });
            if let Some(w) = wire {
                log.injected(w.kind(), &wire_key);
            }
            if let Some(s) = sock {
                log.injected(s.kind(), &sock_key);
            }
            let detected = match svc.first_operation() {
                // No invocable operation: the probe never leaves the
                // client, the fault never bites — masked.
                None => false,
                Some(op) => {
                    let path = format!("/{server_id:?}/{}", record.fqcn);
                    !exchange_over_http(
                        &client,
                        proxy.addr(),
                        &path,
                        svc.wsdl_xml(),
                        op,
                        "chaos-probe",
                    )
                    .completed()
                }
            };
            if wire.is_some() {
                log.resolve(&wire_key, detected);
            }
            if sock.is_some() {
                log.resolve(&sock_key, detected);
            }
            if let (Some(o), Some(span)) = (obs, span) {
                let site = if wire.is_some() { &wire_key } else { &sock_key };
                o.end_phase(
                    TracePhase::Wire,
                    server_id.name(),
                    None,
                    &record.fqcn,
                    if detected { "detected" } else { "masked" },
                    Some(site),
                    0,
                    false,
                    span,
                );
            }
        }
        proxy.shutdown();
        server.shutdown();
        Ok(())
    }

    /// Parses a just-published description into the shared-by-`Arc`
    /// work item for the test phase.
    ///
    /// Sites where the fault plan may have damaged the published bytes
    /// bypass the content-addressed memo: damaged text must hit the
    /// real parser, and its parse must never be shared with (or served
    /// to) pristine sites. Cache-disabled runs parse unshared, which
    /// reproduces the historical parse-per-consumer pipeline.
    fn parse_published(
        &self,
        cache: &DocCache,
        server_id: ServerId,
        fqcn: &str,
        wsdl_xml: String,
    ) -> Arc<ParsedService> {
        let damage_possible = self.faults.as_ref().is_some_and(|plan| {
            let site = deploy_site(server_id, fqcn);
            plan.decide(FaultKind::WsdlTruncation, &site)
                || plan.decide(FaultKind::WsdlCorruption, &site)
        });
        if damage_possible {
            cache.parse_bypassing_memo(wsdl_xml)
        } else if self.doc_cache {
            cache.parse(wsdl_xml)
        } else {
            cache.parse_unshared(wsdl_xml)
        }
    }

    /// One Service Description Generation step, with fault injection,
    /// transient-refusal retries and graceful handling of unparseable
    /// published descriptions.
    fn deploy_entry(
        &self,
        server: &dyn ServerSubsystem,
        server_id: ServerId,
        entry: &wsinterop_typecat::TypeEntry,
        analyzer: &Analyzer,
        log: &FaultLog,
        cache: &DocCache,
    ) -> (ServiceRecord, Option<Arc<ParsedService>>) {
        let obs = self.obs.as_deref();
        let span = obs.map(|o| {
            o.begin_phase(
                TracePhase::Describe,
                server_id.name(),
                None,
                &entry.fqcn,
            )
        });
        let mut retries = 0u32;
        let outcome = match &self.faults {
            None => server.deploy(entry),
            Some(plan) => {
                let hook = PlanServerHook::new(plan, log, &self.resilience, server_id);
                let faulty = FaultyServer::new(server, &hook);
                loop {
                    match faulty.deploy(entry) {
                        DeployOutcome::Refused { reason }
                            if is_transient_refusal(&reason)
                                && retries < self.resilience.max_retries =>
                        {
                            log.retried(self.resilience.backoff_for(retries));
                            retries += 1;
                        }
                        other => break other,
                    }
                }
            }
        };

        let (record, wsdl) = match outcome {
            DeployOutcome::Refused { .. } => (
                ServiceRecord {
                    server: server_id,
                    fqcn: entry.fqcn.clone(),
                    deployed: false,
                    wsi_conformant: None,
                    description_warning: false,
                },
                None,
            ),
            DeployOutcome::Deployed { wsdl_xml } => {
                let svc = self.parse_published(cache, server_id, &entry.fqcn, wsdl_xml);
                match svc.defs() {
                    Some(defs) => {
                        let report = analyzer.analyze(defs);
                        let conformant = report.conformant();
                        let advisory = report
                            .warnings()
                            .any(|w| w.assertion == "EXT0001");
                        (
                            ServiceRecord {
                                server: server_id,
                                fqcn: entry.fqcn.clone(),
                                deployed: true,
                                wsi_conformant: Some(conformant),
                                description_warning: !conformant || advisory,
                            },
                            Some(svc),
                        )
                    }
                    // Graceful degradation: an unparseable published
                    // description is a real interoperability finding,
                    // not a reason to abort the campaign. Record it as
                    // deployed-but-non-conformant and keep the text —
                    // all eleven clients still get to classify it.
                    None => (
                        ServiceRecord {
                            server: server_id,
                            fqcn: entry.fqcn.clone(),
                            deployed: true,
                            wsi_conformant: Some(false),
                            description_warning: true,
                        },
                        Some(svc),
                    ),
                }
            }
        };

        if self.faults.is_some() {
            let site = deploy_site(server_id, &entry.fqcn);
            if log.is_affected(&site) {
                // Detected when the step surfaced the disruption as a
                // refusal or a flagged description; masked when the
                // record came out clean (retry-absorbed refusals,
                // benign corruption).
                log.resolve(&site, !record.deployed || record.description_warning);
            }
        }
        if let (Some(o), Some(span)) = (obs, span) {
            let outcome_label = if !record.deployed {
                "refused"
            } else if record.description_warning {
                "warning"
            } else {
                "deployed"
            };
            let site = self
                .faults
                .is_some()
                .then(|| deploy_site(server_id, &entry.fqcn));
            o.end_phase(
                TracePhase::Describe,
                server_id.name(),
                None,
                &entry.fqcn,
                outcome_label,
                site.as_deref(),
                u64::from(retries),
                false,
                span,
            );
        }
        (record, wsdl)
    }

    /// One supervised (server, client, service) cell: breaker gate →
    /// journal replay → live execution, then breaker bookkeeping and
    /// the journal append.
    ///
    /// Replayed cells never re-append (a journal converges to one
    /// record per cell) but do feed the breaker and re-derive their
    /// fault accounting, so a resumed run's [`FaultReport`] is
    /// bit-identical to an uninterrupted one.
    fn run_supervised_cell(
        &self,
        env: &CellEnv<'_>,
        record: &ServiceRecord,
        svc: &ParsedService,
        client: &dyn ClientSubsystem,
        state: &mut BreakerState,
    ) -> TestRecord {
        let client_id = client.info().id;
        let key = (env.server_id, client_id, record.fqcn.clone());
        let site = gen_site(env.server_id, client_id, &record.fqcn);
        let obs = self.obs.as_deref();
        let span = obs.map(|o| {
            o.begin_phase(
                TracePhase::Generate,
                env.server_id.name(),
                Some(client_id.name()),
                &record.fqcn,
            )
        });

        let (cell, replayed) = if self.breaker.is_some() && state.should_skip() {
            // Open breaker: the cell is never executed; it is recorded
            // as a skipped Error outcome. The decision replays
            // identically on resume (it depends only on the preceding
            // stream), so a journaled skip is simply not re-appended.
            env.log.breaker_skip(&site);
            let cell = JournalCell {
                record: TestRecord {
                    server: env.server_id,
                    client: client_id,
                    fqcn: record.fqcn.clone(),
                    gen_warning: false,
                    gen_error: true,
                    compile_ran: false,
                    compile_warning: false,
                    compile_error: false,
                    compiler_crashed: false,
                    instantiation: None,
                },
                breaker_skipped: true,
                disruptive: false,
            };
            let replayed = env.prior.contains_key(&key);
            (cell, replayed)
        } else if let Some(prior) = env.prior.get(&key) {
            env.cache.note_journal_replay();
            if let Some(plan) = &self.faults {
                replay_accounting(plan, &self.resilience, &site, prior, env.log);
            }
            (prior.clone(), true)
        } else {
            (self.run_cell(env, record, svc, client), false)
        };

        if let Some(cfg) = self.breaker {
            if !cell.breaker_skipped && state.observe(cfg, cell.disruptive) {
                env.log.breaker_tripped();
            }
        }
        if let Some(writer) = env.writer {
            if !replayed {
                writer.append(&cell);
            }
        }
        if let (Some(o), Some(span)) = (obs, span) {
            let outcome_label = if cell.breaker_skipped {
                "breaker-skipped"
            } else if replayed {
                "replayed"
            } else if cell.record.gen_error {
                "error"
            } else if cell.record.gen_warning {
                "warning"
            } else {
                "success"
            };
            o.end_phase(
                TracePhase::Generate,
                env.server_id.name(),
                Some(client_id.name()),
                &record.fqcn,
                outcome_label,
                self.faults.is_some().then_some(site.as_str()),
                0,
                cell.breaker_skipped,
                span,
            );
            o.record_cell_done();
        }
        cell.record
    }

    /// One (server, client, service) test cell, with fault injection,
    /// panic isolation, the virtual step deadline and the per-cell
    /// watchdog.
    ///
    /// Fault-free cells drive the shared parse straight into
    /// `generate_from` (memoized when the cache is on) and never touch
    /// the description text. Chaos cells keep the tool-fidelity text
    /// path: injected corruption must reach the real parser, so the
    /// fault hook wraps [`ClientSubsystem::generate`].
    fn run_cell(
        &self,
        env: &CellEnv<'_>,
        record: &ServiceRecord,
        svc: &ParsedService,
        client: &dyn ClientSubsystem,
    ) -> JournalCell {
        let server_id = env.server_id;
        let (log, cache) = (env.log, env.cache);
        let obs = self.obs.as_deref();
        let Some(plan) = &self.faults else {
            if self.doc_cache {
                return run_test(server_id, record, svc, client, cache, obs);
            }
            cache.note_text_generate();
            return run_test_text(server_id, record, svc.wsdl_xml(), client, obs);
        };

        // Chaos cells over a fault-damaged description are accounted
        // apart from pristine text-path cells: an injected-and-parsed
        // site must never be double-counted as both.
        if svc.fault_damaged() {
            cache.note_fault_generate();
        } else {
            cache.note_text_generate();
        }
        let wsdl = svc.wsdl_xml();
        let site = gen_site(server_id, client.info().id, &record.fqcn);
        let hook = PlanClientHook::new(plan, log);
        let faulty = FaultyClient::new(client, &hook, site.clone());
        let mut cell = if self.resilience.isolate_panics {
            match catch_unwind(AssertUnwindSafe(|| {
                run_test_text(server_id, record, wsdl, &faulty, obs)
            })) {
                Ok(cell) => cell,
                Err(_) => {
                    // The worker died mid-step; the test still gets a
                    // verdict: generation failed, disruptively.
                    log.panic_isolated();
                    JournalCell {
                        record: TestRecord {
                            server: server_id,
                            client: client.info().id,
                            fqcn: record.fqcn.clone(),
                            gen_warning: false,
                            gen_error: true,
                            compile_ran: false,
                            compile_warning: false,
                            compile_error: false,
                            compiler_crashed: false,
                            instantiation: None,
                        },
                        breaker_skipped: false,
                        disruptive: true,
                    }
                }
            }
        } else {
            run_test_text(server_id, record, wsdl, &faulty, obs)
        };

        if let Some(virtual_ms) = plan.slow_virtual_ms(&site) {
            log.injected(FaultKind::SlowStep, &site);
            if virtual_ms > self.resilience.step_deadline_ms {
                // The step blew its deadline budget: classified as an
                // Error, exactly like a hung tool killed by a watchdog.
                log.deadline_hit();
                cell.record.gen_error = true;
            }
            if virtual_ms > self.resilience.cell_budget_ms {
                // The whole cell blew the watchdog budget: a
                // disruptive Error — the kind that trips breakers.
                log.watchdog_cell();
                cell.record.gen_error = true;
                cell.disruptive = true;
            }
        }
        if log.is_affected(&site) {
            log.resolve(&site, cell.record.any_error() || cell.record.any_warning());
        }
        cell
    }
}

/// Re-derives a replayed cell's contributions to the fault log from
/// the pure plan decisions — injection, panic isolation, deadline and
/// watchdog hits, detected-vs-masked resolution — exactly as live
/// execution would have recorded them. This is what makes a resumed
/// chaos campaign's [`FaultReport`] bit-identical to an uninterrupted
/// one.
fn replay_accounting(
    plan: &FaultPlan,
    resilience: &ResilienceConfig,
    site: &str,
    cell: &JournalCell,
    log: &FaultLog,
) {
    if plan.decide(FaultKind::ClientGenPanic, site) {
        log.injected(FaultKind::ClientGenPanic, site);
        if resilience.isolate_panics {
            log.panic_isolated();
        }
    }
    if let Some(virtual_ms) = plan.slow_virtual_ms(site) {
        log.injected(FaultKind::SlowStep, site);
        if virtual_ms > resilience.step_deadline_ms {
            log.deadline_hit();
        }
        if virtual_ms > resilience.cell_budget_ms {
            log.watchdog_cell();
        }
    }
    if log.is_affected(site) {
        log.resolve(site, cell.record.any_error() || cell.record.any_warning());
    }
}

/// Runs one wire-fault probe for the chaos campaign's Communication
/// step, resolving the injection as detected unless the exchange still
/// completed. The invocation target comes from the shared
/// [`ParsedService`] — no re-parse.
fn wire_probe(
    plan: &FaultPlan,
    log: &FaultLog,
    server_id: ServerId,
    record: &ServiceRecord,
    svc: &ParsedService,
    obs: Option<&Obs>,
) {
    let site = wire_site(server_id, &record.fqcn);
    let Some(wire) = plan.wire_fault(&site) else {
        return;
    };
    let span = obs.map(|o| {
        o.begin_phase(
            TracePhase::Exchange,
            server_id.name(),
            None,
            &record.fqcn,
        )
    });
    log.injected(wire.kind(), &site);
    let detected = match svc.first_operation() {
        // No invocable operation (or unparseable description): the
        // wire fault never gets a chance to bite — masked.
        None => false,
        Some(op) => {
            !exchange_with_faults(svc.wsdl_xml(), op, "chaos-probe", Some(wire)).completed()
        }
    };
    log.resolve(&site, detected);
    if let (Some(o), Some(span)) = (obs, span) {
        o.end_phase(
            TracePhase::Exchange,
            server_id.name(),
            None,
            &record.fqcn,
            if detected { "detected" } else { "masked" },
            Some(&site),
            0,
            false,
            span,
        );
    }
}

/// One fault-free test over the shared parse (the parse-once path).
fn run_test(
    server_id: ServerId,
    record: &ServiceRecord,
    svc: &ParsedService,
    client: &dyn ClientSubsystem,
    cache: &DocCache,
    obs: Option<&Obs>,
) -> JournalCell {
    let info = client.info();
    let outcome = cache.generate(client, svc);
    classify_outcome(server_id, record, info, outcome, obs)
}

/// One test over description *text* — the tool-fidelity path, kept for
/// cache-disabled runs and chaos cells whose faults must reach the
/// real parser.
fn run_test_text(
    server_id: ServerId,
    record: &ServiceRecord,
    wsdl: &str,
    client: &dyn ClientSubsystem,
    obs: Option<&Obs>,
) -> JournalCell {
    let info = client.info();
    let outcome = client.generate(wsdl);
    classify_outcome(server_id, record, info, outcome, obs)
}

/// The classification steps shared by both generation paths, plus the
/// supervision verdict: a cell is *disruptive* (a breaker trigger)
/// when its compiler crashed or its error message classifies as a
/// process-health failure rather than an ordinary diagnostic.
fn classify_outcome(
    server_id: ServerId,
    record: &ServiceRecord,
    info: wsinterop_frameworks::client::ClientInfo,
    outcome: wsinterop_frameworks::client::GenOutcome,
    obs: Option<&Obs>,
) -> JournalCell {
    let mut test = TestRecord {
        server: server_id,
        client: info.id,
        fqcn: record.fqcn.clone(),
        gen_warning: !outcome.warnings.is_empty(),
        gen_error: outcome.error.is_some(),
        compile_ran: false,
        compile_warning: false,
        compile_error: false,
        compiler_crashed: false,
        instantiation: None,
    };

    if let Some(bundle) = &outcome.artifacts {
        // The compile span covers artifact classification only —
        // compilation for static clients, instantiation for dynamic
        // ones. Cells that never produced artifacts have no compile
        // phase to time.
        let span = obs.map(|o| {
            o.begin_phase(
                TracePhase::Compile,
                server_id.name(),
                Some(info.id.name()),
                &record.fqcn,
            )
        });
        match info.compilation {
            CompilationMode::Dynamic => {
                // Classification step for dynamic clients: instantiate
                // the client object and check it is actually usable.
                if outcome.error.is_none() {
                    let check = instantiate(bundle);
                    let kind = if !check.constructed {
                        InstantiationKind::Failed
                    } else if check.empty_client() {
                        InstantiationKind::Empty
                    } else {
                        InstantiationKind::Usable
                    };
                    test.instantiation = Some(kind);
                    match kind {
                        InstantiationKind::Empty => test.gen_warning = true,
                        InstantiationKind::Failed => test.gen_error = true,
                        InstantiationKind::Usable => {}
                    }
                }
            }
            _ => {
                if let Some(compiler) = compiler_for(bundle.language) {
                    let compiled = compiler.compile(bundle);
                    test.compile_ran = true;
                    test.compile_warning = compiled.warning_count() > 0;
                    test.compile_error = !compiled.success();
                    test.compiler_crashed = compiled.crashed;
                }
            }
        }
        if let (Some(o), Some(span)) = (obs, span) {
            let outcome_label = if test.compiler_crashed {
                "crashed"
            } else if test.compile_error
                || test.instantiation == Some(InstantiationKind::Failed)
            {
                "error"
            } else if test.compile_warning
                || test.instantiation == Some(InstantiationKind::Empty)
            {
                "warning"
            } else {
                "success"
            };
            o.end_phase(
                TracePhase::Compile,
                server_id.name(),
                Some(info.id.name()),
                &record.fqcn,
                outcome_label,
                None,
                0,
                false,
                span,
            );
        }
    }

    let disruptive = test.compiler_crashed
        || outcome
            .error
            .as_deref()
            .is_some_and(|m| classify_error(m) == ErrorClass::Disruptive);
    JournalCell {
        record: test,
        breaker_skipped: false,
        disruptive,
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_frameworks::client::ClientId;
    use wsinterop_frameworks::server::ServerId;

    #[test]
    fn sampled_campaign_has_consistent_shape() {
        let results = Campaign::sampled(97).run();
        // Every deployed service produced exactly 11 tests.
        let deployed: usize = ServerId::ALL
            .iter()
            .map(|&s| results.deployed(s))
            .sum();
        assert_eq!(results.tests.len(), deployed * 11);
        // Tests never report compilation without artifacts.
        for t in &results.tests {
            if t.compile_ran {
                assert!(matches!(
                    t.client,
                    ClientId::Metro
                        | ClientId::Axis1
                        | ClientId::Axis2
                        | ClientId::Cxf
                        | ClientId::JBossWs
                        | ClientId::DotnetCs
                        | ClientId::DotnetVb
                        | ClientId::DotnetJs
                        | ClientId::Gsoap
                ));
            }
            if t.instantiation.is_some() {
                assert!(matches!(t.client, ClientId::Zend | ClientId::Suds));
            }
        }
    }

    #[test]
    fn subset_campaigns_restrict_servers_and_clients() {
        let results = Campaign::sampled(149)
            .with_servers(&[ServerId::Metro])
            .with_clients(&[ClientId::Axis1, ClientId::Suds])
            .run();
        assert!(results.tests.iter().all(|t| t.server == ServerId::Metro));
        assert!(results
            .tests
            .iter()
            .all(|t| matches!(t.client, ClientId::Axis1 | ClientId::Suds)));
        let deployed = results.deployed(ServerId::Metro);
        assert_eq!(results.tests.len(), deployed * 2);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = Campaign::sampled(0);
    }

    #[test]
    fn cached_and_uncached_campaigns_are_bit_identical() {
        let cached = Campaign::sampled(149).with_threads(4).run();
        let uncached = Campaign::sampled(149)
            .with_threads(3)
            .with_doc_cache(false)
            .run();
        assert_eq!(cached.services, uncached.services);
        assert_eq!(cached.tests, uncached.tests);
    }

    #[test]
    fn cached_and_uncached_chaos_campaigns_are_bit_identical() {
        // Under a fault plan, corrupted-WSDL sites bypass the memo and
        // generation cells keep the text path — so the cache must be
        // invisible to both the records and the fault accounting.
        let (cached, cached_report, stats) = Campaign::sampled(97)
            .with_faults(FaultPlan::seeded(42))
            .run_with_stats();
        let (uncached, uncached_report) = Campaign::sampled(97)
            .with_faults(FaultPlan::seeded(42))
            .with_doc_cache(false)
            .run_with_report();
        assert_eq!(cached.services, uncached.services);
        assert_eq!(cached.tests, uncached.tests);
        assert_eq!(cached_report, uncached_report);
        // The seeded plan actually damaged some descriptions, and those
        // parses stayed out of the memo.
        assert!(stats.fault_bypasses > 0, "{stats:?}");
        assert!(stats.text_generates > 0, "{stats:?}");
    }

    #[test]
    fn cache_accounting_bounds_hold() {
        let (results, _, stats) = Campaign::sampled(97).run_with_stats();
        let deployed = results.services.iter().filter(|s| s.deployed).count();
        assert!(deployed > 0);
        // Parse-once: one parse per distinct description and no more,
        // never more than one per deployed service; everything else is
        // a memo hit.
        assert_eq!(stats.fault_bypasses, 0);
        assert_eq!(stats.text_generates, 0);
        assert_eq!(stats.parses, stats.distinct_docs);
        assert!(stats.parses <= deployed);
        assert_eq!(stats.parses + stats.doc_memo_hits, deployed);
        // Every test cell either executed `generate_from` once per
        // (client, document) or replayed the memoized outcome.
        assert_eq!(stats.gen_runs + stats.gen_memo_hits, results.tests.len());
        assert!(stats.gen_runs <= 11 * stats.distinct_docs);

        // The historical pipeline parses per consumer: one WS-I parse
        // plus eleven client parses per deployed service.
        let (_, _, uncached) = Campaign::sampled(97)
            .with_doc_cache(false)
            .run_with_stats();
        assert_eq!(uncached.parses, 12 * deployed);
        assert_eq!(uncached.doc_memo_hits, 0);
        assert_eq!(uncached.gen_memo_hits, 0);
        assert_eq!(uncached.text_generates, 11 * deployed);
    }

    #[test]
    fn strided_runs_are_deterministic() {
        let a = Campaign::sampled(149).with_threads(3).run();
        let b = Campaign::sampled(149).with_threads(7).run();
        assert_eq!(a.services.len(), b.services.len());
        assert_eq!(a.tests.len(), b.tests.len());
        assert_eq!(a.tests, b.tests);
    }

    #[test]
    fn faultless_plan_report_is_empty_and_results_match_baseline() {
        let baseline = Campaign::sampled(199).run();
        let (results, report) = Campaign::sampled(199)
            .with_faults(FaultPlan::silent(5))
            .run_with_report();
        assert_eq!(report.injected_total(), 0);
        assert_eq!(report.retries_spent, 0);
        assert_eq!(results.services, baseline.services);
        assert_eq!(results.tests, baseline.tests);
    }

    #[test]
    fn transient_refusals_within_budget_are_masked() {
        // Force a transient refusal at one deploy site; with the
        // default budget (2 retries) a 1–3-failure fault either
        // recovers (masked) or exhausts the budget (detected) — but it
        // must always be accounted and never panic the run.
        let fqcn = "java.lang.String";
        let plan = FaultPlan::silent(9).force_at(
            FaultKind::TransientDeployRefusal,
            deploy_site(ServerId::Metro, fqcn),
        );
        let (results, report) = Campaign::sampled(1)
            .with_servers(&[ServerId::Metro])
            .with_clients(&[ClientId::Metro])
            .with_faults(plan)
            .run_with_report();
        let counts = report.counts(FaultKind::TransientDeployRefusal);
        assert_eq!(counts.injected, 1);
        assert_eq!(counts.detected + counts.masked, 1);
        assert!(report.retries_spent >= 1);
        let record = results
            .services
            .iter()
            .find(|s| s.fqcn == fqcn)
            .expect("record exists");
        // Either the retries recovered it (deployed) or the budget ran
        // out (refused) — in both cases the campaign shape holds.
        assert_eq!(
            results.tests.iter().filter(|t| t.fqcn == fqcn).count(),
            usize::from(record.deployed)
        );
    }
}
