//! Result records for the two campaign phases.

use wsinterop_frameworks::client::ClientId;
use wsinterop_frameworks::server::ServerId;

/// Outcome of the Service Description Generation step for one service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRecord {
    /// The hosting server subsystem.
    pub server: ServerId,
    /// The class the echo service was generated from.
    pub fqcn: String,
    /// Whether the platform deployed the service and published a WSDL.
    pub deployed: bool,
    /// WS-I Basic Profile conformance of the published WSDL
    /// (`None` when the service was not deployed).
    pub wsi_conformant: Option<bool>,
    /// The classification step flagged this description: a WS-I
    /// failure, or an advisory finding such as an operation-less port
    /// type (the paper's Fig. 4 "Service Description Generation
    /// Warnings").
    pub description_warning: bool,
}

/// How a dynamic-language client's instantiation check ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstantiationKind {
    /// Proxy constructed with at least one invocable method.
    Usable,
    /// Proxy constructed but exposes no methods (the paper's
    /// "client objects without methods").
    Empty,
    /// Proxy could not be constructed.
    Failed,
}

/// Outcome of one client-versus-service test (one of the paper's
/// 79 629 tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRecord {
    /// The hosting server subsystem.
    pub server: ServerId,
    /// The consuming client subsystem.
    pub client: ClientId,
    /// The class under test.
    pub fqcn: String,
    /// The generation step printed at least one warning.
    pub gen_warning: bool,
    /// The generation step failed.
    pub gen_error: bool,
    /// The compilation step ran (artifacts existed and the client's
    /// language is compiled).
    pub compile_ran: bool,
    /// Compilation printed at least one warning.
    pub compile_warning: bool,
    /// Compilation failed (errors or a compiler crash).
    pub compile_error: bool,
    /// The compiler crashed outright (JScript's `131 INTERNAL COMPILER
    /// CRASH`).
    pub compiler_crashed: bool,
    /// Dynamic-language instantiation outcome, when applicable.
    pub instantiation: Option<InstantiationKind>,
}

impl TestRecord {
    /// `true` when any step of this test surfaced an error.
    pub fn any_error(&self) -> bool {
        self.gen_error || self.compile_error
    }

    /// `true` when any step surfaced a warning (but see
    /// [`TestRecord::any_error`] — a test can have both).
    pub fn any_warning(&self) -> bool {
        self.gen_warning || self.compile_warning
    }

    /// `true` when the client and server subsystems belong to the same
    /// framework (Metro↔Metro, JBossWS↔JBossWS, .NET↔WCF).
    pub fn same_framework(&self) -> bool {
        self.client.framework_of() == Some(self.server)
    }
}

/// Everything a campaign run produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignResults {
    /// Per-service deployment records (Preparation + step a).
    pub services: Vec<ServiceRecord>,
    /// Per-test records (steps b–d).
    pub tests: Vec<TestRecord>,
}

impl CampaignResults {
    /// Number of candidate services (classes) per server.
    pub fn created(&self, server: ServerId) -> usize {
        self.services.iter().filter(|s| s.server == server).count()
    }

    /// Number of deployed services per server.
    pub fn deployed(&self, server: ServerId) -> usize {
        self.services
            .iter()
            .filter(|s| s.server == server && s.deployed)
            .count()
    }

    /// Tests that ran against one server.
    pub fn tests_for(&self, server: ServerId) -> impl Iterator<Item = &TestRecord> {
        self.tests.iter().filter(move |t| t.server == server)
    }

    /// Tests for one (server, client) cell of Table III.
    pub fn cell(
        &self,
        server: ServerId,
        client: ClientId,
    ) -> impl Iterator<Item = &TestRecord> {
        self.tests
            .iter()
            .filter(move |t| t.server == server && t.client == client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(server: ServerId, client: ClientId) -> TestRecord {
        TestRecord {
            server,
            client,
            fqcn: "x.Y".into(),
            gen_warning: false,
            gen_error: false,
            compile_ran: false,
            compile_warning: false,
            compile_error: false,
            compiler_crashed: false,
            instantiation: None,
        }
    }

    #[test]
    fn same_framework_detection() {
        assert!(record(ServerId::Metro, ClientId::Metro).same_framework());
        assert!(record(ServerId::WcfDotNet, ClientId::DotnetJs).same_framework());
        assert!(!record(ServerId::Metro, ClientId::Axis1).same_framework());
        assert!(!record(ServerId::JBossWs, ClientId::Metro).same_framework());
    }

    #[test]
    fn error_and_warning_flags() {
        let mut r = record(ServerId::Metro, ClientId::Axis1);
        assert!(!r.any_error());
        r.compile_error = true;
        assert!(r.any_error());
        r.gen_warning = true;
        assert!(r.any_warning());
    }

    #[test]
    fn results_filtering() {
        let mut results = CampaignResults::default();
        results.services.push(ServiceRecord {
            server: ServerId::Metro,
            fqcn: "a.B".into(),
            deployed: true,
            wsi_conformant: Some(true),
            description_warning: false,
        });
        results.services.push(ServiceRecord {
            server: ServerId::Metro,
            fqcn: "a.C".into(),
            deployed: false,
            wsi_conformant: None,
            description_warning: false,
        });
        results.tests.push(record(ServerId::Metro, ClientId::Suds));
        assert_eq!(results.created(ServerId::Metro), 2);
        assert_eq!(results.deployed(ServerId::Metro), 1);
        assert_eq!(results.tests_for(ServerId::Metro).count(), 1);
        assert_eq!(results.cell(ServerId::Metro, ClientId::Suds).count(), 1);
        assert_eq!(results.cell(ServerId::Metro, ClientId::Axis1).count(), 0);
    }
}
