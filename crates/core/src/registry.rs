//! An in-memory service host: the simulated "application server" the
//! examples and the Communication/Execution extension run against.
//!
//! Services are deployed at endpoint URLs; clients fetch `?wsdl`
//! descriptions and dispatch SOAP envelopes exactly as they would over
//! HTTP, except the wire is a function call. Requests are **validated
//! against the published schema** through the typed data-binding layer
//! before being echoed, so lexically invalid payloads produce faults —
//! the behaviour a real doc/literal stack exhibits.

use std::collections::BTreeMap;
use std::fmt;

use wsinterop_frameworks::server::{DeployOutcome, ServerSubsystem};
use wsinterop_wsdl::de::from_xml_str;
use wsinterop_wsdl::{soap, values, Definitions};
use wsinterop_xml::writer::{write_document, WriteOptions};

/// One hosted service.
#[derive(Debug, Clone)]
struct HostedService {
    wsdl_xml: String,
    defs: Definitions,
}

/// Errors surfaced by the host's "HTTP" surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// No service is bound at the URL (a 404, in HTTP terms).
    NotFound {
        /// The requested endpoint.
        url: String,
    },
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::NotFound { url } => write!(f, "no service at `{url}`"),
        }
    }
}

impl std::error::Error for HostError {}

/// Summary of a bulk deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeploySummary {
    /// Services now reachable.
    pub deployed: usize,
    /// Classes the platform refused.
    pub refused: usize,
}

/// The in-memory service host.
#[derive(Debug, Default)]
pub struct ServiceHost {
    endpoints: BTreeMap<String, HostedService>,
}

impl ServiceHost {
    /// An empty host.
    pub fn new() -> ServiceHost {
        ServiceHost::default()
    }

    /// Deploys one catalog class through a server subsystem, returning
    /// the endpoint URL.
    ///
    /// # Errors
    ///
    /// Returns the platform's refusal reason when the class cannot be
    /// bound.
    pub fn deploy_one(
        &mut self,
        server: &dyn ServerSubsystem,
        fqcn: &str,
    ) -> Result<String, String> {
        let entry = server
            .catalog()
            .get(fqcn)
            .ok_or_else(|| format!("`{fqcn}` is not in the {} catalog", server.info().id))?;
        match server.deploy(entry) {
            DeployOutcome::Refused { reason } => Err(reason),
            DeployOutcome::Deployed { wsdl_xml } => {
                // A description the host cannot parse is a deployment
                // failure surfaced to the caller, never a panic — the
                // chaos campaign deliberately produces such documents.
                let defs = from_xml_str(&wsdl_xml).map_err(|e| {
                    format!("published description is unparseable: {e}")
                })?;
                let url = defs
                    .services
                    .first()
                    .and_then(|s| s.ports.first())
                    .and_then(|p| p.address.clone())
                    .unwrap_or_else(|| format!("http://localhost:8080/{fqcn}"));
                self.endpoints
                    .insert(url.clone(), HostedService { wsdl_xml, defs });
                Ok(url)
            }
        }
    }

    /// Deploys every deployable class of a server's catalog (or the
    /// first `limit` deployable ones).
    pub fn deploy_server(
        &mut self,
        server: &dyn ServerSubsystem,
        limit: Option<usize>,
    ) -> DeploySummary {
        let mut summary = DeploySummary::default();
        for entry in server.catalog().entries() {
            if let Some(limit) = limit {
                if summary.deployed >= limit {
                    break;
                }
            }
            match server.deploy(entry) {
                DeployOutcome::Refused { .. } => summary.refused += 1,
                DeployOutcome::Deployed { wsdl_xml } => {
                    // Unparseable description: the endpoint cannot be
                    // bound, so the host counts it as refused rather
                    // than aborting the bulk deployment.
                    let Ok(defs) = from_xml_str(&wsdl_xml) else {
                        summary.refused += 1;
                        continue;
                    };
                    let url = defs
                        .services
                        .first()
                        .and_then(|s| s.ports.first())
                        .and_then(|p| p.address.clone())
                        .unwrap_or_else(|| format!("http://localhost:8080/{}", entry.fqcn));
                    self.endpoints
                        .insert(url, HostedService { wsdl_xml, defs });
                    summary.deployed += 1;
                }
            }
        }
        summary
    }

    /// Number of live endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// `true` when nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Iterates over the endpoint URLs.
    pub fn endpoints(&self) -> impl Iterator<Item = &str> {
        self.endpoints.keys().map(String::as_str)
    }

    /// The `?wsdl` surface: fetches the published description.
    ///
    /// # Errors
    ///
    /// [`HostError::NotFound`] when nothing is bound at `url`.
    pub fn wsdl(&self, url: &str) -> Result<&str, HostError> {
        self.endpoints
            .get(url)
            .map(|s| s.wsdl_xml.as_str())
            .ok_or_else(|| HostError::NotFound {
                url: url.to_string(),
            })
    }

    /// Dispatches a SOAP request envelope to an endpoint, returning the
    /// response envelope (an echo or a fault).
    ///
    /// The request payload is validated against the published schema
    /// through the typed binding layer; violations produce a `Client`
    /// fault rather than an echo.
    ///
    /// # Errors
    ///
    /// [`HostError::NotFound`] when nothing is bound at `url`; SOAP
    /// faults are returned in-band like a real endpoint would.
    pub fn dispatch(&self, url: &str, request_xml: &str) -> Result<String, HostError> {
        let service = self.endpoints.get(url).ok_or_else(|| HostError::NotFound {
            url: url.to_string(),
        })?;
        let compact = WriteOptions::compact();

        // Schema validation of the incoming payload (when the document
        // declares a typed echo parameter).
        if values::echo_parameter_type(&service.defs).is_some() {
            if let Err(e) = values::typed_payload_value(&service.defs, request_xml) {
                return Ok(write_document(
                    &soap::fault("Client", &format!("payload rejected: {e}")),
                    &compact,
                ));
            }
        }
        Ok(crate::exchange::serve_echo(&service.defs, request_xml))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsinterop_frameworks::server::{JBossWs, Metro, WcfDotNet};
    use wsinterop_wsdl::values::Value;
    use wsinterop_xsd::BuiltIn;

    #[test]
    fn deploy_fetch_dispatch_cycle() {
        let mut host = ServiceHost::new();
        let url = host.deploy_one(&Metro, "java.lang.String").unwrap();
        let wsdl = host.wsdl(&url).unwrap().to_string();
        let defs = from_xml_str(&wsdl).unwrap();
        let request = soap::request(&defs, "echo", "hello").unwrap();
        let response = host
            .dispatch(&url, &write_document(&request, &WriteOptions::compact()))
            .unwrap();
        assert!(!soap::is_fault(&response), "{response}");
        assert_eq!(soap::unwrap_single_value(&response).unwrap(), "hello");
    }

    #[test]
    fn typed_dispatch_validates_payloads() {
        let mut host = ServiceHost::new();
        let url = host.deploy_one(&Metro, "java.util.Date").unwrap();
        let defs = from_xml_str(host.wsdl(&url).unwrap()).unwrap();
        let ty = values::echo_parameter_type(&defs).unwrap();
        let good = values::sample_value(&defs, &ty).unwrap();
        let request = values::typed_request(&defs, "echo", &good).unwrap();
        let response = host
            .dispatch(&url, &write_document(&request, &WriteOptions::compact()))
            .unwrap();
        assert!(!soap::is_fault(&response), "{response}");
        // The echoed payload carries the same typed value back.
        let echoed = values::typed_payload_value(&defs, &response).unwrap();
        assert_eq!(echoed, good);
        let _ = Value::Nil; // keep the typed API imported
    }

    #[test]
    fn unknown_endpoint_is_not_found() {
        let host = ServiceHost::new();
        assert!(matches!(
            host.wsdl("http://nowhere/x"),
            Err(HostError::NotFound { .. })
        ));
        assert!(host.dispatch("http://nowhere/x", "<x/>").is_err());
    }

    #[test]
    fn bulk_deploy_counts() {
        let mut host = ServiceHost::new();
        let summary = host.deploy_server(&JBossWs, Some(25));
        assert_eq!(summary.deployed, 25);
        assert!(host.len() >= 25);
        assert!(!host.is_empty());
    }

    #[test]
    fn wcf_endpoint_hosts_dotnet_services() {
        let mut host = ServiceHost::new();
        let url = host
            .deploy_one(&WcfDotNet, "System.Text.StringBuilder")
            .unwrap();
        assert!(host.wsdl(&url).unwrap().contains("<s:schema"));
    }

    #[test]
    fn refusal_reports_reason() {
        let mut host = ServiceHost::new();
        let err = host.deploy_one(&Metro, "java.util.List").unwrap_err();
        assert!(err.contains("JAXB"), "{err}");
    }

    #[test]
    fn dispatch_lexical_violation_faults() {
        // Hand-built envelope carrying a lexically invalid gYearMonth —
        // bypasses the client binder, so the *server-side* validation
        // must catch it.
        let mut host = ServiceHost::new();
        let url = host
            .deploy_one(&Metro, "javax.xml.datatype.XMLGregorianCalendar")
            .unwrap();
        let defs = from_xml_str(host.wsdl(&url).unwrap()).unwrap();
        let ty = values::echo_parameter_type(&defs).unwrap();
        let good = values::sample_value(&defs, &ty).unwrap();
        let request = values::typed_request(&defs, "echo", &good).unwrap();
        let good_xml = write_document(&request, &WriteOptions::compact());
        assert!(good_xml.contains("<yearMonth>"), "{good_xml}");
        let bad_xml = good_xml.replace(
            &format!("<yearMonth>{}</yearMonth>", wsinterop_xsd::lexical::sample(BuiltIn::GYearMonth)),
            "<yearMonth>not-a-year-month</yearMonth>",
        );
        assert_ne!(good_xml, bad_xml);
        let response = host.dispatch(&url, &bad_xml).unwrap();
        assert!(soap::is_fault(&response), "{response}");
        // The untampered request echoes fine.
        let ok = host.dispatch(&url, &good_xml).unwrap();
        assert!(!soap::is_fault(&ok), "{ok}");
    }
}
