//! The crash-safe campaign journal: a write-ahead log of completed
//! campaign cells.
//!
//! The campaign's 79 629 cells are independent (service × client)
//! outcomes, so losing a run to a crash, SIGINT or deadline blow-up is
//! pure waste: every already-classified cell was a pure function of the
//! campaign configuration and would be recomputed bit-identically. The
//! journal makes that re-entrancy real:
//!
//! * every completed test cell is appended as one length-prefixed,
//!   FNV-1a-checksummed record (the same hash family as
//!   [`crate::doccache::content_hash`] and the fault plan's site hash);
//! * the file header pins the **campaign config hash** — servers,
//!   clients, stride, fault plan, resilience budget, breaker — so a
//!   journal can never be replayed into a differently-configured run;
//! * the reader is **corruption-tolerant**: a torn tail (the expected
//!   state after a kill mid-write) or a flipped byte truncates the log
//!   at the last fully-valid record instead of erroring, and decoding
//!   never panics;
//! * resuming truncates the torn tail and appends only newly-executed
//!   cells, so a journal converges to exactly one record per cell.
//!
//! Replayed cells re-account their fault-plan contributions (injection
//! decisions are pure functions of `(seed, kind, site)`), which is what
//! makes an interrupted-then-resumed chaos campaign bit-identical to an
//! uninterrupted one — records *and* [`crate::faults::FaultReport`].
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! header  := magic "WSIJRNL\x01" (8) | version u16 LE | config_hash u64 LE
//!            | fnv1a(previous 18 bytes) u64 LE
//! record  := payload_len u32 LE | payload | fnv1a(payload) u64 LE
//! payload := cell | fuzz-repro | fuzz-unit        (discriminated on byte 0)
//! cell    := server u8 (0–3) | client u8 | flags u16 LE | instantiation u8
//!            | fqcn_len u16 LE | fqcn utf-8 bytes
//! fuzz-repro := 0xF5 | server u8 | client u8 | outcome u8 | case_index u32 LE
//!            | seed u64 LE | digest u64 LE | fqcn_len u16 LE | fqcn
//!            | tape_len u32 LE | tape_len × choice u32 LE
//! fuzz-unit  := 0xF6 | server u8 | fqcn_len u16 LE | fqcn | n u32 LE
//!            | n × outcome u8
//! ```
//!
//! All integers are little-endian; enum codes are frozen (append-only)
//! so journals stay readable across releases. The two fuzz payloads
//! (PR 8) ride the same frame format: byte 0 of a cell payload is a
//! server code (0–3), so the tags `0xF5`/`0xF6` can never collide with
//! a valid cell. A fuzz *unit* (all case outcomes for one
//! server × service) is appended as one atomic batch — its shrunk
//! reproducer frames immediately followed by the unit frame — so the
//! reader treats reproducers as *pending* until their unit frame
//! commits them; a tail of uncommitted reproducers is truncated on
//! fuzz resume exactly like a torn frame.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wsinterop_frameworks::client::ClientId;
use wsinterop_frameworks::server::ServerId;

use crate::doccache::content_hash;
use crate::sync::lock_unpoisoned;
use crate::results::{InstantiationKind, TestRecord};

/// Journal format magic: `WSIJRNL` plus a format byte.
pub const MAGIC: [u8; 8] = *b"WSIJRNL\x01";

/// Current journal format version.
pub const FORMAT_VERSION: u16 = 1;

/// Byte length of the file header (magic + version + config hash +
/// header checksum).
pub const HEADER_LEN: usize = 8 + 2 + 8 + 8;

/// Upper bound on one record payload; anything larger is corruption by
/// definition (a fqcn is bounded far below this).
const MAX_PAYLOAD: u32 = 1 << 20;

/// Process exit code used by the deterministic mid-run kill switch
/// (`--halt-after-cells`), CI's stand-in for a SIGKILL.
pub const HALT_EXIT_CODE: u8 = 9;

// Payload flag bits.
const F_GEN_WARNING: u16 = 1 << 0;
const F_GEN_ERROR: u16 = 1 << 1;
const F_COMPILE_RAN: u16 = 1 << 2;
const F_COMPILE_WARNING: u16 = 1 << 3;
const F_COMPILE_ERROR: u16 = 1 << 4;
const F_COMPILER_CRASHED: u16 = 1 << 5;
const F_BREAKER_SKIPPED: u16 = 1 << 6;
const F_DISRUPTIVE: u16 = 1 << 7;

/// Why a journal could not be opened or (for resume) trusted.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file is not a campaign journal (bad magic, short or damaged
    /// header).
    NotAJournal,
    /// The journal was written by an unknown format version.
    UnsupportedVersion(u16),
    /// The journal belongs to a differently-configured campaign and
    /// must not be replayed into this one.
    ConfigMismatch {
        /// The running campaign's config hash.
        expected: u64,
        /// The hash pinned in the journal header.
        found: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::NotAJournal => {
                write!(f, "not a campaign journal (bad or truncated header)")
            }
            JournalError::UnsupportedVersion(v) => {
                write!(f, "unsupported journal format version {v}")
            }
            JournalError::ConfigMismatch { expected, found } => write!(
                f,
                "journal config hash 0x{found:016x} does not match this campaign \
                 (0x{expected:016x}); re-run without --resume to start a fresh journal"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// One journaled campaign cell: the classified record plus the
/// supervision verdicts the breaker needs on replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalCell {
    /// The classified test record, exactly as the campaign emitted it.
    pub record: TestRecord,
    /// The cell was never executed: the per-client circuit breaker was
    /// open and recorded it as a skipped Error outcome.
    pub breaker_skipped: bool,
    /// The cell ended disruptively (isolated panic, blown cell budget,
    /// compiler crash or a crash-class generation error) — the breaker
    /// trigger taxonomy.
    pub disruptive: bool,
}

/// Frozen payload tag for a shrunk fuzz reproducer record.
pub const FUZZ_REPRO_TAG: u8 = 0xF5;

/// Frozen payload tag for a fuzz unit-outcome record.
pub const FUZZ_UNIT_TAG: u8 = 0xF6;

/// Number of defined fuzz outcome codes (see `core::fuzz`); anything
/// `>=` this is corruption. The journal stores outcomes as raw bytes so
/// the on-disk format does not depend on the fuzz module's enum.
const FUZZ_OUTCOME_CODES: u8 = 5;

/// One journaled shrunk reproducer: everything needed to replay a
/// failing fuzz case from `(seed, tape)` alone, plus a digest of the
/// shrunk request for artifact identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReproRecord {
    /// Server whose deployed service the case was generated against.
    pub server: ServerId,
    /// Client the outcome is attributed to in the 11×3 table.
    pub client: ClientId,
    /// Raw fuzz outcome code (`core::fuzz::FuzzOutcome::code`).
    pub outcome: u8,
    /// Index of the case within its unit (`0..cases`).
    pub case_index: u32,
    /// The per-case generator seed the tape replays under.
    pub seed: u64,
    /// [`content_hash`] of the shrunk request envelope.
    pub digest: u64,
    /// Fully-qualified class name of the fuzzed service.
    pub fqcn: String,
    /// The shrunk choice tape; replaying it under `seed` rebuilds the
    /// minimal failing request bit-identically.
    pub tape: Vec<u32>,
}

/// One journaled fuzz unit: the outcome code of every case generated
/// against one `server × service`, in case order. Client attribution is
/// positional (`case i` exercises client `i % 11`), so the full 11×3
/// outcome table rebuilds from these records alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzUnitRecord {
    /// Server whose deployed service was fuzzed.
    pub server: ServerId,
    /// Fully-qualified class name of the fuzzed service.
    pub fqcn: String,
    /// Raw outcome code per case, in case order.
    pub outcomes: Vec<u8>,
}

// --- enum codes (frozen; append-only) -------------------------------

fn server_code(id: ServerId) -> u8 {
    match id {
        ServerId::Metro => 0,
        ServerId::JBossWs => 1,
        ServerId::WcfDotNet => 2,
        ServerId::Axis2Java => 3,
    }
}

fn server_from(code: u8) -> Option<ServerId> {
    Some(match code {
        0 => ServerId::Metro,
        1 => ServerId::JBossWs,
        2 => ServerId::WcfDotNet,
        3 => ServerId::Axis2Java,
        _ => return None,
    })
}

fn client_code(id: ClientId) -> u8 {
    match id {
        ClientId::Metro => 0,
        ClientId::Axis1 => 1,
        ClientId::Axis2 => 2,
        ClientId::Cxf => 3,
        ClientId::JBossWs => 4,
        ClientId::DotnetCs => 5,
        ClientId::DotnetVb => 6,
        ClientId::DotnetJs => 7,
        ClientId::Gsoap => 8,
        ClientId::Zend => 9,
        ClientId::Suds => 10,
    }
}

fn client_from(code: u8) -> Option<ClientId> {
    Some(match code {
        0 => ClientId::Metro,
        1 => ClientId::Axis1,
        2 => ClientId::Axis2,
        3 => ClientId::Cxf,
        4 => ClientId::JBossWs,
        5 => ClientId::DotnetCs,
        6 => ClientId::DotnetVb,
        7 => ClientId::DotnetJs,
        8 => ClientId::Gsoap,
        9 => ClientId::Zend,
        10 => ClientId::Suds,
        _ => return None,
    })
}

fn instantiation_code(kind: Option<InstantiationKind>) -> u8 {
    match kind {
        None => 0,
        Some(InstantiationKind::Usable) => 1,
        Some(InstantiationKind::Empty) => 2,
        Some(InstantiationKind::Failed) => 3,
    }
}

fn instantiation_from(code: u8) -> Option<Option<InstantiationKind>> {
    Some(match code {
        0 => None,
        1 => Some(InstantiationKind::Usable),
        2 => Some(InstantiationKind::Empty),
        3 => Some(InstantiationKind::Failed),
        _ => return None,
    })
}

// --- encode / decode ------------------------------------------------

/// Encodes one cell as a complete record frame (length prefix, payload,
/// checksum), ready to append.
pub fn encode_cell(cell: &JournalCell) -> Vec<u8> {
    let mut frame = Vec::new();
    encode_cell_into(cell, &mut frame);
    frame
}

/// Encodes one cell into a caller-provided frame buffer (cleared
/// first). [`JournalWriter::append`] reuses one buffer per thread, so
/// the steady-state append path allocates nothing.
pub fn encode_cell_into(cell: &JournalCell, frame: &mut Vec<u8>) {
    let r = &cell.record;
    let mut flags = 0u16;
    for (bit, on) in [
        (F_GEN_WARNING, r.gen_warning),
        (F_GEN_ERROR, r.gen_error),
        (F_COMPILE_RAN, r.compile_ran),
        (F_COMPILE_WARNING, r.compile_warning),
        (F_COMPILE_ERROR, r.compile_error),
        (F_COMPILER_CRASHED, r.compiler_crashed),
        (F_BREAKER_SKIPPED, cell.breaker_skipped),
        (F_DISRUPTIVE, cell.disruptive),
    ] {
        if on {
            flags |= bit;
        }
    }
    let fqcn = r.fqcn.as_bytes();
    let payload_len = 7 + fqcn.len();
    frame.clear();
    frame.reserve(4 + payload_len + 8);
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.push(server_code(r.server));
    frame.push(client_code(r.client));
    frame.extend_from_slice(&flags.to_le_bytes());
    frame.push(instantiation_code(r.instantiation));
    frame.extend_from_slice(&(fqcn.len() as u16).to_le_bytes());
    frame.extend_from_slice(fqcn);
    let checksum = content_hash(&frame[4..]);
    frame.extend_from_slice(&checksum.to_le_bytes());
}

/// Decodes one record payload. `None` means corruption (unknown codes,
/// length mismatch, invalid UTF-8) — the reader truncates there.
pub fn decode_payload(payload: &[u8]) -> Option<JournalCell> {
    if payload.len() < 7 {
        return None;
    }
    let server = server_from(payload[0])?;
    let client = client_from(payload[1])?;
    let flags = u16::from_le_bytes([payload[2], payload[3]]);
    if flags & !(F_GEN_WARNING
        | F_GEN_ERROR
        | F_COMPILE_RAN
        | F_COMPILE_WARNING
        | F_COMPILE_ERROR
        | F_COMPILER_CRASHED
        | F_BREAKER_SKIPPED
        | F_DISRUPTIVE)
        != 0
    {
        return None;
    }
    let instantiation = instantiation_from(payload[4])?;
    let fqcn_len = u16::from_le_bytes([payload[5], payload[6]]) as usize;
    if payload.len() != 7 + fqcn_len {
        return None;
    }
    let fqcn = std::str::from_utf8(&payload[7..]).ok()?.to_string();
    Some(JournalCell {
        record: TestRecord {
            server,
            client,
            fqcn,
            gen_warning: flags & F_GEN_WARNING != 0,
            gen_error: flags & F_GEN_ERROR != 0,
            compile_ran: flags & F_COMPILE_RAN != 0,
            compile_warning: flags & F_COMPILE_WARNING != 0,
            compile_error: flags & F_COMPILE_ERROR != 0,
            compiler_crashed: flags & F_COMPILER_CRASHED != 0,
            instantiation,
        },
        breaker_skipped: flags & F_BREAKER_SKIPPED != 0,
        disruptive: flags & F_DISRUPTIVE != 0,
    })
}

/// Appends one complete frame (length prefix, payload, checksum) to a
/// caller-owned buffer — the shared framing behind the fuzz encoders,
/// which batch several frames into one atomic `write_all`.
fn push_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.reserve(12 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&content_hash(payload).to_le_bytes());
}

/// Encodes one shrunk reproducer as a complete record frame.
pub fn encode_fuzz_repro(r: &FuzzReproRecord) -> Vec<u8> {
    let fqcn = r.fqcn.as_bytes();
    let mut payload = Vec::with_capacity(30 + fqcn.len() + 4 * r.tape.len());
    payload.push(FUZZ_REPRO_TAG);
    payload.push(server_code(r.server));
    payload.push(client_code(r.client));
    payload.push(r.outcome);
    payload.extend_from_slice(&r.case_index.to_le_bytes());
    payload.extend_from_slice(&r.seed.to_le_bytes());
    payload.extend_from_slice(&r.digest.to_le_bytes());
    payload.extend_from_slice(&(fqcn.len() as u16).to_le_bytes());
    payload.extend_from_slice(fqcn);
    payload.extend_from_slice(&(r.tape.len() as u32).to_le_bytes());
    for choice in &r.tape {
        payload.extend_from_slice(&choice.to_le_bytes());
    }
    let mut frame = Vec::new();
    push_frame(&mut frame, &payload);
    frame
}

/// Decodes a [`FUZZ_REPRO_TAG`] payload. `None` means corruption — the
/// reader truncates there, same as a damaged cell.
pub fn decode_fuzz_repro(payload: &[u8]) -> Option<FuzzReproRecord> {
    if payload.len() < 30 || payload[0] != FUZZ_REPRO_TAG {
        return None;
    }
    let server = server_from(payload[1])?;
    let client = client_from(payload[2])?;
    let outcome = payload[3];
    if outcome >= FUZZ_OUTCOME_CODES {
        return None;
    }
    let case_index = read_u32_le(payload, 4)?;
    let seed = read_u64_le(payload, 8)?;
    let digest = read_u64_le(payload, 16)?;
    let fqcn_len = u16::from_le_bytes([payload[24], payload[25]]) as usize;
    let fqcn_end = 26usize.checked_add(fqcn_len)?;
    let fqcn = std::str::from_utf8(payload.get(26..fqcn_end)?).ok()?.to_string();
    let tape_len = read_u32_le(payload, fqcn_end)? as usize;
    let tape_start = fqcn_end + 4;
    if payload.len() != tape_start.checked_add(tape_len.checked_mul(4)?)? {
        return None;
    }
    let mut tape = Vec::with_capacity(tape_len);
    for i in 0..tape_len {
        tape.push(read_u32_le(payload, tape_start + 4 * i)?);
    }
    Some(FuzzReproRecord {
        server,
        client,
        outcome,
        case_index,
        seed,
        digest,
        fqcn,
        tape,
    })
}

/// Encodes one fuzz unit-outcome record as a complete record frame.
pub fn encode_fuzz_unit(u: &FuzzUnitRecord) -> Vec<u8> {
    let fqcn = u.fqcn.as_bytes();
    let mut payload = Vec::with_capacity(8 + fqcn.len() + u.outcomes.len());
    payload.push(FUZZ_UNIT_TAG);
    payload.push(server_code(u.server));
    payload.extend_from_slice(&(fqcn.len() as u16).to_le_bytes());
    payload.extend_from_slice(fqcn);
    payload.extend_from_slice(&(u.outcomes.len() as u32).to_le_bytes());
    payload.extend_from_slice(&u.outcomes);
    let mut frame = Vec::new();
    push_frame(&mut frame, &payload);
    frame
}

/// Decodes a [`FUZZ_UNIT_TAG`] payload. `None` means corruption.
pub fn decode_fuzz_unit(payload: &[u8]) -> Option<FuzzUnitRecord> {
    if payload.len() < 8 || payload[0] != FUZZ_UNIT_TAG {
        return None;
    }
    let server = server_from(payload[1])?;
    let fqcn_len = u16::from_le_bytes([payload[2], payload[3]]) as usize;
    let fqcn_end = 4usize.checked_add(fqcn_len)?;
    let fqcn = std::str::from_utf8(payload.get(4..fqcn_end)?).ok()?.to_string();
    let n = read_u32_le(payload, fqcn_end)? as usize;
    let outcomes_start = fqcn_end + 4;
    if payload.len() != outcomes_start.checked_add(n)? {
        return None;
    }
    let outcomes = payload[outcomes_start..].to_vec();
    if outcomes.iter().any(|&code| code >= FUZZ_OUTCOME_CODES) {
        return None;
    }
    Some(FuzzUnitRecord {
        server,
        fqcn,
        outcomes,
    })
}

fn encode_header(config_hash: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(&MAGIC);
    header[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header[10..18].copy_from_slice(&config_hash.to_le_bytes());
    let checksum = content_hash(&header[..18]);
    header[18..26].copy_from_slice(&checksum.to_le_bytes());
    header
}

// --- reading --------------------------------------------------------

/// Everything a tolerant read recovered from a journal file.
#[derive(Debug)]
pub struct JournalReadOutcome {
    /// The campaign config hash pinned in the header.
    pub config_hash: u64,
    /// Every fully-valid record, in file order.
    pub cells: Vec<JournalCell>,
    /// Byte offset of each record's frame start (parallel to `cells`).
    pub offsets: Vec<u64>,
    /// Length of the valid prefix — resume truncates the file here.
    pub valid_len: u64,
    /// Bytes past the valid prefix (a torn or corrupted tail).
    pub torn_bytes: u64,
    /// Every *committed* fuzz unit record, in file order.
    pub fuzz_units: Vec<FuzzUnitRecord>,
    /// Every committed shrunk reproducer, in file order. Reproducers
    /// whose unit frame never landed (a kill mid-batch) are excluded —
    /// their unit re-executes on resume and re-emits them.
    pub repros: Vec<FuzzReproRecord>,
    /// Length of the *fuzz-committed* prefix: like `valid_len` but also
    /// excluding a trailing run of uncommitted reproducer frames.
    /// [`JournalWriter::resume_fuzz`] truncates here.
    pub fuzz_valid_len: u64,
}

impl JournalReadOutcome {
    /// `true` when the file carried damage past the valid prefix.
    pub fn torn(&self) -> bool {
        self.torn_bytes > 0
    }
}

/// Reads a journal, tolerating a torn or corrupted tail: decoding stops
/// at the first bad frame and never panics. Only a damaged *header*
/// (or a non-journal file) is an error.
pub fn read_journal(path: &Path) -> Result<JournalReadOutcome, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    read_journal_bytes(&bytes)
}

/// Decodes a little-endian `u64` at `at`, or `None` when fewer than
/// 8 bytes remain — the panic-free form of the slice-then-`try_into`
/// idiom (part of the no-`unwrap`-in-core sweep).
fn read_u64_le(bytes: &[u8], at: usize) -> Option<u64> {
    let slice = bytes.get(at..at.checked_add(8)?)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(slice);
    Some(u64::from_le_bytes(buf))
}

/// Little-endian `u32` counterpart of [`read_u64_le`].
fn read_u32_le(bytes: &[u8], at: usize) -> Option<u32> {
    let slice = bytes.get(at..at.checked_add(4)?)?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(slice);
    Some(u32::from_le_bytes(buf))
}

/// [`read_journal`] over an in-memory image (exposed for tests).
pub fn read_journal_bytes(bytes: &[u8]) -> Result<JournalReadOutcome, JournalError> {
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return Err(JournalError::NotAJournal);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    let stored = read_u64_le(bytes, 18).ok_or(JournalError::NotAJournal)?;
    if content_hash(&bytes[..18]) != stored {
        return Err(JournalError::NotAJournal);
    }
    if version != FORMAT_VERSION {
        return Err(JournalError::UnsupportedVersion(version));
    }
    let config_hash = read_u64_le(bytes, 10).ok_or(JournalError::NotAJournal)?;

    let mut cells = Vec::new();
    let mut offsets = Vec::new();
    let mut fuzz_units = Vec::new();
    let mut repros = Vec::new();
    // Reproducers are *pending* until their unit frame commits them —
    // a kill between the two leaves a tail the fuzz resume truncates.
    let mut pending_repros = Vec::new();
    let mut at = HEADER_LEN;
    let mut fuzz_valid_at = HEADER_LEN;
    while let Some(payload_len) = read_u32_le(bytes, at) {
        if payload_len > MAX_PAYLOAD {
            break;
        }
        let payload_len = payload_len as usize;
        let Some(payload) = bytes.get(at + 4..at + 4 + payload_len) else {
            break;
        };
        let Some(sum) = read_u64_le(bytes, at + 4 + payload_len) else {
            break;
        };
        if content_hash(payload) != sum {
            break;
        }
        match payload.first() {
            Some(&FUZZ_REPRO_TAG) => {
                let Some(repro) = decode_fuzz_repro(payload) else {
                    break;
                };
                pending_repros.push(repro);
                at += 12 + payload_len;
            }
            Some(&FUZZ_UNIT_TAG) => {
                let Some(unit) = decode_fuzz_unit(payload) else {
                    break;
                };
                repros.append(&mut pending_repros);
                fuzz_units.push(unit);
                at += 12 + payload_len;
                fuzz_valid_at = at;
            }
            _ => {
                let Some(cell) = decode_payload(payload) else {
                    break;
                };
                offsets.push(at as u64);
                cells.push(cell);
                at += 12 + payload_len;
                if pending_repros.is_empty() {
                    fuzz_valid_at = at;
                }
            }
        }
    }
    Ok(JournalReadOutcome {
        config_hash,
        cells,
        offsets,
        valid_len: at as u64,
        torn_bytes: (bytes.len() - at) as u64,
        fuzz_units,
        repros,
        fuzz_valid_len: fuzz_valid_at as u64,
    })
}

// --- writing --------------------------------------------------------

/// Thread-safe appender for a campaign journal.
///
/// Each record is emitted as one `write_all` of a complete frame, so a
/// kill can only ever tear the *tail* — exactly the damage the reader
/// tolerates. I/O errors are latched (never panicked) and surfaced
/// once, after the run.
pub struct JournalWriter {
    file: Mutex<File>,
    appended: AtomicUsize,
    /// Deterministic kill switch: exit the process (with
    /// [`HALT_EXIT_CODE`]) after this many appends — CI's SIGKILL
    /// stand-in for the resume smoke test.
    halt_after: Option<usize>,
    /// Deterministic hang switch: after this many appends the writer
    /// sleeps forever *holding the file lock*, so every other worker
    /// thread blocks on its next append and the journal stops growing
    /// — the supervisor's heartbeat sees a wedged worker, and kill
    /// tests have a process that is guaranteed alive until killed.
    stall_after: Option<usize>,
    error: Mutex<Option<std::io::Error>>,
    /// Observe-only mirror: when an observer is attached, each append
    /// also bumps `journal_frames_written_total`.
    metrics: Option<std::sync::Arc<crate::obs::MetricsRegistry>>,
    /// Cached handle for `journal_frames_written_total`, so the append
    /// path resolves the instrument name once instead of taking the
    /// registry lock per frame.
    frames_written: crate::obs::LazyCounter,
}

impl fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalWriter")
            .field("appended", &self.appended.load(Ordering::Relaxed))
            .field("halt_after", &self.halt_after)
            .finish_non_exhaustive()
    }
}

impl JournalWriter {
    /// Starts a fresh journal at `path` (truncating any existing file)
    /// pinned to `config_hash`.
    pub fn create(
        path: &Path,
        config_hash: u64,
        halt_after: Option<usize>,
    ) -> Result<JournalWriter, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&encode_header(config_hash))?;
        Ok(JournalWriter {
            file: Mutex::new(file),
            appended: AtomicUsize::new(0),
            halt_after,
            stall_after: None,
            error: Mutex::new(None),
            metrics: None,
            frames_written: crate::obs::LazyCounter::new(),
        })
    }

    /// Resumes an existing journal: reads it tolerantly, verifies the
    /// config hash, truncates the torn tail and reopens for append.
    /// Returns the writer plus everything the read recovered.
    pub fn resume(
        path: &Path,
        config_hash: u64,
        halt_after: Option<usize>,
    ) -> Result<(JournalWriter, JournalReadOutcome), JournalError> {
        JournalWriter::resume_at(path, config_hash, halt_after, false)
    }

    /// [`JournalWriter::resume`] for a fuzz run: truncates at the
    /// *fuzz-committed* prefix ([`JournalReadOutcome::fuzz_valid_len`]),
    /// discarding any trailing reproducer frames whose unit never
    /// landed — that unit re-executes and re-emits them bit-identically.
    pub fn resume_fuzz(
        path: &Path,
        config_hash: u64,
        halt_after: Option<usize>,
    ) -> Result<(JournalWriter, JournalReadOutcome), JournalError> {
        JournalWriter::resume_at(path, config_hash, halt_after, true)
    }

    fn resume_at(
        path: &Path,
        config_hash: u64,
        halt_after: Option<usize>,
        fuzz: bool,
    ) -> Result<(JournalWriter, JournalReadOutcome), JournalError> {
        let read = read_journal(path)?;
        if read.config_hash != config_hash {
            return Err(JournalError::ConfigMismatch {
                expected: config_hash,
                found: read.config_hash,
            });
        }
        let keep = if fuzz { read.fuzz_valid_len } else { read.valid_len };
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(keep)?;
        file.seek(SeekFrom::End(0))?;
        Ok((
            JournalWriter {
                file: Mutex::new(file),
                appended: AtomicUsize::new(0),
                halt_after,
                stall_after: None,
                error: Mutex::new(None),
                metrics: None,
                frames_written: crate::obs::LazyCounter::new(),
            },
            read,
        ))
    }

    /// Appends one cell. Failures are latched for
    /// [`JournalWriter::take_error`]; the campaign itself never aborts
    /// on journal I/O.
    pub fn append(&self, cell: &JournalCell) {
        thread_local! {
            /// Reusable frame-encode buffer: encoding happens outside
            /// the file lock and allocates nothing in steady state.
            static FRAME: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        let staged = FRAME.try_with(|buf| {
            let mut frame = buf.borrow_mut();
            encode_cell_into(cell, &mut frame);
            self.write_frame(&frame);
        });
        if staged.is_err() {
            // TLS gone (thread teardown): fall back to a fresh buffer
            // rather than lose the frame.
            self.write_frame(&encode_cell(cell));
        }
    }

    /// Appends one completed fuzz unit as a single atomic batch: the
    /// unit's shrunk reproducer frames followed by its unit-outcome
    /// frame, all in one `write_all`. The whole batch counts as *one*
    /// append toward the halt/stall switches (`--halt-after-units`
    /// halts between units, never between a reproducer and the unit
    /// frame that commits it), and a kill can only ever tear the tail
    /// of the batch — which the reader's pending-reproducer stash
    /// already treats as uncommitted.
    pub fn append_fuzz_batch(&self, repros: &[FuzzReproRecord], unit: &FuzzUnitRecord) {
        let mut batch = Vec::new();
        for repro in repros {
            batch.extend_from_slice(&encode_fuzz_repro(repro));
        }
        batch.extend_from_slice(&encode_fuzz_unit(unit));
        self.write_frame(&batch);
    }

    /// Writes one already-encoded frame and runs the post-append
    /// bookkeeping (count, metrics mirror, halt/stall switches). The
    /// file lock is held across the write *and* the switches: halt
    /// syncs under it, and stall sleeps forever under it so every
    /// other worker blocks on its next append.
    fn write_frame(&self, frame: &[u8]) {
        // lock-order: L4 (journal file) — may acquire L4.b (error
        // latch) and L0 (metrics registry) below; one complete frame
        // per `write_all`, so a kill can only ever tear the tail.
        let mut file = lock_unpoisoned(&self.file);
        if let Err(e) = file.write_all(frame) {
            // lock-order: L4.b (journal error latch) — under L4.
            let mut slot = lock_unpoisoned(&self.error);
            slot.get_or_insert(e);
            return;
        }
        let n = self.appended.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(metrics) = &self.metrics {
            self.frames_written
                .inc(metrics, "journal_frames_written_total");
        }
        if self.halt_after.is_some_and(|halt| n >= halt) {
            // The deterministic kill: drop dead mid-campaign, exactly
            // like a SIGKILL, leaving the journal behind. The file
            // lock is held, so no frame is ever half-written by a
            // *racing* append (a torn tail can still come from the OS,
            // which the reader tolerates).
            let _ = file.sync_all();
            std::process::exit(i32::from(HALT_EXIT_CODE));
        }
        if self.stall_after.is_some_and(|stall| n >= stall) {
            // The deterministic hang: flush what we have, then sleep
            // forever while holding the file lock. Other worker
            // threads block on their next append, the journal stops
            // growing, and the process stays alive until something
            // external (a supervisor heartbeat, a test's SIGKILL)
            // ends it.
            let _ = file.sync_all();
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }

    /// Attaches the deterministic hang switch: after `stall` appends
    /// the writer sleeps forever holding the file lock (see the field
    /// doc). `None` leaves the writer untouched.
    #[must_use]
    pub fn with_stall_after(mut self, stall: Option<usize>) -> JournalWriter {
        self.stall_after = stall;
        self
    }

    /// Attaches a metrics registry: every subsequent append also
    /// increments `journal_frames_written_total` (observe-only — the
    /// on-disk format and halt semantics are untouched).
    #[must_use]
    pub fn with_metrics(
        mut self,
        metrics: std::sync::Arc<crate::obs::MetricsRegistry>,
    ) -> JournalWriter {
        self.metrics = Some(metrics);
        self
    }

    /// Number of records appended by this writer.
    pub fn appended(&self) -> usize {
        self.appended.load(Ordering::Relaxed)
    }

    /// The first latched I/O error, if any.
    pub fn take_error(&self) -> Option<std::io::Error> {
        // lock-order: L4.b (journal error latch) — leaf here.
        lock_unpoisoned(&self.error).take()
    }
}

/// Per-client record counts for `wsitool journal inspect`.
pub fn per_client_counts(cells: &[JournalCell]) -> BTreeMap<ClientId, usize> {
    let mut counts = BTreeMap::new();
    for cell in cells {
        *counts.entry(cell.record.client).or_insert(0) += 1;
    }
    counts
}

/// Per-server record counts for `wsitool journal inspect --json`.
pub fn per_server_counts(cells: &[JournalCell]) -> BTreeMap<ServerId, usize> {
    let mut counts = BTreeMap::new();
    for cell in cells {
        *counts.entry(cell.record.server).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(fqcn: &str, gen_error: bool) -> JournalCell {
        JournalCell {
            record: TestRecord {
                server: ServerId::Metro,
                client: ClientId::Cxf,
                fqcn: fqcn.to_string(),
                gen_warning: false,
                gen_error,
                compile_ran: !gen_error,
                compile_warning: false,
                compile_error: false,
                compiler_crashed: false,
                instantiation: None,
            },
            breaker_skipped: false,
            disruptive: gen_error,
        }
    }

    fn journal_bytes(cells: &[JournalCell], config_hash: u64) -> Vec<u8> {
        let mut bytes = encode_header(config_hash).to_vec();
        for c in cells {
            bytes.extend_from_slice(&encode_cell(c));
        }
        bytes
    }

    #[test]
    fn frame_roundtrip_preserves_every_field() {
        let mut all = Vec::new();
        for (i, server) in [ServerId::Metro, ServerId::WcfDotNet, ServerId::Axis2Java]
            .into_iter()
            .enumerate()
        {
            let mut c = cell(&format!("com.example.Bean{i}"), i % 2 == 0);
            c.record.server = server;
            c.record.instantiation = instantiation_from((i % 4) as u8).unwrap();
            c.breaker_skipped = i == 1;
            all.push(c);
        }
        let bytes = journal_bytes(&all, 0xfeed_beef);
        let read = read_journal_bytes(&bytes).unwrap();
        assert_eq!(read.config_hash, 0xfeed_beef);
        assert_eq!(read.cells, all);
        assert_eq!(read.torn_bytes, 0);
        assert_eq!(read.valid_len, bytes.len() as u64);
        assert_eq!(read.offsets[0], HEADER_LEN as u64);
    }

    #[test]
    fn torn_tail_truncates_at_last_valid_record() {
        let all = vec![cell("a.A", false), cell("b.B", true), cell("c.C", false)];
        let mut bytes = journal_bytes(&all, 7);
        // Tear the last frame in half and add garbage, as a kill
        // mid-write would.
        let keep = bytes.len() - 9;
        bytes.truncate(keep);
        bytes.extend_from_slice(&[0xff; 3]);
        let read = read_journal_bytes(&bytes).unwrap();
        assert_eq!(read.cells, all[..2]);
        assert!(read.torn());
    }

    #[test]
    fn flipped_byte_mid_file_truncates_without_panicking() {
        let all = vec![cell("a.A", false), cell("b.B", true), cell("c.C", false)];
        let clean = journal_bytes(&all, 7);
        let read = read_journal_bytes(&clean).unwrap();
        let second_frame = read.offsets[1] as usize;
        for at in second_frame..clean.len() {
            let mut damaged = clean.clone();
            damaged[at] ^= 0x5a;
            let out = read_journal_bytes(&damaged).unwrap();
            // Records before the damaged frame always survive; nothing
            // recovered is ever wrong.
            assert!(!out.cells.is_empty(), "flip at {at}");
            for (i, c) in out.cells.iter().enumerate() {
                assert_eq!(c, &all[i], "flip at {at}");
            }
        }
    }

    #[test]
    fn damaged_header_is_an_error_not_a_panic() {
        let bytes = journal_bytes(&[cell("a.A", false)], 7);
        for at in 0..HEADER_LEN {
            let mut damaged = bytes.clone();
            damaged[at] ^= 0x5a;
            assert!(
                matches!(
                    read_journal_bytes(&damaged),
                    Err(JournalError::NotAJournal) | Err(JournalError::UnsupportedVersion(_))
                ),
                "flip at {at}"
            );
        }
        assert!(matches!(
            read_journal_bytes(&bytes[..10]),
            Err(JournalError::NotAJournal)
        ));
        assert!(matches!(
            read_journal_bytes(b"not a journal at all, sorry"),
            Err(JournalError::NotAJournal)
        ));
    }

    #[test]
    fn writer_roundtrips_and_resume_rejects_config_mismatch() {
        let path = std::env::temp_dir().join(format!(
            "wsinterop-journal-unit-{}.bin",
            std::process::id()
        ));
        let all = vec![cell("a.A", false), cell("b.B", true)];
        {
            let writer = JournalWriter::create(&path, 99, None).unwrap();
            for c in &all {
                writer.append(c);
            }
            assert_eq!(writer.appended(), 2);
            assert!(writer.take_error().is_none());
        }
        let read = read_journal(&path).unwrap();
        assert_eq!(read.cells, all);

        assert!(matches!(
            JournalWriter::resume(&path, 100, None),
            Err(JournalError::ConfigMismatch {
                expected: 100,
                found: 99
            })
        ));

        // Tear the tail, resume, append: the file converges to a clean
        // journal again.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (writer, recovered) = JournalWriter::resume(&path, 99, None).unwrap();
        assert_eq!(recovered.cells, all[..1]);
        assert!(recovered.torn());
        writer.append(&all[1]);
        drop(writer);
        let healed = read_journal(&path).unwrap();
        assert_eq!(healed.cells, all);
        assert!(!healed.torn());
        std::fs::remove_file(&path).ok();
    }

    fn repro(case_index: u32, tape: &[u32]) -> FuzzReproRecord {
        FuzzReproRecord {
            server: ServerId::JBossWs,
            client: ClientId::Gsoap,
            outcome: 3,
            case_index,
            seed: 0xdead_beef_cafe_f00d,
            digest: 0x0123_4567_89ab_cdef,
            fqcn: "java.lang.String".to_string(),
            tape: tape.to_vec(),
        }
    }

    fn unit(outcomes: &[u8]) -> FuzzUnitRecord {
        FuzzUnitRecord {
            server: ServerId::JBossWs,
            fqcn: "java.lang.String".to_string(),
            outcomes: outcomes.to_vec(),
        }
    }

    #[test]
    fn fuzz_frames_roundtrip_alongside_cells() {
        let mut bytes = journal_bytes(&[cell("a.A", false)], 11);
        let r0 = repro(4, &[0, 7, 2]);
        let r1 = repro(9, &[]);
        let u0 = unit(&[0, 0, 3, 1, 4]);
        bytes.extend_from_slice(&encode_fuzz_repro(&r0));
        bytes.extend_from_slice(&encode_fuzz_repro(&r1));
        bytes.extend_from_slice(&encode_fuzz_unit(&u0));
        bytes.extend_from_slice(&encode_cell(&cell("b.B", true)));
        let read = read_journal_bytes(&bytes).unwrap();
        assert_eq!(read.cells.len(), 2);
        assert_eq!(read.repros, vec![r0, r1]);
        assert_eq!(read.fuzz_units, vec![u0]);
        assert_eq!(read.valid_len, bytes.len() as u64);
        assert_eq!(read.fuzz_valid_len, bytes.len() as u64);
        assert!(!read.torn());
    }

    #[test]
    fn uncommitted_repros_are_excluded_and_truncated_on_fuzz_resume() {
        let mut bytes = journal_bytes(&[], 11);
        let committed = repro(1, &[5]);
        bytes.extend_from_slice(&encode_fuzz_repro(&committed));
        bytes.extend_from_slice(&encode_fuzz_unit(&unit(&[0, 3])));
        let committed_len = bytes.len() as u64;
        // A kill between a reproducer frame and its unit frame: the
        // reproducer is structurally valid but uncommitted.
        bytes.extend_from_slice(&encode_fuzz_repro(&repro(7, &[1, 2, 3])));
        let read = read_journal_bytes(&bytes).unwrap();
        assert_eq!(read.repros, vec![committed]);
        assert_eq!(read.fuzz_units.len(), 1);
        assert_eq!(read.valid_len, bytes.len() as u64);
        assert_eq!(read.fuzz_valid_len, committed_len);
        assert!(!read.torn());
    }

    #[test]
    fn damaged_fuzz_frames_truncate_without_panicking() {
        let mut clean = journal_bytes(&[cell("a.A", false)], 11);
        let prefix = clean.len();
        clean.extend_from_slice(&encode_fuzz_repro(&repro(0, &[9, 9])));
        clean.extend_from_slice(&encode_fuzz_unit(&unit(&[2])));
        for at in prefix..clean.len() {
            let mut damaged = clean.clone();
            damaged[at] ^= 0x5a;
            let out = read_journal_bytes(&damaged).unwrap();
            // The cell prefix always survives; nothing recovered is
            // ever wrong.
            assert_eq!(out.cells.len(), 1, "flip at {at}");
            assert!(out.fuzz_valid_len >= prefix as u64, "flip at {at}");
        }
        // Out-of-range outcome codes are corruption, not data.
        let mut bad_unit = journal_bytes(&[], 11);
        bad_unit.extend_from_slice(&encode_fuzz_unit(&unit(&[FUZZ_OUTCOME_CODES])));
        let out = read_journal_bytes(&bad_unit).unwrap();
        assert!(out.fuzz_units.is_empty());
        assert!(out.torn());
    }

    #[test]
    fn fuzz_batch_append_and_resume_converge() {
        let path = std::env::temp_dir().join(format!(
            "wsinterop-journal-fuzz-unit-{}.bin",
            std::process::id()
        ));
        let r = repro(2, &[4, 0, 1]);
        let u0 = unit(&[0, 0, 0, 2]);
        let u1 = unit(&[1, 4]);
        {
            let writer = JournalWriter::create(&path, 42, None).unwrap();
            writer.append_fuzz_batch(&[r.clone()], &u0);
            writer.append_fuzz_batch(&[], &u1);
            // The whole batch is one halt/stall tick.
            assert_eq!(writer.appended(), 2);
            assert!(writer.take_error().is_none());
        }
        let read = read_journal(&path).unwrap();
        assert_eq!(read.repros, vec![r.clone()]);
        assert_eq!(read.fuzz_units, vec![u0.clone(), u1.clone()]);

        // Simulate a kill mid-batch: orphan reproducer on the tail.
        let bytes = std::fs::read(&path).unwrap();
        let mut torn = bytes.clone();
        torn.extend_from_slice(&encode_fuzz_repro(&repro(9, &[8])));
        std::fs::write(&path, &torn).unwrap();
        let (writer, recovered) = JournalWriter::resume_fuzz(&path, 42, None).unwrap();
        assert_eq!(recovered.fuzz_units, vec![u0.clone(), u1.clone()]);
        assert_eq!(recovered.repros, vec![r.clone()]);
        let u2 = unit(&[3]);
        writer.append_fuzz_batch(&[repro(0, &[6])], &u2);
        drop(writer);
        let healed = read_journal(&path).unwrap();
        assert_eq!(healed.fuzz_units, vec![u0, u1, u2]);
        assert_eq!(healed.repros.len(), 2);
        assert!(!healed.torn());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn per_client_counts_group_records() {
        let mut b = cell("b.B", false);
        b.record.client = ClientId::Suds;
        let counts = per_client_counts(&[cell("a.A", false), cell("c.C", true), b]);
        assert_eq!(counts[&ClientId::Cxf], 2);
        assert_eq!(counts[&ClientId::Suds], 1);
    }
}
