//! Deterministic fault injection and campaign resilience.
//!
//! The paper's methodology only works because the campaign *classifies*
//! disruptive behaviour instead of dying on it: every one of the
//! 79 629 tests must end in a Success/Warning/Error verdict even when a
//! subsystem misbehaves. This module turns that contract into an
//! executable experiment (E12, the chaos campaign):
//!
//! * [`FaultPlan`] — a seeded, deterministic plan deciding, per
//!   campaign *site* (a deploy, a test cell, a wire exchange), which
//!   [`FaultKind`] to inject. Decisions are pure functions of
//!   `(seed, kind, site)`, so the same seed produces the same faults
//!   regardless of stride order or worker-thread count.
//! * [`ResilienceConfig`] — the runner's coping budget: bounded
//!   retries with a deterministic backoff schedule for transient
//!   faults, a per-step deadline, and `catch_unwind` panic isolation.
//! * [`FaultReport`] — the accounting: per kind, how many faults were
//!   injected, how many were *detected* (surfaced as a Warning/Error
//!   classification or a refused deployment), and how many were
//!   *masked* (absorbed by retries or harmless to the pipeline), plus
//!   retries spent, virtual backoff, and deadline hits.
//!
//! Time is **virtual**: slow-step faults carry a deterministic
//! simulated duration that is compared against the deadline budget
//! without real sleeping, so chaos campaigns stay fast and their
//! reports bit-reproducible.
//!
//! The *injected* faults modelled here are deliberately distinct from
//! the *modeled* faults of the framework simulations (DESIGN.md §4):
//! modeled faults are the paper's measured platform defects and are
//! always on; injected faults are synthetic disruptions layered on top
//! by wrapping subsystems in [`wsinterop_frameworks::fault`]
//! decorators.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::sync::lock_unpoisoned;
use wsinterop_frameworks::client::{ClientId, ClientSubsystem, GenOutcome};
use wsinterop_frameworks::fault::{
    ClientFaultHook, ServerFaultHook, TRANSIENT_REFUSAL_PREFIX,
};
use wsinterop_frameworks::server::{DeployOutcome, ServerId, ServerSubsystem};
use wsinterop_typecat::TypeEntry;

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Truncate the published WSDL bytes after deployment.
    WsdlTruncation,
    /// Corrupt the published WSDL bytes after deployment (sometimes
    /// malforming the document, sometimes a benign whitespace tweak —
    /// the latter population is what the *masked* column measures).
    WsdlCorruption,
    /// Refuse the first deploy attempt(s) with a retryable I/O-style
    /// error; the resilient runner's retry budget may absorb it.
    TransientDeployRefusal,
    /// Panic inside the client artifact-generation tool.
    ClientGenPanic,
    /// A slow or hanging step, modelled as a deterministic virtual
    /// duration checked against the per-step deadline budget.
    SlowStep,
    /// Wire fault: truncate the request envelope mid-document.
    WireTruncateEnvelope,
    /// Wire fault: rewrite the SOAP envelope namespace.
    WireWrongNamespace,
    /// Wire fault: drop the response on the floor.
    WireDropResponse,
    /// Socket fault: hold the response past the client's read deadline
    /// (applied by the loopback fault proxy, [`crate::wire`]).
    SockDelay,
    /// Socket fault: truncate the response body at byte N and close.
    SockTruncateBody,
    /// Socket fault: reset (RST) the connection mid-body.
    SockReset,
    /// Socket fault: replace the status line with garbage framing.
    SockGarbageStatus,
}

impl FaultKind {
    /// Every kind, in report order.
    pub const ALL: [FaultKind; 12] = [
        FaultKind::WsdlTruncation,
        FaultKind::WsdlCorruption,
        FaultKind::TransientDeployRefusal,
        FaultKind::ClientGenPanic,
        FaultKind::SlowStep,
        FaultKind::WireTruncateEnvelope,
        FaultKind::WireWrongNamespace,
        FaultKind::WireDropResponse,
        FaultKind::SockDelay,
        FaultKind::SockTruncateBody,
        FaultKind::SockReset,
        FaultKind::SockGarbageStatus,
    ];

    fn index(self) -> usize {
        // Exhaustive match instead of a positional lookup: adding a
        // kind without slotting it here (and in `ALL`) fails to
        // compile, and no `.unwrap()` can ever fire.
        match self {
            FaultKind::WsdlTruncation => 0,
            FaultKind::WsdlCorruption => 1,
            FaultKind::TransientDeployRefusal => 2,
            FaultKind::ClientGenPanic => 3,
            FaultKind::SlowStep => 4,
            FaultKind::WireTruncateEnvelope => 5,
            FaultKind::WireWrongNamespace => 6,
            FaultKind::WireDropResponse => 7,
            FaultKind::SockDelay => 8,
            FaultKind::SockTruncateBody => 9,
            FaultKind::SockReset => 10,
            FaultKind::SockGarbageStatus => 11,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::WsdlTruncation => "wsdl-truncation",
            FaultKind::WsdlCorruption => "wsdl-corruption",
            FaultKind::TransientDeployRefusal => "transient-deploy-refusal",
            FaultKind::ClientGenPanic => "client-gen-panic",
            FaultKind::SlowStep => "slow-step",
            FaultKind::WireTruncateEnvelope => "wire-truncate-envelope",
            FaultKind::WireWrongNamespace => "wire-wrong-namespace",
            FaultKind::WireDropResponse => "wire-drop-response",
            FaultKind::SockDelay => "sock-delay",
            FaultKind::SockTruncateBody => "sock-truncate-body",
            FaultKind::SockReset => "sock-reset",
            FaultKind::SockGarbageStatus => "sock-garbage-status",
        })
    }
}

/// A wire-level fault for the Communication/Execution (E9) step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Truncate the request envelope.
    TruncateEnvelope,
    /// Rewrite the SOAP envelope namespace of the request.
    WrongNamespace,
    /// Drop the response.
    DropResponse,
}

impl WireFault {
    /// The [`FaultKind`] this wire fault is accounted under.
    pub fn kind(self) -> FaultKind {
        match self {
            WireFault::TruncateEnvelope => FaultKind::WireTruncateEnvelope,
            WireFault::WrongNamespace => FaultKind::WireWrongNamespace,
            WireFault::DropResponse => FaultKind::WireDropResponse,
        }
    }
}

/// A socket-level fault for the loopback TCP transport, applied to the
/// real wire bytes by the interposed fault proxy
/// ([`crate::wire::FaultProxy`]) — damage the string-level
/// [`WireFault`]s cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFault {
    /// Hold the response for `ms` real milliseconds — past the probe
    /// client's read deadline, so the client observes a timeout.
    DelayPastDeadline {
        /// Real delay in milliseconds (sized above the client's
        /// deadline by the plan).
        ms: u64,
    },
    /// Forward only the first `at` bytes of the response, then close
    /// the connection cleanly (a short read).
    TruncateBody {
        /// Byte offset to cut at (clamped to the response length).
        at: usize,
    },
    /// Abort the connection mid-body so the peer sees a TCP RST.
    ResetMidBody,
    /// Replace the HTTP status line with garbage framing.
    GarbageStatus,
}

impl SocketFault {
    /// The [`FaultKind`] this socket fault is accounted under.
    pub fn kind(self) -> FaultKind {
        match self {
            SocketFault::DelayPastDeadline { .. } => FaultKind::SockDelay,
            SocketFault::TruncateBody { .. } => FaultKind::SockTruncateBody,
            SocketFault::ResetMidBody => FaultKind::SockReset,
            SocketFault::GarbageStatus => FaultKind::SockGarbageStatus,
        }
    }
}

/// Site key for a Service Description Generation step.
pub fn deploy_site(server: ServerId, fqcn: &str) -> String {
    format!("deploy/{server:?}/{fqcn}")
}

/// Site key for one (server, client, service) test cell.
pub fn gen_site(server: ServerId, client: ClientId, fqcn: &str) -> String {
    format!("gen/{server:?}/{client:?}/{fqcn}")
}

/// Site key for one wire exchange.
pub fn wire_site(server: ServerId, fqcn: &str) -> String {
    format!("wire/{server:?}/{fqcn}")
}

/// Site key for the socket-level faults of one loopback exchange.
///
/// The grammar deliberately matches the loopback URL space: the fault
/// proxy rebuilds this key as `"sock" + path` from the request path
/// `/{server:?}/{fqcn}`, so proxy and campaign accounting agree
/// without sharing state.
pub fn sock_site(server: ServerId, fqcn: &str) -> String {
    format!("sock/{server:?}/{fqcn}")
}

/// Site key for one fuzzed (server, service) exchange unit.
///
/// The fuzz driver arms payload-property triggers from this key:
/// [`FaultPlan::decide`] with [`FaultKind::ClientGenPanic`] arms an
/// injected crash and [`FaultPlan::slow_virtual_ms`] arms a virtual
/// hang, both gated on a property of the *generated payload* so the
/// failure is a pure function of the input — and therefore shrinkable.
pub fn fuzz_site(server: ServerId, fqcn: &str) -> String {
    format!("fuzz/{server:?}/{fqcn}")
}

/// A seeded, deterministic fault plan.
///
/// Decisions are pure functions of `(seed, kind, site)`; the plan
/// carries no mutable state and can be shared across runs — two runs
/// under the same plan inject exactly the same faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Injection rate per kind, in permille of sites.
    rates: [u32; FaultKind::ALL.len()],
    /// Sites where a kind is unconditionally injected.
    forced: BTreeSet<(FaultKind, String)>,
}

impl FaultPlan {
    /// A plan with the standard chaos-campaign rates (roughly 1–3 % of
    /// sites per kind).
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::silent(seed);
        plan.rates[FaultKind::WsdlTruncation.index()] = 12;
        plan.rates[FaultKind::WsdlCorruption.index()] = 15;
        plan.rates[FaultKind::TransientDeployRefusal.index()] = 20;
        plan.rates[FaultKind::ClientGenPanic.index()] = 6;
        plan.rates[FaultKind::SlowStep.index()] = 10;
        plan.rates[FaultKind::WireTruncateEnvelope.index()] = 25;
        plan.rates[FaultKind::WireWrongNamespace.index()] = 25;
        plan.rates[FaultKind::WireDropResponse.index()] = 25;
        // Socket faults only fire over the TCP transport; the delay
        // fault costs real wall-clock time per hit, so its rate is the
        // lowest of the family.
        plan.rates[FaultKind::SockDelay.index()] = 8;
        plan.rates[FaultKind::SockTruncateBody.index()] = 15;
        plan.rates[FaultKind::SockReset.index()] = 15;
        plan.rates[FaultKind::SockGarbageStatus.index()] = 15;
        plan
    }

    /// A plan that injects nothing unless told to — the base for
    /// targeted plans built with [`FaultPlan::with_rate`] and
    /// [`FaultPlan::force_at`].
    pub fn silent(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0; FaultKind::ALL.len()],
            forced: BTreeSet::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A canonical fingerprint of the whole plan (seed, rates, forced
    /// sites) — folded into the campaign config hash so a journal can
    /// never be resumed under a different fault plan.
    pub fn fingerprint(&self) -> String {
        format!(
            "seed:{};rates:{:?};forced:{:?}",
            self.seed, self.rates, self.forced
        )
    }

    /// Overrides the injection rate (permille of sites) for one kind.
    #[must_use]
    pub fn with_rate(mut self, kind: FaultKind, per_mille: u32) -> FaultPlan {
        self.rates[kind.index()] = per_mille.min(1000);
        self
    }

    /// Unconditionally injects `kind` at one site (see [`deploy_site`],
    /// [`gen_site`], [`wire_site`] for the key grammar).
    #[must_use]
    pub fn force_at(mut self, kind: FaultKind, site: impl Into<String>) -> FaultPlan {
        self.forced.insert((kind, site.into()));
        self
    }

    /// Number of kinds with a non-zero chance of injection.
    pub fn active_kinds(&self) -> usize {
        let forced: BTreeSet<FaultKind> = self.forced.iter().map(|(k, _)| *k).collect();
        FaultKind::ALL
            .iter()
            .filter(|k| self.rates[k.index()] > 0 || forced.contains(k))
            .count()
    }

    fn hash(&self, kind: FaultKind, site: &str) -> u64 {
        // FNV-1a over the site, mixed with the seed and kind, then a
        // splitmix64 finalizer. Stable across platforms and releases.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in site.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= (kind.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Whether `kind` is injected at `site`.
    pub fn decide(&self, kind: FaultKind, site: &str) -> bool {
        if self.forced.contains(&(kind, site.to_string())) {
            return true;
        }
        let rate = self.rates[kind.index()];
        rate > 0 && self.hash(kind, site) % 1000 < u64::from(rate)
    }

    /// How many initial deploy attempts a transient refusal eats at
    /// `site` (1–3; values above the retry budget become permanent).
    pub fn transient_failures(&self, site: &str) -> u32 {
        1 + (self.hash(FaultKind::TransientDeployRefusal, site) >> 16) as u32 % 3
    }

    /// Virtual duration of a slow step at `site`, when injected.
    pub fn slow_virtual_ms(&self, site: &str) -> Option<u64> {
        if !self.decide(FaultKind::SlowStep, site) {
            return None;
        }
        Some(10 + (self.hash(FaultKind::SlowStep, site) >> 16) % 190)
    }

    /// The wire fault (if any) injected at `site`, first match in
    /// truncate → namespace → drop order.
    pub fn wire_fault(&self, site: &str) -> Option<WireFault> {
        if self.decide(FaultKind::WireTruncateEnvelope, site) {
            Some(WireFault::TruncateEnvelope)
        } else if self.decide(FaultKind::WireWrongNamespace, site) {
            Some(WireFault::WrongNamespace)
        } else if self.decide(FaultKind::WireDropResponse, site) {
            Some(WireFault::DropResponse)
        } else {
            None
        }
    }

    /// The socket fault (if any) injected at `site` by the loopback
    /// fault proxy, first match in delay → truncate → reset → garbage
    /// order. `deadline_ms` is the probe client's read deadline; the
    /// planned delay always overshoots it so an injected delay is
    /// always observable.
    pub fn socket_fault(&self, site: &str, deadline_ms: u64) -> Option<SocketFault> {
        if self.decide(FaultKind::SockDelay, site) {
            let extra = (self.hash(FaultKind::SockDelay, site) >> 16) % 100;
            return Some(SocketFault::DelayPastDeadline {
                ms: deadline_ms + 50 + extra,
            });
        }
        if self.decide(FaultKind::SockTruncateBody, site) {
            // Cut inside the headers or early body; the exact offset is
            // clamped to the message by the proxy.
            let at = 20 + (self.hash(FaultKind::SockTruncateBody, site) >> 16) as usize % 180;
            return Some(SocketFault::TruncateBody { at });
        }
        if self.decide(FaultKind::SockReset, site) {
            return Some(SocketFault::ResetMidBody);
        }
        if self.decide(FaultKind::SockGarbageStatus, site) {
            return Some(SocketFault::GarbageStatus);
        }
        None
    }

    /// Deterministic retry jitter in milliseconds for `attempt` at
    /// `site` — the seeded RNG the resilient HTTP client mixes into its
    /// exponential backoff, so `-j1` and `-j8` runs retry (and
    /// therefore classify) identically.
    pub fn retry_jitter_ms(&self, site: &str, attempt: u32, cap_ms: u64) -> u64 {
        if cap_ms == 0 {
            return 0;
        }
        let h = self
            .hash(FaultKind::SockDelay, site)
            .rotate_left(attempt % 64)
            .wrapping_mul(0x2545_f491_4f6c_dd1d);
        h % cap_ms
    }

    /// Applies the WSDL damage planned for `site` (if any), returning
    /// the damaged document and the kind injected.
    pub fn damage_wsdl(&self, site: &str, wsdl_xml: &str) -> Option<(String, FaultKind)> {
        if self.decide(FaultKind::WsdlTruncation, site) {
            let percent = 30 + (self.hash(FaultKind::WsdlTruncation, site) >> 16) % 51;
            let cut = (wsdl_xml.len() as u64 * percent / 100) as usize;
            let cut = floor_char_boundary(wsdl_xml, cut);
            return Some((wsdl_xml[..cut].to_string(), FaultKind::WsdlTruncation));
        }
        if self.decide(FaultKind::WsdlCorruption, site) {
            let h = self.hash(FaultKind::WsdlCorruption, site);
            let damaged = if h & (1 << 9) == 0 {
                // Malforming corruption: splice an unclosed element at a
                // deterministic position.
                let at = floor_char_boundary(wsdl_xml, (h >> 16) as usize % wsdl_xml.len().max(1));
                format!(
                    "{}<injected-fault>{}",
                    &wsdl_xml[..at],
                    &wsdl_xml[at..]
                )
            } else {
                // Benign corruption: inter-element whitespace only. The
                // document still parses identically — this is the
                // population the `masked` column measures.
                wsdl_xml.replacen("><", ">\n<", 1)
            };
            return Some((damaged, FaultKind::WsdlCorruption));
        }
        None
    }
}

fn floor_char_boundary(s: &str, mut at: usize) -> usize {
    at = at.min(s.len());
    while at > 0 && !s.is_char_boundary(at) {
        at -= 1;
    }
    at
}

/// The runner's coping budget for injected (and real) disruptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Retry budget for transient deploy refusals.
    pub max_retries: u32,
    /// Deterministic backoff schedule (virtual milliseconds per retry;
    /// the last entry repeats). Recorded in the report, never slept.
    pub backoff_ms: Vec<u64>,
    /// Per-step deadline budget in virtual milliseconds; a slow-step
    /// fault exceeding it is classified as an Error.
    pub step_deadline_ms: u64,
    /// Isolate each test with `catch_unwind` so a panicking worker
    /// becomes one Error-classified record instead of a dead campaign.
    pub isolate_panics: bool,
    /// Per-cell watchdog budget in virtual milliseconds. A whole test
    /// cell whose virtual duration exceeds this is killed by the
    /// watchdog and classified as a disruptive Error — the cell-level
    /// extension of `step_deadline_ms`.
    pub cell_budget_ms: u64,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            max_retries: 2,
            backoff_ms: vec![1, 2, 4],
            step_deadline_ms: 50,
            isolate_panics: true,
            cell_budget_ms: 150,
        }
    }
}

impl ResilienceConfig {
    /// Backoff for the `n`-th retry (0-based; the schedule's last
    /// entry repeats).
    pub fn backoff_for(&self, retry: u32) -> u64 {
        match self.backoff_ms.as_slice() {
            [] => 0,
            s => s[(retry as usize).min(s.len() - 1)],
        }
    }
}

/// Per-client circuit breaker tuning.
///
/// The breaker watches each client subsystem's stream of cells: after
/// `threshold` *consecutive disruptive* errors (isolated panics, blown
/// cell budgets, compiler crashes — see
/// [`wsinterop_frameworks::client::classify_error`]) it opens and
/// skips that client's next `cooldown_cells` cells (each recorded as a
/// breaker-skipped Error), then half-opens: one probe cell runs for
/// real, and a single disruptive outcome re-trips the breaker while a
/// clean one closes it.
///
/// Decisions depend only on each client's cell stream in campaign
/// order, never on wall-clock time or worker interleaving, so the
/// breaker-skipped cell set is identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive disruptive errors from one client that trip it.
    pub threshold: u32,
    /// Cells skipped while open, before half-opening.
    pub cooldown_cells: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 5,
            cooldown_cells: 25,
        }
    }
}

impl BreakerConfig {
    /// A breaker with both knobs clamped to at least 1 (a zero
    /// threshold would trip on nothing; a zero cooldown would never
    /// actually skip).
    pub fn new(threshold: u32, cooldown_cells: u32) -> BreakerConfig {
        BreakerConfig {
            threshold: threshold.max(1),
            cooldown_cells: cooldown_cells.max(1),
        }
    }
}

/// One client's breaker state, advanced cell by cell in campaign
/// order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerState {
    consecutive: u32,
    cooldown_left: u32,
    half_open: bool,
}

impl BreakerState {
    /// A fresh, closed breaker.
    pub fn new() -> BreakerState {
        BreakerState::default()
    }

    /// Whether the breaker is open for the next cell. Consumes one
    /// cooldown cell when it is; the cell after the last cooldown cell
    /// runs half-open.
    pub fn should_skip(&mut self) -> bool {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            if self.cooldown_left == 0 {
                self.half_open = true;
            }
            true
        } else {
            false
        }
    }

    /// Feeds one executed cell's verdict into the breaker. Returns
    /// `true` when this observation trips it (including a half-open
    /// probe failing).
    pub fn observe(&mut self, cfg: BreakerConfig, disruptive: bool) -> bool {
        if disruptive {
            self.consecutive += 1;
            if self.half_open || self.consecutive >= cfg.threshold {
                self.consecutive = 0;
                self.half_open = false;
                self.cooldown_left = cfg.cooldown_cells;
                return true;
            }
        } else {
            self.consecutive = 0;
            self.half_open = false;
        }
        false
    }
}

/// Registry instrument names for the fault accounting. The labeled
/// per-kind counters append `{kind="<display name>"}`.
const M_INJECTED: &str = "faults_injected_total";
const M_DETECTED: &str = "faults_detected_total";
const M_MASKED: &str = "faults_masked_total";
const M_RETRIES: &str = "faults_retries_total";
const M_BACKOFF_MS: &str = "faults_backoff_virtual_ms_total";
const M_DEADLINE_HITS: &str = "faults_deadline_hits_total";
const M_PANICS: &str = "faults_panics_isolated_total";
const M_WATCHDOG: &str = "faults_watchdog_cells_total";
const M_BREAKER_TRIPS: &str = "faults_breaker_trips_total";

fn kind_counter(base: &str, kind: FaultKind) -> String {
    format!("{base}{{kind=\"{kind}\"}}")
}

/// Thread-safe fault accounting for one campaign run.
///
/// The counts live in a [`MetricsRegistry`] (`faults_*` instruments):
/// an uninstrumented log owns a private registry, an instrumented
/// campaign shares its observer's — so [`FaultLog::report`] and
/// `wsitool metrics` read the same numbers. The registry is
/// observe-only; the resolution state (which kinds hit which sites)
/// stays in the site maps below.
#[derive(Debug, Default)]
pub struct FaultLog {
    metrics: Arc<crate::obs::MetricsRegistry>,
    /// Injected kinds per site, pending resolution into
    /// detected/masked.
    sites: Mutex<BTreeMap<String, Vec<FaultKind>>>,
    /// Sites whose cell was skipped by an open circuit breaker.
    breaker_skipped: Mutex<BTreeSet<String>>,
}

impl FaultLog {
    /// A fresh, empty log with a private metrics registry.
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    /// A fresh log publishing its accounting into `metrics`.
    pub fn with_registry(metrics: Arc<crate::obs::MetricsRegistry>) -> FaultLog {
        FaultLog {
            metrics,
            ..FaultLog::default()
        }
    }

    /// Records an injection of `kind` at `site` (idempotent per
    /// `(site, kind)` — retries re-observe the same fault).
    pub fn injected(&self, kind: FaultKind, site: &str) {
        // lock-order: L2 (fault-log site map) — held across the L0
        // counter bump so `(site, kind)` idempotence stays atomic.
        let mut sites = lock_unpoisoned(&self.sites);
        let kinds = sites.entry(site.to_string()).or_default();
        if !kinds.contains(&kind) {
            kinds.push(kind);
            self.metrics.inc(&kind_counter(M_INJECTED, kind));
        }
    }

    /// Records one retry and its virtual backoff.
    pub fn retried(&self, backoff_ms: u64) {
        self.metrics.inc(M_RETRIES);
        self.metrics.add(M_BACKOFF_MS, backoff_ms);
    }

    /// Records a step exceeding its deadline budget.
    pub fn deadline_hit(&self) {
        self.metrics.inc(M_DEADLINE_HITS);
    }

    /// Records one isolated panic.
    pub fn panic_isolated(&self) {
        self.metrics.inc(M_PANICS);
    }

    /// Records one cell killed by the per-cell watchdog.
    pub fn watchdog_cell(&self) {
        self.metrics.inc(M_WATCHDOG);
    }

    /// Records one circuit-breaker trip.
    pub fn breaker_tripped(&self) {
        self.metrics.inc(M_BREAKER_TRIPS);
    }

    /// Records one cell skipped by an open breaker (idempotent per
    /// site, so journal replay cannot double-count).
    pub fn breaker_skip(&self, site: &str) {
        // lock-order: L2 (fault-log site map) — leaf.
        lock_unpoisoned(&self.breaker_skipped).insert(site.to_string());
    }

    /// Resolves every fault injected at `site`: `detected` means the
    /// affected step surfaced a Warning/Error classification (or a
    /// refused deployment); otherwise the fault was masked.
    pub fn resolve(&self, site: &str, detected: bool) {
        // lock-order: L2 (fault-log site map) — released before the
        // L0 counter bumps.
        let kinds = lock_unpoisoned(&self.sites).get(site).cloned();
        let Some(kinds) = kinds else { return };
        let base = if detected { M_DETECTED } else { M_MASKED };
        for kind in kinds {
            self.metrics.inc(&kind_counter(base, kind));
        }
    }

    /// Whether any fault was injected at `site`.
    pub fn is_affected(&self, site: &str) -> bool {
        // lock-order: L2 (fault-log site map) — leaf.
        lock_unpoisoned(&self.sites).contains_key(site)
    }

    /// Snapshot of the accounting, read back from the registry (the
    /// same instruments `wsitool metrics` exports).
    pub fn report(&self) -> FaultReport {
        // lock-order: L2 (fault-log site maps) — taken one at a time
        // (never nested with each other), `sites` held across L0
        // registry reads so the snapshot is internally consistent.
        let breaker_skipped_sites = lock_unpoisoned(&self.breaker_skipped).clone();
        let sites = lock_unpoisoned(&self.sites);
        let counter = |name: &str| self.metrics.counter(name) as usize;
        FaultReport {
            per_kind: FaultKind::ALL
                .iter()
                .map(|&kind| {
                    (
                        kind,
                        FaultCounts {
                            injected: counter(&kind_counter(M_INJECTED, kind)),
                            detected: counter(&kind_counter(M_DETECTED, kind)),
                            masked: counter(&kind_counter(M_MASKED, kind)),
                        },
                    )
                })
                .collect(),
            retries_spent: counter(M_RETRIES),
            backoff_ms: self.metrics.counter(M_BACKOFF_MS),
            deadline_hits: counter(M_DEADLINE_HITS),
            panics_isolated: counter(M_PANICS),
            watchdog_cells: counter(M_WATCHDOG),
            breaker_trips: counter(M_BREAKER_TRIPS),
            breaker_skipped_sites,
            affected_sites: sites.keys().cloned().collect(),
        }
    }
}

/// Per-kind injection accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Faults the plan injected.
    pub injected: usize,
    /// Injected faults that surfaced as a Warning/Error classification
    /// or a refused deployment.
    pub detected: usize,
    /// Injected faults absorbed without a classification change
    /// (retry-recovered refusals, benign corruption, slow steps within
    /// budget).
    pub masked: usize,
}

/// The chaos campaign's accounting, rendered alongside Fig. 4 and
/// Table III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Per-kind counts, in [`FaultKind::ALL`] order.
    pub per_kind: Vec<(FaultKind, FaultCounts)>,
    /// Retries spent on transient faults.
    pub retries_spent: usize,
    /// Total virtual backoff charged for those retries.
    pub backoff_ms: u64,
    /// Steps whose virtual duration exceeded the deadline budget.
    pub deadline_hits: usize,
    /// Worker panics converted into Error-classified records.
    pub panics_isolated: usize,
    /// Cells whose virtual duration blew the per-cell watchdog budget.
    pub watchdog_cells: usize,
    /// Times a per-client circuit breaker tripped open.
    pub breaker_trips: usize,
    /// Sites whose cell an open breaker skipped instead of executing.
    pub breaker_skipped_sites: BTreeSet<String>,
    /// Every site at which a fault was injected.
    pub affected_sites: BTreeSet<String>,
}

impl FaultReport {
    /// Total injected faults.
    pub fn injected_total(&self) -> usize {
        self.per_kind.iter().map(|(_, c)| c.injected).sum()
    }

    /// Total detected faults.
    pub fn detected_total(&self) -> usize {
        self.per_kind.iter().map(|(_, c)| c.detected).sum()
    }

    /// Total masked faults.
    pub fn masked_total(&self) -> usize {
        self.per_kind.iter().map(|(_, c)| c.masked).sum()
    }

    /// Counts for one kind.
    pub fn counts(&self, kind: FaultKind) -> FaultCounts {
        self.per_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }

    /// Number of distinct kinds actually injected.
    pub fn kinds_injected(&self) -> usize {
        self.per_kind.iter().filter(|(_, c)| c.injected > 0).count()
    }

    /// Whether a fault was injected at `site`.
    pub fn affects(&self, site: &str) -> bool {
        self.affected_sites.contains(site)
    }

    /// Fold another shard's report into this one: numeric accounting
    /// adds per kind, site sets union.
    ///
    /// Sound because a sharded campaign partitions the cells: each
    /// fault site is executed — and therefore accounted — by exactly
    /// one worker, so per-shard counts are disjoint contributions to
    /// the single-process totals. (The circuit breaker is the one
    /// instrument whose decisions span cells; campaigns reject
    /// breaker + shard for exactly that reason, so `breaker_trips`
    /// merges trivially as 0 + 0.)
    pub fn merge(&mut self, other: &FaultReport) {
        for (kind, counts) in &other.per_kind {
            match self.per_kind.iter_mut().find(|(k, _)| k == kind) {
                Some((_, mine)) => {
                    mine.injected += counts.injected;
                    mine.detected += counts.detected;
                    mine.masked += counts.masked;
                }
                None => self.per_kind.push((*kind, *counts)),
            }
        }
        self.retries_spent += other.retries_spent;
        self.backoff_ms += other.backoff_ms;
        self.deadline_hits += other.deadline_hits;
        self.panics_isolated += other.panics_isolated;
        self.watchdog_cells += other.watchdog_cells;
        self.breaker_trips += other.breaker_trips;
        self.breaker_skipped_sites
            .extend(other.breaker_skipped_sites.iter().cloned());
        self.affected_sites
            .extend(other.affected_sites.iter().cloned());
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fault report (injected / detected / masked)")?;
        writeln!(f, "  {:<26} {:>8} {:>8} {:>8}", "kind", "inj", "det", "mask")?;
        for (kind, counts) in &self.per_kind {
            if counts.injected == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<26} {:>8} {:>8} {:>8}",
                kind.to_string(),
                counts.injected,
                counts.detected,
                counts.masked
            )?;
        }
        writeln!(
            f,
            "  {:<26} {:>8} {:>8} {:>8}",
            "total",
            self.injected_total(),
            self.detected_total(),
            self.masked_total()
        )?;
        writeln!(
            f,
            "  retries spent: {} (virtual backoff {} ms); deadline hits: {}; panics isolated: {}",
            self.retries_spent, self.backoff_ms, self.deadline_hits, self.panics_isolated
        )?;
        writeln!(
            f,
            "  watchdog cell kills: {}; breaker trips: {} (skipped {} cells)",
            self.watchdog_cells,
            self.breaker_trips,
            self.breaker_skipped_sites.len()
        )?;
        writeln!(f, "  affected sites: {}", self.affected_sites.len())
    }
}

/// Plan-driven deploy hook: transient refusals first, then real
/// deployment, then WSDL damage on the published bytes.
pub struct PlanServerHook<'a> {
    plan: &'a FaultPlan,
    log: &'a FaultLog,
    resilience: &'a ResilienceConfig,
    server: ServerId,
    attempts: Mutex<BTreeMap<String, u32>>,
}

impl<'a> PlanServerHook<'a> {
    /// A hook injecting `plan`'s deploy-step faults for `server`.
    pub fn new(
        plan: &'a FaultPlan,
        log: &'a FaultLog,
        resilience: &'a ResilienceConfig,
        server: ServerId,
    ) -> PlanServerHook<'a> {
        PlanServerHook {
            plan,
            log,
            resilience,
            server,
            attempts: Mutex::new(BTreeMap::new()),
        }
    }
}

impl ServerFaultHook for PlanServerHook<'_> {
    fn deploy(&self, inner: &dyn ServerSubsystem, entry: &TypeEntry) -> DeployOutcome {
        let site = deploy_site(self.server, &entry.fqcn);

        if self.plan.decide(FaultKind::TransientDeployRefusal, &site) {
            let failures = self
                .plan
                .transient_failures(&site)
                .min(self.resilience.max_retries + 1);
            let attempt = {
                // lock-order: L2 (fault-hook attempt map) — leaf.
                let mut attempts = lock_unpoisoned(&self.attempts);
                let n = attempts.entry(site.clone()).or_insert(0);
                *n += 1;
                *n
            };
            self.log.injected(FaultKind::TransientDeployRefusal, &site);
            if attempt <= failures {
                return DeployOutcome::Refused {
                    reason: format!(
                        "{TRANSIENT_REFUSAL_PREFIX} connection reset during deployment \
                         (attempt {attempt})"
                    ),
                };
            }
        }

        let outcome = inner.deploy(entry);
        match outcome {
            DeployOutcome::Deployed { wsdl_xml } => {
                match self.plan.damage_wsdl(&site, &wsdl_xml) {
                    Some((damaged, kind)) => {
                        self.log.injected(kind, &site);
                        DeployOutcome::Deployed { wsdl_xml: damaged }
                    }
                    None => DeployOutcome::Deployed { wsdl_xml },
                }
            }
            refused => refused,
        }
    }
}

/// Plan-driven generation hook: panics inside the tool when the plan
/// says so; transparent otherwise.
pub struct PlanClientHook<'a> {
    plan: &'a FaultPlan,
    log: &'a FaultLog,
}

impl<'a> PlanClientHook<'a> {
    /// A hook injecting `plan`'s generation-step faults.
    pub fn new(plan: &'a FaultPlan, log: &'a FaultLog) -> PlanClientHook<'a> {
        PlanClientHook { plan, log }
    }
}

impl ClientFaultHook for PlanClientHook<'_> {
    fn generate(&self, inner: &dyn ClientSubsystem, site: &str, wsdl_xml: &str) -> GenOutcome {
        if self.plan.decide(FaultKind::ClientGenPanic, site) {
            self.log.injected(FaultKind::ClientGenPanic, site);
            panic!("injected fault: artifact generator crashed at {site}");
        }
        inner.generate(wsdl_xml)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let c = FaultPlan::seeded(43);
        let sites: Vec<String> = (0..2000).map(|i| format!("deploy/Metro/c{i}")).collect();
        let pick = |p: &FaultPlan| -> Vec<bool> {
            sites
                .iter()
                .map(|s| p.decide(FaultKind::WsdlCorruption, s))
                .collect()
        };
        assert_eq!(pick(&a), pick(&b));
        assert_ne!(pick(&a), pick(&c));
        let hits = pick(&a).iter().filter(|&&x| x).count();
        // 15‰ of 2000 ≈ 30; allow generous slack.
        assert!((5..120).contains(&hits), "{hits}");
    }

    #[test]
    fn forced_sites_always_inject() {
        let plan = FaultPlan::silent(7).force_at(FaultKind::ClientGenPanic, "gen/x/y/z");
        assert!(plan.decide(FaultKind::ClientGenPanic, "gen/x/y/z"));
        assert!(!plan.decide(FaultKind::ClientGenPanic, "gen/x/y/other"));
        assert!(!plan.decide(FaultKind::WsdlTruncation, "gen/x/y/z"));
        assert_eq!(plan.active_kinds(), 1);
    }

    #[test]
    fn damage_is_deterministic_and_char_safe() {
        let plan = FaultPlan::silent(1).with_rate(FaultKind::WsdlTruncation, 1000);
        let doc = "<?xml version=\"1.0\"?><a>héllo wörld…</a>".repeat(4);
        let (once, kind) = plan.damage_wsdl("deploy/Metro/x", &doc).unwrap();
        let (twice, _) = plan.damage_wsdl("deploy/Metro/x", &doc).unwrap();
        assert_eq!(kind, FaultKind::WsdlTruncation);
        assert_eq!(once, twice);
        assert!(once.len() < doc.len());
    }

    #[test]
    fn benign_and_malforming_corruption_both_occur() {
        let plan = FaultPlan::silent(3).with_rate(FaultKind::WsdlCorruption, 1000);
        let doc = "<?xml version=\"1.0\"?><a><b/></a>";
        let mut malformed = 0;
        let mut benign = 0;
        for i in 0..64 {
            let (damaged, _) = plan.damage_wsdl(&format!("deploy/Metro/c{i}"), doc).unwrap();
            if damaged.contains("<injected-fault>") {
                malformed += 1;
            } else {
                assert!(damaged.contains(">\n<"));
                benign += 1;
            }
        }
        assert!(malformed > 0 && benign > 0, "{malformed}/{benign}");
    }

    #[test]
    fn log_resolves_into_detected_and_masked() {
        let log = FaultLog::new();
        log.injected(FaultKind::WsdlCorruption, "deploy/Metro/a");
        log.injected(FaultKind::WsdlCorruption, "deploy/Metro/a"); // idempotent
        log.injected(FaultKind::SlowStep, "gen/Metro/Axis1/a");
        log.resolve("deploy/Metro/a", true);
        log.resolve("gen/Metro/Axis1/a", false);
        log.retried(4);
        log.deadline_hit();
        let report = log.report();
        assert_eq!(report.counts(FaultKind::WsdlCorruption).injected, 1);
        assert_eq!(report.counts(FaultKind::WsdlCorruption).detected, 1);
        assert_eq!(report.counts(FaultKind::SlowStep).masked, 1);
        assert_eq!(report.retries_spent, 1);
        assert_eq!(report.backoff_ms, 4);
        assert_eq!(report.deadline_hits, 1);
        assert_eq!(report.injected_total(), 2);
        assert!(report.affects("deploy/Metro/a"));
        assert!(!report.affects("deploy/Metro/b"));
        assert!(report.to_string().contains("wsdl-corruption"));
    }

    #[test]
    fn backoff_schedule_repeats_its_tail() {
        let resilience = ResilienceConfig::default();
        assert_eq!(resilience.backoff_for(0), 1);
        assert_eq!(resilience.backoff_for(1), 2);
        assert_eq!(resilience.backoff_for(2), 4);
        assert_eq!(resilience.backoff_for(9), 4);
    }

    #[test]
    fn breaker_trips_after_threshold_and_cools_down_in_cells() {
        let cfg = BreakerConfig::new(3, 2);
        let mut state = BreakerState::new();
        // Two disruptive cells: below threshold, still closed.
        assert!(!state.observe(cfg, true));
        assert!(!state.observe(cfg, true));
        assert!(!state.should_skip());
        // A clean cell resets the streak.
        assert!(!state.observe(cfg, false));
        assert!(!state.observe(cfg, true));
        assert!(!state.observe(cfg, true));
        // Third consecutive disruption trips it.
        assert!(state.observe(cfg, true));
        // Open: exactly `cooldown_cells` skips, then half-open.
        assert!(state.should_skip());
        assert!(state.should_skip());
        assert!(!state.should_skip());
    }

    #[test]
    fn half_open_probe_retrips_on_one_failure_or_closes_on_success() {
        let cfg = BreakerConfig::new(3, 1);
        let mut tripped = BreakerState::new();
        for _ in 0..2 {
            assert!(!tripped.observe(cfg, true));
        }
        assert!(tripped.observe(cfg, true));
        assert!(tripped.should_skip());
        // Half-open probe fails: re-trips on a single disruption.
        let mut reopened = tripped;
        assert!(reopened.observe(cfg, true));
        assert!(reopened.should_skip());
        // Half-open probe succeeds: breaker closes, threshold applies
        // again in full.
        let mut closed = tripped;
        assert!(!closed.observe(cfg, false));
        assert!(!closed.observe(cfg, true));
        assert!(!closed.observe(cfg, true));
        assert!(closed.observe(cfg, true));
    }

    #[test]
    fn breaker_config_clamps_zeroes() {
        let cfg = BreakerConfig::new(0, 0);
        assert_eq!(cfg.threshold, 1);
        assert_eq!(cfg.cooldown_cells, 1);
    }

    #[test]
    fn log_counts_watchdog_and_breaker_events() {
        let log = FaultLog::new();
        log.watchdog_cell();
        log.breaker_tripped();
        log.breaker_skip("gen/Metro/Cxf/a");
        log.breaker_skip("gen/Metro/Cxf/a"); // idempotent
        log.breaker_skip("gen/Metro/Cxf/b");
        let report = log.report();
        assert_eq!(report.watchdog_cells, 1);
        assert_eq!(report.breaker_trips, 1);
        assert_eq!(report.breaker_skipped_sites.len(), 2);
        assert!(report.to_string().contains("watchdog cell kills: 1"));
        assert!(report.to_string().contains("breaker trips: 1 (skipped 2 cells)"));
    }

    #[test]
    fn plan_fingerprint_is_seed_and_shape_sensitive() {
        let a = FaultPlan::seeded(42);
        assert_eq!(a.fingerprint(), FaultPlan::seeded(42).fingerprint());
        assert_ne!(a.fingerprint(), FaultPlan::seeded(43).fingerprint());
        assert_ne!(
            a.fingerprint(),
            FaultPlan::seeded(42)
                .force_at(FaultKind::SlowStep, "gen/x/y/z")
                .fingerprint()
        );
    }

    #[test]
    fn wire_fault_choice_is_deterministic() {
        let plan = FaultPlan::seeded(11);
        for i in 0..50 {
            let site = wire_site(ServerId::Metro, &format!("c{i}"));
            assert_eq!(plan.wire_fault(&site), plan.wire_fault(&site));
        }
        let forced = FaultPlan::silent(0).with_rate(FaultKind::WireDropResponse, 1000);
        assert_eq!(
            forced.wire_fault("wire/Metro/x"),
            Some(WireFault::DropResponse)
        );
    }
}
