//! Report builders: the paper's Fig. 4, Table III and headline totals,
//! regenerated from campaign results.

use std::fmt;

use wsinterop_frameworks::client::ClientId;
use wsinterop_frameworks::server::ServerId;

use crate::results::CampaignResults;

/// Servers covered by a result set: the paper's three (in Table I
/// order) when present, then any extension servers, in first-seen
/// order.
fn servers_in(results: &CampaignResults) -> Vec<ServerId> {
    let mut servers: Vec<ServerId> = ServerId::ALL
        .iter()
        .copied()
        .filter(|&s| results.services.iter().any(|r| r.server == s))
        .collect();
    for record in &results.services {
        if !servers.contains(&record.server) {
            servers.push(record.server);
        }
    }
    // An empty result set still reports the paper's three servers.
    if servers.is_empty() {
        servers = ServerId::ALL.to_vec();
    }
    servers
}

/// One server's bar group in Fig. 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fig4Row {
    /// Service Description Generation warnings.
    pub sdg_warnings: usize,
    /// Service Description Generation errors (always 0: non-deployable
    /// services are excluded, as in the paper).
    pub sdg_errors: usize,
    /// Client Artifact Generation warnings (tests with ≥1 warning).
    pub cag_warnings: usize,
    /// Client Artifact Generation errors.
    pub cag_errors: usize,
    /// Client Artifact Compilation warnings.
    pub cac_warnings: usize,
    /// Client Artifact Compilation errors.
    pub cac_errors: usize,
}

/// The Fig. 4 overview: one row per server.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fig4 {
    /// Rows in Table I order (Metro, JBossWS CXF, WCF .NET).
    pub rows: Vec<(ServerId, Fig4Row)>,
}

impl Fig4 {
    /// Builds Fig. 4 from campaign results. Rows cover the paper's
    /// three servers (Table I order) plus any extension servers present
    /// in the results.
    pub fn from_results(results: &CampaignResults) -> Fig4 {
        let rows = servers_in(results)
            .into_iter()
            .map(|server| {
                let mut row = Fig4Row {
                    sdg_warnings: results
                        .services
                        .iter()
                        .filter(|s| s.server == server && s.description_warning)
                        .count(),
                    ..Fig4Row::default()
                };
                for t in results.tests_for(server) {
                    if t.gen_warning {
                        row.cag_warnings += 1;
                    }
                    if t.gen_error {
                        row.cag_errors += 1;
                    }
                    if t.compile_warning {
                        row.cac_warnings += 1;
                    }
                    if t.compile_error {
                        row.cac_errors += 1;
                    }
                }
                (server, row)
            })
            .collect();
        Fig4 { rows }
    }

    /// Looks up one server's row.
    pub fn row(&self, server: ServerId) -> Fig4Row {
        self.rows
            .iter()
            .find(|(s, _)| *s == server)
            .map(|(_, r)| *r)
            .unwrap_or_default()
    }
}

impl Fig4 {
    /// Renders the figure as an ASCII bar chart — the visual shape of
    /// the paper's Fig. 4 (one bar group per server, one bar per
    /// series, log-ish scaling so the 2-digit and 4-digit series stay
    /// visible together).
    pub fn render_chart(&self) -> String {
        type Series = (&'static str, fn(&Fig4Row) -> usize);
        const SERIES: [Series; 6] = [
            ("SDG warnings", |r| r.sdg_warnings),
            ("SDG errors", |r| r.sdg_errors),
            ("CAG warnings", |r| r.cag_warnings),
            ("CAG errors", |r| r.cag_errors),
            ("CAC warnings", |r| r.cac_warnings),
            ("CAC errors", |r| r.cac_errors),
        ];
        const WIDTH: f64 = 48.0;
        let max = self
            .rows
            .iter()
            .flat_map(|(_, r)| SERIES.iter().map(move |(_, f)| f(r)))
            .max()
            .unwrap_or(0)
            .max(1) as f64;
        let scale = |v: usize| -> usize {
            if v == 0 {
                0
            } else {
                // ln-scaled so small series remain visible next to the
                // 5 000-class bars, with a 1-char floor for non-zero.
                (((v as f64).ln_1p() / max.ln_1p()) * WIDTH).ceil() as usize
            }
        };
        let mut out = String::new();
        out.push_str("Figure 4 — chart view (log-scaled bars)\n");
        for (server, row) in &self.rows {
            out.push_str(&format!("{server}\n"));
            for (label, f) in SERIES {
                let v = f(row);
                out.push_str(&format!(
                    "  {label:<14} {:<48} {v}\n",
                    "█".repeat(scale(v))
                ));
            }
        }
        out
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4 — Overview of the experimental results")?;
        writeln!(
            f,
            "{:<14} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "server", "SDG-W", "SDG-E", "CAG-W", "CAG-E", "CAC-W", "CAC-E"
        )?;
        for (server, row) in &self.rows {
            writeln!(
                f,
                "{:<14} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
                server.to_string(),
                row.sdg_warnings,
                row.sdg_errors,
                row.cag_warnings,
                row.cag_errors,
                row.cac_warnings,
                row.cac_errors
            )?;
        }
        Ok(())
    }
}

/// One Table III cell: a client's outcome against one server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableIIICell {
    /// Generation warnings (tests with ≥1 warning).
    pub gen_warnings: usize,
    /// Generation errors.
    pub gen_errors: usize,
    /// Compilation warnings; `None` when the client has no compile
    /// step (Zend, suds).
    pub compile_warnings: Option<usize>,
    /// Compilation errors; `None` when the client has no compile step.
    pub compile_errors: Option<usize>,
}

/// The paper's Table III: WS-I warnings per server plus the full
/// (server × client) matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableIII {
    /// Per-server: (description warnings, deployed service count).
    pub wsi: Vec<(ServerId, usize, usize)>,
    /// Matrix cells in (client, server) order.
    pub cells: Vec<(ClientId, ServerId, TableIIICell)>,
}

impl TableIII {
    /// Builds Table III from campaign results (paper servers plus any
    /// extension servers present).
    pub fn from_results(results: &CampaignResults) -> TableIII {
        let servers = servers_in(results);
        let wsi = servers
            .iter()
            .map(|&server| {
                let warned = results
                    .services
                    .iter()
                    .filter(|s| s.server == server && s.description_warning)
                    .count();
                (server, warned, results.deployed(server))
            })
            .collect();

        let mut cells = Vec::new();
        for &client in &ClientId::ALL {
            for &server in &servers {
                let mut cell = TableIIICell::default();
                let mut compiled_any = false;
                for t in results.cell(server, client) {
                    if t.gen_warning {
                        cell.gen_warnings += 1;
                    }
                    if t.gen_error {
                        cell.gen_errors += 1;
                    }
                    if t.compile_ran {
                        compiled_any = true;
                        if t.compile_warning {
                            *cell.compile_warnings.get_or_insert(0) += 1;
                        }
                        if t.compile_error {
                            *cell.compile_errors.get_or_insert(0) += 1;
                        }
                    }
                }
                if compiled_any {
                    cell.compile_warnings.get_or_insert(0);
                    cell.compile_errors.get_or_insert(0);
                }
                cells.push((client, server, cell));
            }
        }
        TableIII { wsi, cells }
    }

    /// Looks up one cell.
    pub fn cell(&self, client: ClientId, server: ServerId) -> TableIIICell {
        self.cells
            .iter()
            .find(|(c, s, _)| *c == client && *s == server)
            .map(|(_, _, cell)| *cell)
            .unwrap_or_default()
    }

    /// Per-server description warnings (the WS-I row of Table III).
    pub fn wsi_warnings(&self, server: ServerId) -> usize {
        self.wsi
            .iter()
            .find(|(s, _, _)| *s == server)
            .map(|(_, w, _)| *w)
            .unwrap_or(0)
    }
}

fn opt(n: Option<usize>) -> String {
    match n {
        Some(v) => v.to_string(),
        None => "—".to_string(),
    }
}

impl fmt::Display for TableIII {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table III — Experimental results")?;
        write!(f, "{:<24}", "WS-I / SDG warnings:")?;
        for (server, warned, deployed) in &self.wsi {
            write!(f, "  {server}: {warned} of {deployed}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<26} {:^21} {:^21} {:^21}",
            "", "Metro", "JBossWS CXF", "WCF .NET"
        )?;
        writeln!(
            f,
            "{:<26} {:>4} {:>4} {:>5} {:>5} {:>4} {:>4} {:>5} {:>5} {:>4} {:>4} {:>5} {:>5}",
            "client-side FW",
            "GW", "GE", "CW", "CE", "GW", "GE", "CW", "CE", "GW", "GE", "CW", "CE"
        )?;
        for &client in &ClientId::ALL {
            write!(f, "{:<26}", client.to_string())?;
            for &server in &ServerId::ALL {
                let cell = self.cell(client, server);
                write!(
                    f,
                    " {:>4} {:>4} {:>5} {:>5}",
                    cell.gen_warnings,
                    cell.gen_errors,
                    opt(cell.compile_warnings),
                    opt(cell.compile_errors)
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The headline totals quoted in the paper's Section IV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Candidate services created (classes × servers).
    pub services_created: usize,
    /// Services the platforms could not deploy (excluded).
    pub services_excluded: usize,
    /// Services deployed with a published WSDL.
    pub services_deployed: usize,
    /// Total executed tests (deployed × 11 clients).
    pub tests_executed: usize,
    /// Service-description warnings (WS-I failures + advisories).
    pub description_warnings: usize,
    /// Artifact-generation warnings (tests).
    pub generation_warnings: usize,
    /// Artifact-generation errors (tests).
    pub generation_errors: usize,
    /// Compilation warnings (tests).
    pub compilation_warnings: usize,
    /// Compilation errors (tests).
    pub compilation_errors: usize,
    /// Tests where any step errored.
    pub interop_errors: usize,
    /// Error tests where client and server share a framework.
    pub same_framework_errors: usize,
}

impl Totals {
    /// Computes the totals from campaign results.
    pub fn from_results(results: &CampaignResults) -> Totals {
        let mut totals = Totals {
            services_created: results.services.len(),
            ..Totals::default()
        };
        for service in &results.services {
            if service.deployed {
                totals.services_deployed += 1;
            } else {
                totals.services_excluded += 1;
            }
            if service.description_warning {
                totals.description_warnings += 1;
            }
        }
        totals.tests_executed = results.tests.len();
        for t in &results.tests {
            if t.gen_warning {
                totals.generation_warnings += 1;
            }
            if t.gen_error {
                totals.generation_errors += 1;
            }
            if t.compile_warning {
                totals.compilation_warnings += 1;
            }
            if t.compile_error {
                totals.compilation_errors += 1;
            }
            if t.any_error() {
                totals.interop_errors += 1;
                if t.same_framework() {
                    totals.same_framework_errors += 1;
                }
            }
        }
        totals
    }
}

impl fmt::Display for Totals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Campaign totals")?;
        writeln!(f, "  services created:        {:>6}", self.services_created)?;
        writeln!(f, "  services excluded:       {:>6}", self.services_excluded)?;
        writeln!(f, "  services deployed:       {:>6}", self.services_deployed)?;
        writeln!(f, "  tests executed:          {:>6}", self.tests_executed)?;
        writeln!(f, "  description warnings:    {:>6}", self.description_warnings)?;
        writeln!(f, "  generation warnings:     {:>6}", self.generation_warnings)?;
        writeln!(f, "  generation errors:       {:>6}", self.generation_errors)?;
        writeln!(f, "  compilation warnings:    {:>6}", self.compilation_warnings)?;
        writeln!(f, "  compilation errors:      {:>6}", self.compilation_errors)?;
        writeln!(f, "  interop-error tests:     {:>6}", self.interop_errors)?;
        writeln!(f, "  same-framework errors:   {:>6}", self.same_framework_errors)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;

    #[test]
    fn reports_from_sampled_run_are_internally_consistent() {
        let results = Campaign::sampled(61).run();
        let fig4 = Fig4::from_results(&results);
        let table = TableIII::from_results(&results);
        let totals = Totals::from_results(&results);

        // Fig.4 column sums equal the totals.
        let sum = |f: fn(&Fig4Row) -> usize| -> usize {
            fig4.rows.iter().map(|(_, r)| f(r)).sum()
        };
        assert_eq!(sum(|r| r.cag_warnings), totals.generation_warnings);
        assert_eq!(sum(|r| r.cag_errors), totals.generation_errors);
        assert_eq!(sum(|r| r.cac_warnings), totals.compilation_warnings);
        assert_eq!(sum(|r| r.cac_errors), totals.compilation_errors);
        assert_eq!(sum(|r| r.sdg_warnings), totals.description_warnings);

        // Table III cell sums equal Fig.4 rows.
        for &server in &ServerId::ALL {
            let row = fig4.row(server);
            let gen_w: usize = ClientId::ALL
                .iter()
                .map(|&c| table.cell(c, server).gen_warnings)
                .sum();
            assert_eq!(gen_w, row.cag_warnings, "{server}");
            let comp_e: usize = ClientId::ALL
                .iter()
                .map(|&c| table.cell(c, server).compile_errors.unwrap_or(0))
                .sum();
            assert_eq!(comp_e, row.cac_errors, "{server}");
        }

        // Displays render.
        assert!(fig4.to_string().contains("Figure 4"));
        let chart = fig4.render_chart();
        assert!(chart.contains("CAC warnings"));
        assert!(chart.lines().count() > 18);
        assert!(table.to_string().contains("Table III"));
        assert!(totals.to_string().contains("tests executed"));
    }

    #[test]
    fn dynamic_clients_have_no_compile_columns() {
        let results = Campaign::sampled(131).run();
        let table = TableIII::from_results(&results);
        for &server in &ServerId::ALL {
            for client in [ClientId::Zend, ClientId::Suds] {
                let cell = table.cell(client, server);
                assert_eq!(cell.compile_warnings, None, "{client} vs {server}");
                assert_eq!(cell.compile_errors, None);
            }
        }
    }
}
