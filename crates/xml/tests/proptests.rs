//! Property-based tests for the XML crate: escaping and write→parse
//! roundtrips over randomly generated trees.

use proptest::prelude::*;
use wsinterop_xml::escape::{escape_attr, escape_text, unescape};
use wsinterop_xml::writer::{write_document, WriteOptions};
use wsinterop_xml::{parse_document, Document, Element, Node};

proptest! {
    /// Any string survives text-escape → unescape unchanged.
    #[test]
    fn escape_text_roundtrip(raw in "\\PC{0,64}") {
        let escaped = escape_text(&raw);
        let un = unescape(&escaped).unwrap();
        prop_assert_eq!(un.as_ref(), raw.as_str());
    }

    /// Any string survives attr-escape → unescape unchanged.
    #[test]
    fn escape_attr_roundtrip(raw in "\\PC{0,64}") {
        let escaped = escape_attr(&raw);
        let un = unescape(&escaped).unwrap();
        prop_assert_eq!(un.as_ref(), raw.as_str());
    }

    /// Escaped text never contains raw markup characters.
    #[test]
    fn escaped_text_has_no_markup(raw in "\\PC{0,64}") {
        let escaped = escape_text(&raw);
        prop_assert!(!escaped.contains('<'));
        // `&` may only appear as the start of an entity.
        for (i, _) in escaped.match_indices('&') {
            prop_assert!(escaped[i..].contains(';'));
        }
    }
}

fn ncname() -> impl Strategy<Value = String> {
    // `xmlns` is excluded: declaring namespaces with random URIs changes
    // resolved element namespaces, which the roundtrip deliberately
    // exercises elsewhere with well-formed declarations.
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,8}".prop_filter("not xmlns", |s| s != "xmlns")
}

/// Attribute values: printable chars, no surrogate issues.
fn attr_value() -> impl Strategy<Value = String> {
    "[ -~]{0,16}"
}

/// Text content that is not whitespace-only (whitespace-only text nodes
/// between elements are legitimately dropped by the parser).
fn text_value() -> impl Strategy<Value = String> {
    "[ -~]{0,16}[!-~]"
}

fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let leaf = (ncname(), prop::collection::vec((ncname(), attr_value()), 0..3)).prop_map(
        |(name, attrs)| {
            let mut el = Element::new(&name);
            for (an, av) in attrs {
                el.set_attr(&an, av);
            }
            el
        },
    );
    if depth == 0 {
        return leaf.boxed();
    }
    (
        leaf,
        prop::collection::vec(
            prop_oneof![
                arb_element(depth - 1).prop_map(Node::Element),
                text_value().prop_map(Node::Text),
            ],
            0..3,
        ),
    )
        .prop_map(|(mut el, children)| {
            for c in children {
                el.push_node(c);
            }
            el
        })
        .boxed()
}

/// Normalizes a tree the way a write→parse cycle legitimately may:
/// adjacent text nodes merge; whitespace-only text between elements in
/// element-only content disappears under pretty printing.
fn canonical(el: &Element) -> Element {
    let mut out = Element::new(&el.name().to_string());
    if let Some(uri) = el.ns_uri() {
        out.set_ns_uri(uri);
    }
    for a in el.attrs() {
        out.set_attr(&a.name().to_string(), a.value());
    }
    let mut pending_text = String::new();
    let flush = |out: &mut Element, pending: &mut String| {
        if !pending.trim().is_empty() {
            out.push_text(std::mem::take(pending));
        } else {
            pending.clear();
        }
    };
    for c in el.children() {
        match c {
            Node::Text(t) | Node::CData(t) => pending_text.push_str(t),
            Node::Element(child) => {
                flush(&mut out, &mut pending_text);
                out.push_element(canonical(child));
            }
            _ => {}
        }
    }
    flush(&mut out, &mut pending_text);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compact write → parse produces a canonically equal tree.
    #[test]
    fn write_parse_roundtrip_compact(el in arb_element(3)) {
        let doc = Document::new(el);
        let xml = write_document(&doc, &WriteOptions::compact());
        let parsed = parse_document(&xml).unwrap();
        prop_assert_eq!(canonical(parsed.root()), canonical(doc.root()));
    }

    /// Pretty write → parse produces a canonically equal tree.
    #[test]
    fn write_parse_roundtrip_pretty(el in arb_element(3)) {
        let doc = Document::new(el);
        let xml = write_document(&doc, &WriteOptions::pretty());
        let parsed = parse_document(&xml).unwrap();
        prop_assert_eq!(canonical(parsed.root()), canonical(doc.root()));
    }

    /// Parsing never panics on arbitrary input.
    #[test]
    fn parser_never_panics(raw in "\\PC{0,128}") {
        let _ = parse_document(&raw);
    }
}
