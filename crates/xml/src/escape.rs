//! Escaping and unescaping of XML character data and attribute values.
//!
//! XML 1.0 defines five predefined entities (`&amp;`, `&lt;`, `&gt;`,
//! `&quot;`, `&apos;`) plus numeric character references
//! (`&#decimal;` / `&#xhex;`). This module implements both directions for
//! the subset of XML the rest of the workspace emits and consumes.

use std::borrow::Cow;
use std::fmt;

/// Escapes character data (element text content).
///
/// `<`, `&` and `>` are replaced by entity references. Quotes are left
/// untouched because they carry no meaning inside character data.
///
/// Returns [`Cow::Borrowed`] when no escaping is required so that the
/// common case allocates nothing.
///
/// # Examples
///
/// ```
/// use wsinterop_xml::escape::escape_text;
/// assert_eq!(escape_text("a < b & c"), "a &lt; b &amp; c");
/// assert_eq!(escape_text("plain"), "plain");
/// ```
pub fn escape_text(raw: &str) -> Cow<'_, str> {
    escape_with(raw, |c| matches!(c, '<' | '>' | '&'))
}

/// Escapes an attribute value for emission inside double quotes.
///
/// In addition to the character-data escapes, `"` must be escaped, and
/// tab/newline/carriage-return are emitted as numeric references so that
/// attribute-value normalization performed by a conforming parser cannot
/// alter the value.
///
/// # Examples
///
/// ```
/// use wsinterop_xml::escape::escape_attr;
/// assert_eq!(escape_attr(r#"say "hi" & go"#), "say &quot;hi&quot; &amp; go");
/// assert_eq!(escape_attr("a\tb"), "a&#9;b");
/// ```
pub fn escape_attr(raw: &str) -> Cow<'_, str> {
    if !raw
        .chars()
        .any(|c| matches!(c, '<' | '>' | '&' | '"' | '\t' | '\n' | '\r'))
    {
        return Cow::Borrowed(raw);
    }
    let mut out = String::with_capacity(raw.len() + 8);
    for c in raw.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\t' => out.push_str("&#9;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

fn escape_with(raw: &str, needs: impl Fn(char) -> bool) -> Cow<'_, str> {
    if !raw.chars().any(&needs) {
        return Cow::Borrowed(raw);
    }
    let mut out = String::with_capacity(raw.len() + 8);
    for c in raw.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// An error produced while expanding entity references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnescapeError {
    /// Byte offset of the offending `&` within the input.
    pub offset: usize,
    /// Description of what went wrong.
    pub kind: UnescapeErrorKind,
}

/// The specific failure encountered while unescaping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnescapeErrorKind {
    /// An `&` that is not followed by a terminated entity reference.
    UnterminatedEntity,
    /// An entity name that is not one of the five predefined entities.
    UnknownEntity(String),
    /// A numeric character reference that does not denote a valid char.
    InvalidCharRef(String),
}

impl fmt::Display for UnescapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            UnescapeErrorKind::UnterminatedEntity => {
                write!(f, "unterminated entity reference at byte {}", self.offset)
            }
            UnescapeErrorKind::UnknownEntity(name) => {
                write!(f, "unknown entity `&{};` at byte {}", name, self.offset)
            }
            UnescapeErrorKind::InvalidCharRef(raw) => {
                write!(
                    f,
                    "invalid character reference `&#{};` at byte {}",
                    raw, self.offset
                )
            }
        }
    }
}

impl std::error::Error for UnescapeError {}

/// Expands the five predefined entities and numeric character references.
///
/// Returns [`Cow::Borrowed`] when the input contains no `&`.
///
/// # Errors
///
/// Returns [`UnescapeError`] on unterminated references, unknown entity
/// names, or numeric references that do not map to a Unicode scalar value.
///
/// # Examples
///
/// ```
/// use wsinterop_xml::escape::unescape;
/// assert_eq!(unescape("a &lt; b &amp; c")?, "a < b & c");
/// assert_eq!(unescape("&#65;&#x42;")?, "AB");
/// # Ok::<(), wsinterop_xml::escape::UnescapeError>(())
/// ```
pub fn unescape(raw: &str) -> Result<Cow<'_, str>, UnescapeError> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance over one UTF-8 encoded char.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&raw[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let semi = raw[i..]
            .find(';')
            .ok_or(UnescapeError {
                offset: i,
                kind: UnescapeErrorKind::UnterminatedEntity,
            })
            .map(|rel| i + rel)?;
        let name = &raw[i + 1..semi];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                if let Some(num) = name.strip_prefix('#') {
                    let code = if let Some(hex) = num.strip_prefix('x').or(num.strip_prefix('X')) {
                        u32::from_str_radix(hex, 16)
                    } else {
                        num.parse::<u32>()
                    };
                    let ch = code.ok().and_then(char::from_u32).ok_or(UnescapeError {
                        offset: i,
                        kind: UnescapeErrorKind::InvalidCharRef(num.to_string()),
                    })?;
                    out.push(ch);
                } else {
                    return Err(UnescapeError {
                        offset: i,
                        kind: UnescapeErrorKind::UnknownEntity(name.to_string()),
                    });
                }
            }
        }
        i = semi + 1;
    }
    Ok(Cow::Owned(out))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_passthrough_borrows() {
        assert!(matches!(escape_text("hello"), Cow::Borrowed(_)));
    }

    #[test]
    fn text_escapes_specials() {
        assert_eq!(escape_text("<a & b>"), "&lt;a &amp; b&gt;");
    }

    #[test]
    fn attr_escapes_quotes_and_whitespace() {
        assert_eq!(escape_attr("x\"y"), "x&quot;y");
        assert_eq!(escape_attr("x\ny"), "x&#10;y");
        assert_eq!(escape_attr("x\ry"), "x&#13;y");
    }

    #[test]
    fn attr_passthrough_borrows() {
        assert!(matches!(escape_attr("simple value"), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("&lt;&gt;&amp;&quot;&apos;").unwrap(),
            "<>&\"'"
        );
    }

    #[test]
    fn unescape_numeric_decimal_and_hex() {
        assert_eq!(unescape("&#65;").unwrap(), "A");
        assert_eq!(unescape("&#x41;").unwrap(), "A");
        assert_eq!(unescape("&#x1F600;").unwrap(), "\u{1F600}");
    }

    #[test]
    fn unescape_multibyte_passthrough() {
        assert_eq!(unescape("héllo ✓ &amp; done").unwrap(), "héllo ✓ & done");
    }

    #[test]
    fn unescape_rejects_unterminated() {
        let err = unescape("a &lt b").unwrap_err();
        assert_eq!(err.kind, UnescapeErrorKind::UnterminatedEntity);
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        let err = unescape("&nbsp;").unwrap_err();
        assert_eq!(err.kind, UnescapeErrorKind::UnknownEntity("nbsp".into()));
    }

    #[test]
    fn unescape_rejects_bad_char_ref() {
        assert!(unescape("&#xD800;").is_err()); // surrogate
        assert!(unescape("&#notanumber;").is_err());
    }

    #[test]
    fn roundtrip_text() {
        let raw = "a<b>&c\"d'e\u{00e9}";
        assert_eq!(unescape(&escape_text(raw)).unwrap(), raw);
    }

    #[test]
    fn roundtrip_attr() {
        let raw = "a<b>\"c\t\n\r&";
        assert_eq!(unescape(&escape_attr(raw)).unwrap(), raw);
    }
}
