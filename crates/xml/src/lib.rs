//! # wsinterop-xml
//!
//! A self-contained XML 1.0 + Namespaces implementation sized for
//! web-service description documents (WSDL, XSD, SOAP envelopes).
//!
//! The crate provides:
//!
//! * [`QName`] / [`ExpandedName`] — lexical and namespace-resolved names,
//! * [`Element`] / [`Document`] — an owned document tree with builder
//!   ergonomics and resolved namespace URIs on every element,
//! * [`writer`] — pretty and compact serialization,
//! * [`parser`] — a validating recursive-descent parser with positions,
//! * [`escape`] — entity escaping/unescaping.
//!
//! It exists because the offline crate set for this reproduction contains
//! no XML implementation; the subset implemented here is exactly what the
//! simulated web-service frameworks in the workspace produce and consume.
//!
//! ## Example
//!
//! ```
//! use wsinterop_xml::{parse_document, Document, Element, name::ns};
//! use wsinterop_xml::writer::{write_document, WriteOptions};
//!
//! let doc = Document::new(
//!     Element::new("wsdl:definitions")
//!         .in_ns(ns::WSDL)
//!         .with_ns_decl(Some("wsdl"), ns::WSDL)
//!         .with_attr("name", "EchoService"),
//! );
//! let xml = write_document(&doc, &WriteOptions::pretty());
//! let back = parse_document(&xml)?;
//! assert!(back.root().is_named(ns::WSDL, "definitions"));
//! # Ok::<(), wsinterop_xml::parser::ParseXmlError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod escape;
pub mod name;
pub mod parser;
pub mod scope;
pub mod tree;
pub mod writer;

pub use name::{ExpandedName, QName};
pub use parser::{parse_document, parse_element, ParseXmlError};
pub use tree::{Attr, Document, Element, Node};
pub use writer::{write_document, write_element, WriteOptions};
