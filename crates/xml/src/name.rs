//! Qualified names ([`QName`]) and namespace-expanded names
//! ([`ExpandedName`]) per *Namespaces in XML 1.0*.

use std::fmt;
use std::str::FromStr;

/// Well-known namespace URIs used throughout the workspace.
pub mod ns {
    /// The `xmlns` reserved namespace.
    pub const XMLNS: &str = "http://www.w3.org/2000/xmlns/";
    /// The `xml:` reserved namespace.
    pub const XML: &str = "http://www.w3.org/XML/1998/namespace";
    /// XML Schema definition namespace (`xsd:`/`s:`).
    pub const XSD: &str = "http://www.w3.org/2001/XMLSchema";
    /// XML Schema instance namespace (`xsi:`).
    pub const XSI: &str = "http://www.w3.org/2001/XMLSchema-instance";
    /// WSDL 1.1 namespace.
    pub const WSDL: &str = "http://schemas.xmlsoap.org/wsdl/";
    /// WSDL 1.1 SOAP binding namespace.
    pub const WSDL_SOAP: &str = "http://schemas.xmlsoap.org/wsdl/soap/";
    /// SOAP 1.1 envelope namespace.
    pub const SOAP_ENV: &str = "http://schemas.xmlsoap.org/soap/envelope/";
    /// SOAP-over-HTTP transport URI used in `soap:binding/@transport`.
    pub const SOAP_HTTP_TRANSPORT: &str = "http://schemas.xmlsoap.org/soap/http";
    /// W3C WS-Addressing WSDL extension namespace (as used by JAX-WS).
    pub const WSAW: &str = "http://www.w3.org/2006/05/addressing/wsdl";
    /// Microsoft serialization namespace used by DataSet-style bindings.
    pub const MS_DATA: &str = "urn:schemas-microsoft-com:xml-msdata";
}

/// Error returned when a string is not a valid `QName`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQNameError {
    raw: String,
    reason: &'static str,
}

impl ParseQNameError {
    /// The offending input.
    pub fn input(&self) -> &str {
        &self.raw
    }
}

impl fmt::Display for ParseQNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid QName `{}`: {}", self.raw, self.reason)
    }
}

impl std::error::Error for ParseQNameError {}

/// Returns `true` when `s` is a valid `NCName` (no-colon name).
///
/// We implement the practically relevant subset of the XML name grammar:
/// the first character must be a letter or `_`, and subsequent characters
/// may also be digits, `-`, `.`, or combining Unicode letters/digits.
///
/// # Examples
///
/// ```
/// use wsinterop_xml::name::is_ncname;
/// assert!(is_ncname("definitions"));
/// assert!(is_ncname("_private-name.v2"));
/// assert!(!is_ncname("2fast"));
/// assert!(!is_ncname("a:b"));
/// assert!(!is_ncname(""));
/// ```
pub fn is_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c == '_' || c.is_alphabetic() => {}
        _ => return false,
    }
    chars.all(|c| c == '_' || c == '-' || c == '.' || c.is_alphanumeric())
}

/// A lexical qualified name: optional prefix plus local part.
///
/// A `QName` is purely lexical — resolving the prefix to a namespace URI
/// requires the in-scope namespace bindings and yields an
/// [`ExpandedName`].
///
/// # Examples
///
/// ```
/// use wsinterop_xml::QName;
/// let q: QName = "wsdl:definitions".parse()?;
/// assert_eq!(q.prefix(), Some("wsdl"));
/// assert_eq!(q.local_part(), "definitions");
/// assert_eq!(q.to_string(), "wsdl:definitions");
/// # Ok::<(), wsinterop_xml::name::ParseQNameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    prefix: Option<String>,
    local: String,
}

impl QName {
    /// Creates a `QName` with no prefix.
    ///
    /// # Panics
    ///
    /// Panics if `local` is not a valid NCName; use [`QName::from_str`]
    /// for fallible construction from untrusted input.
    pub fn local(local: impl Into<String>) -> QName {
        let local = local.into();
        assert!(is_ncname(&local), "invalid NCName for QName local part: {local:?}");
        QName { prefix: None, local }
    }

    /// Creates a prefixed `QName`.
    ///
    /// # Panics
    ///
    /// Panics if either part is not a valid NCName.
    pub fn prefixed(prefix: impl Into<String>, local: impl Into<String>) -> QName {
        let prefix = prefix.into();
        let local = local.into();
        assert!(is_ncname(&prefix), "invalid NCName for QName prefix: {prefix:?}");
        assert!(is_ncname(&local), "invalid NCName for QName local part: {local:?}");
        QName { prefix: Some(prefix), local }
    }

    /// The prefix, if any.
    pub fn prefix(&self) -> Option<&str> {
        self.prefix.as_deref()
    }

    /// The local part.
    pub fn local_part(&self) -> &str {
        &self.local
    }
}

impl FromStr for QName {
    type Err = ParseQNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParseQNameError { raw: s.to_string(), reason };
        match s.split_once(':') {
            None => {
                if is_ncname(s) {
                    Ok(QName { prefix: None, local: s.to_string() })
                } else {
                    Err(err("local part is not an NCName"))
                }
            }
            Some((p, l)) => {
                if !is_ncname(p) {
                    Err(err("prefix is not an NCName"))
                } else if !is_ncname(l) {
                    Err(err("local part is not an NCName"))
                } else {
                    Ok(QName { prefix: Some(p.to_string()), local: l.to_string() })
                }
            }
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{}:{}", p, self.local),
            None => f.write_str(&self.local),
        }
    }
}

/// A namespace-resolved name: `{namespace-uri}local`.
///
/// # Examples
///
/// ```
/// use wsinterop_xml::{name::ns, ExpandedName};
/// let n = ExpandedName::new(Some(ns::WSDL), "definitions");
/// assert_eq!(n.to_string(), "{http://schemas.xmlsoap.org/wsdl/}definitions");
/// assert_eq!(ExpandedName::new(None, "x").to_string(), "x");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExpandedName {
    ns_uri: Option<String>,
    local: String,
}

impl ExpandedName {
    /// Creates an expanded name; `ns_uri = None` means "no namespace".
    pub fn new(ns_uri: Option<&str>, local: impl Into<String>) -> ExpandedName {
        ExpandedName {
            ns_uri: ns_uri.map(str::to_string),
            local: local.into(),
        }
    }

    /// The namespace URI, if the name is in a namespace.
    pub fn ns_uri(&self) -> Option<&str> {
        self.ns_uri.as_deref()
    }

    /// The local part.
    pub fn local_part(&self) -> &str {
        &self.local
    }

    /// Tests a `(namespace, local)` pair in one call.
    pub fn is(&self, ns_uri: &str, local: &str) -> bool {
        self.ns_uri.as_deref() == Some(ns_uri) && self.local == local
    }
}

impl fmt::Display for ExpandedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ns_uri {
            Some(uri) => write!(f, "{{{}}}{}", uri, self.local),
            None => f.write_str(&self.local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qname_parse_unprefixed() {
        let q: QName = "binding".parse().unwrap();
        assert_eq!(q.prefix(), None);
        assert_eq!(q.local_part(), "binding");
    }

    #[test]
    fn qname_parse_prefixed() {
        let q: QName = "soap:address".parse().unwrap();
        assert_eq!(q.prefix(), Some("soap"));
        assert_eq!(q.local_part(), "address");
    }

    #[test]
    fn qname_rejects_empty_and_double_colon() {
        assert!("".parse::<QName>().is_err());
        assert!(":x".parse::<QName>().is_err());
        assert!("x:".parse::<QName>().is_err());
        assert!("a:b:c".parse::<QName>().is_err());
        assert!("1x".parse::<QName>().is_err());
    }

    #[test]
    fn qname_display_roundtrip() {
        for raw in ["a", "p:a", "_x-1.y", "xsd:complexType"] {
            let q: QName = raw.parse().unwrap();
            assert_eq!(q.to_string(), raw);
        }
    }

    #[test]
    fn ncname_unicode() {
        assert!(is_ncname("héllo"));
        assert!(!is_ncname("he llo"));
    }

    #[test]
    fn expanded_name_is() {
        let n = ExpandedName::new(Some(ns::XSD), "element");
        assert!(n.is(ns::XSD, "element"));
        assert!(!n.is(ns::XSD, "attribute"));
        assert!(!n.is(ns::WSDL, "element"));
    }

    #[test]
    fn expanded_name_ordering_is_stable() {
        let a = ExpandedName::new(Some("a"), "z");
        let b = ExpandedName::new(Some("b"), "a");
        assert!(a < b);
    }
}
